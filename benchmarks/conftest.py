"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
the per-experiment index in ``DESIGN.md``).  The regenerated rows are
registered with :func:`report` and printed in the terminal summary, so
``pytest benchmarks/ --benchmark-only`` output contains the same rows
the paper reports, next to pytest-benchmark's timing table.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_figure6

_REPORTS: list[str] = []


def report(text: str) -> None:
    """Register a regenerated table/figure for the terminal summary."""
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.section("regenerated paper tables & figures")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def figure6_rows():
    """The full T1-T8 × {Original, HWLC, HWLC+DR} sweep (run once)."""
    return run_figure6()
