"""E10 — ablation of the Figure 1 state machine and thread segments.

Workload: the two patterns each refinement exists to forgive —
init-once/read-many data (states) and create/join hand-offs (segments)
— run under the raw Eraser rule, with states, and with states+segments.

Expected shape: each refinement level strictly reduces reported
locations, and each workload's false positives vanish exactly at the
level the corresponding refinement was introduced.
"""

from __future__ import annotations

from conftest import report

from repro.experiments.studies import ablation_study


def test_bench_ablation(benchmark):
    study = benchmark.pedantic(ablation_study, rounds=3, iterations=1)
    init_row = study.counts["init-then-share"]
    handoff_row = study.counts["create-join-handoff"]
    assert init_row["raw-eraser"] > init_row["eraser-states"] == 0
    assert handoff_row["eraser-states"] > handoff_row["helgrind"] == 0
    report(study.format())
