"""E8 — §4: allocator-reuse false positives and the env-var fix.

Workload: container churn (vector growth cycles across worker threads)
under the pooled allocator, the force-new allocator (the paper's
``GLIBCPP_FORCE_NEW`` advice: "the allocation strategy of the GNU
Standard C++ Library is configurable with environment variables and this
must be done prior to calling Helgrind"), and the repaired announcing
pool (our hg_clean extension).

Expected shape: pool reuse warns; both remedies are silent.
"""

from __future__ import annotations

from conftest import report

from repro.cxx import CxxAllocator, CxxVector
from repro.cxx.allocator import AllocStrategy
from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM


def churn(api, *, strategy, announce=False, truth=None):
    alloc = CxxAllocator(api, strategy=strategy, truth=truth, announce=announce)
    turn = api.semaphore(0)

    def epoch_one(a):
        v = CxxVector(a, alloc, capacity=2)
        with a.frame("fill_vector", "churn.cpp", 10):
            for i in range(12):
                v.push_back(a, i)
        v.destroy(a)
        a.sem_post(turn)
        a.sleep(15)  # stays alive: no join edge to epoch two

    def epoch_two(a):
        a.sem_wait(turn)
        v = CxxVector(a, alloc, capacity=2)
        with a.frame("refill_vector", "churn.cpp", 30):
            for i in range(12):
                v.push_back(a, i * 2)
        v.destroy(a)

    t1, t2 = api.spawn(epoch_one), api.spawn(epoch_two)
    api.join(t1)
    api.join(t2)
    return alloc


def run_strategy(strategy, announce=False):
    truth = GroundTruth()
    det = HelgrindDetector(HelgrindConfig.hwlc_dr())
    vm = VM(detectors=(det,))
    vm.run(lambda api: churn(api, strategy=strategy, announce=announce, truth=truth))
    from repro.detectors.classify import classify_report

    return classify_report(det.report, truth)


def test_bench_allocator_reuse(benchmark):
    pooled = benchmark.pedantic(
        lambda: run_strategy(AllocStrategy.POOL), rounds=3, iterations=1
    )
    force_new = run_strategy(AllocStrategy.FORCE_NEW)
    announced = run_strategy(AllocStrategy.POOL, announce=True)

    assert pooled.count(WarningCategory.FP_ALLOC_REUSE) > 0
    assert force_new.total == 0
    assert announced.total == 0

    report(
        "§4 allocator reuse — container churn across two unordered epochs\n"
        f"  pooled allocator (libstdc++ default): "
        f"{pooled.count(WarningCategory.FP_ALLOC_REUSE)} reuse-FP locations\n"
        f"  force-new (GLIBCPP_FORCE_NEW):        {force_new.total} locations\n"
        f"  announcing pool (hg_clean, extension): {announced.total} locations\n"
        "  paper: 'memory is reused internally and accesses to the reused "
        "memory regions are reported as data races'"
    )
