"""E11 — §2.2 baselines: lock-set vs DJIT vs hybrid.

Workload: a mixed-discipline program containing a genuine concurrent
race, an unlocked-but-ordered write pair, and clean locked traffic.

Expected shape: DJIT's racy-address set is a strict subset of the
lock-set detector's (it misses the ordered discipline violation); the
hybrid also stays within the lock-set's set while keeping the real
race.
"""

from __future__ import annotations

from conftest import report

from repro.experiments.studies import baseline_study


def test_bench_baseline_comparison(benchmark):
    study = benchmark.pedantic(baseline_study, rounds=3, iterations=1)
    assert study.djit_addrs < study.lockset_addrs
    assert study.hybrid_addrs <= study.lockset_addrs
    assert study.lockset_addrs & study.djit_addrs  # the true race is common
    report(study.format())
