"""E7 (fast path) — events/second through the analysis hot path.

The paper's §4.5 slowdown has three layers in our reproduction: the VM's
trap/emit machinery, the detector dispatch, and the per-access lock-set
work.  The analysis fast path (interned lock-sets, ExeContext-style
stack interning, dispatch-table event routing) attacks the last two, so
the metric to watch is *events per second* per analysis tier — and the
*multiple* a detector costs on top of the bare VM, which §4.5 reports as
~2.5-3× for Valgrind/Helgrind.

``BENCH_fastpath.json`` at the repository root records the before/after
snapshot of these rates for the fast-path PR, so later PRs have a
trajectory to compare against.
"""

from __future__ import annotations

from conftest import report

from repro.experiments.performance import measure_event_throughput

#: The §4.5 analysis multiple we hold the fast path to: VM+detector may
#: cost at most this many times the VM-only tier on the same workload.
#: (Valgrind's own figure is ~2.5-3×; we allow headroom for the pure-
#: Python substrate and CI noise.)
MAX_ANALYSIS_MULTIPLE = 6.0


def _fmt(rates: dict[str, dict[str, float]]) -> str:
    lines = ["Event throughput (events/sec through VM.emit):"]
    for name, row in rates.items():
        multiple = row.get("multiple_vs_vm", 1.0)
        lines.append(
            f"  {name:18s} {row['events_per_sec']:10.0f} ev/s  "
            f"({int(row['events'])} events, {multiple:.2f}x VM-only)"
        )
    return "\n".join(lines)


def test_bench_event_throughput(benchmark):
    rates = benchmark.pedantic(
        lambda: measure_event_throughput(n_threads=4, iterations=200, repeats=2),
        rounds=1,
        iterations=1,
    )
    assert rates["vm-only"]["events_per_sec"] > 0
    # The fast path keeps the analysis multiple bounded: every detector
    # tier stays within MAX_ANALYSIS_MULTIPLE of the bare VM.
    for name, row in rates.items():
        if name == "vm-only":
            continue
        assert row["multiple_vs_vm"] <= MAX_ANALYSIS_MULTIPLE, (
            name,
            row["multiple_vs_vm"],
        )
    # HWLC+DR must not be meaningfully slower than the original config —
    # the corrected bus-lock model is a different lockset id, not more
    # work per access.
    assert (
        rates["helgrind-hwlc+dr"]["multiple_vs_vm"]
        <= rates["helgrind-orig"]["multiple_vs_vm"] * 1.5
    )
    report(_fmt(rates))


def test_bench_event_throughput_single_threaded(benchmark):
    """Single-threaded tier: no carrier hand-offs dilute the measurement,
    so this is the purest view of the per-event fast path."""
    rates = benchmark.pedantic(
        lambda: measure_event_throughput(
            n_threads=1,
            iterations=600,
            repeats=3,
            tiers=("vm-only", "helgrind-hwlc+dr"),
        ),
        rounds=1,
        iterations=1,
    )
    assert rates["helgrind-hwlc+dr"]["multiple_vs_vm"] <= MAX_ANALYSIS_MULTIPLE
    report("Single-threaded " + _fmt(rates))
