"""E6 — §4.3: schedule-dependent false negatives.

Workload: the delayed-lock-set-initialisation scenario (one unlocked
writer, one locked writer) probed across 24 seeded schedules.

Expected shape: the race is reported under *some* schedules and missed
under others — "this is not guaranteed to happen in the development
environment, and may cause failures after delivering the software".
"""

from __future__ import annotations

from conftest import report

from repro.experiments.studies import false_negative_study


def test_bench_false_negative_sweep(benchmark):
    study = benchmark.pedantic(
        lambda: false_negative_study(seeds=range(24)), rounds=1, iterations=1
    )
    assert study.seeds_detected
    assert study.seeds_missed
    report(study.format())
