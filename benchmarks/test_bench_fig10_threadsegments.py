"""E4 — Figure 10: thread-per-request ownership transfer.

Workload: request data initialised by the acceptor, processed by a
spawned worker, read back after the join — repeated for a batch of
requests.

Expected shape: with thread segments the pattern is silent; with the
segment rule ablated (per-thread ownership) every request datum warns.
"""

from __future__ import annotations

from conftest import report

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.runtime import VM

N_REQUESTS = 8
WORDS = 4


def thread_per_request(api):
    for i in range(N_REQUESTS):
        data = api.malloc(WORDS, tag=f"request{i}")
        with api.frame("setup_request", "accept.cpp", 12):
            for j in range(WORDS):
                api.store(data + j, j)

        def worker(a, base=data):
            with a.frame("process_request", "worker.cpp", 40):
                for j in range(WORDS):
                    a.store(base + j, a.load(base + j) + 1)

        t = api.spawn(worker)
        api.join(t)
        with api.frame("collect_result", "accept.cpp", 20):
            for j in range(WORDS):
                api.load(data + j)
        api.free(data)


def run_config(config):
    det = HelgrindDetector(config)
    VM(detectors=(det,)).run(thread_per_request)
    return det.report.location_count


def test_bench_thread_segments(benchmark):
    with_segments = benchmark.pedantic(
        lambda: run_config(HelgrindConfig.original()), rounds=5, iterations=1
    )
    without_segments = run_config(HelgrindConfig.eraser_states())
    assert with_segments == 0
    assert without_segments > 0
    report(
        "Figure 10 — thread-per-request ownership transfer "
        f"({N_REQUESTS} requests x {WORDS} words)\n"
        f"  with thread segments (VisualThreads): {with_segments} locations\n"
        f"  without (per-thread ownership):       {without_segments} locations\n"
        "  paper: 'accesses ... are still exclusive even if not done by a "
        "single thread'"
    )
