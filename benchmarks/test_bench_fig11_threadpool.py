"""E5 — Figure 11: thread-pool hand-off false positives.

Workload: the SIP proxy in thread-pool mode (fixed bugs, instrumented
build) — all remaining warnings stem from job buffers handed to the pool
through the message queue.

Expected shape: the lock-set configurations warn (the algorithm "does
not take into account that accesses are still exclusive"); the extended
configuration (queue-aware happens-before, the paper's future work) and
the DJIT baseline are silent.
"""

from __future__ import annotations

from conftest import report

from repro.detectors import DjitDetector, HelgrindConfig, HelgrindDetector
from repro.detectors.classify import classify_report
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM, RandomScheduler
from repro.sip.server import ProxyConfig, SipProxy
from repro.sip.workload import scenario_calls


def run_pool(detector):
    truth = GroundTruth()
    proxy = SipProxy(
        ProxyConfig.fixed(mode="thread-pool", pool_size=3, instrumented=True),
        truth=truth,
    )
    vm = VM(detectors=(detector,), scheduler=RandomScheduler(7), step_limit=10_000_000)
    vm.run(proxy.main, scenario_calls(seed=3, n_calls=5))
    return classify_report(detector.report, truth)


def test_bench_thread_pool_fps(benchmark):
    lockset = benchmark.pedantic(
        lambda: run_pool(HelgrindDetector(HelgrindConfig.hwlc_dr())),
        rounds=3,
        iterations=1,
    )
    extended = run_pool(HelgrindDetector(HelgrindConfig.extended()))
    djit = run_pool(DjitDetector())

    assert lockset.count(WarningCategory.FP_OWNERSHIP) > 0
    assert extended.count(WarningCategory.FP_OWNERSHIP) == 0
    assert djit.count(WarningCategory.FP_OWNERSHIP) == 0

    report(
        "Figure 11 — thread-pool hand-off (proxy in pool mode, 5 calls)\n"
        "  ownership-transfer FP locations:\n"
        f"    Helgrind HWLC+DR (lock-set):   {lockset.count(WarningCategory.FP_OWNERSHIP)}\n"
        f"    extended (queue-aware, §5):    {extended.count(WarningCategory.FP_OWNERSHIP)}\n"
        f"    DJIT (happens-before, §2.2):   {djit.count(WarningCategory.FP_OWNERSHIP)}\n"
        "  paper: 'the accesses are clearly separated by the put and get "
        "operations ..., but the algorithm does not detect that'"
    )
