"""E2 — regenerate the paper's Figure 5 (stacked warning decomposition).

Workload: the same T1-T8 sweep as E1; the decomposition splits each test
case's Original-run locations into hardware-bus-lock false positives,
destructor false positives and correctly reported data races — computed
both the paper's way (differences between configurations) and from the
ground-truth oracle, which must agree.
"""

from __future__ import annotations

from conftest import report

from repro.detectors.classify import classify_report
from repro.experiments.figures import figure5_decomposition
from repro.experiments.harness import run_proxy_case
from repro.oracle import WarningCategory
from repro.sip.workload import evaluation_cases


def test_bench_figure5_decomposition(benchmark, figure6_rows):
    case = evaluation_cases()[0]
    run = benchmark.pedantic(
        lambda: run_proxy_case(case, "original"), rounds=3, iterations=1
    )
    # Classification itself is part of the measured pipeline.
    assert run.classified.total == run.location_count
    for row in figure6_rows:
        original = row.runs["original"]
        # Figure 5's defining property: destructor FPs are the bigger
        # removed slice, hardware-lock the smaller top slice.
        assert original.fp_count(WarningCategory.FP_DESTRUCTOR) > original.fp_count(
            WarningCategory.FP_HW_LOCK
        ), row.case_id
    report(figure5_decomposition(figure6_rows))
