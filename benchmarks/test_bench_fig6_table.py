"""E1 — regenerate the paper's Figure 6 table.

Workload: the eight SIPp test cases T1-T8 on the thread-per-request
proxy (evaluation bug set, GLIBCPP_FORCE_NEW-style allocator), measured
under the three detector configurations of the paper's evaluation.

Expected shape (asserted): Original > HWLC > HWLC+DR per case;
annotation removes more than half of HWLC's count in every case; total
removal in/near the paper's 65-81 % band.
"""

from __future__ import annotations

from conftest import report

from repro.experiments.figures import figure6_table, shape_violations
from repro.experiments.harness import run_proxy_case
from repro.sip.workload import evaluation_cases


def test_bench_figure6_full_table(benchmark, figure6_rows):
    """Times one representative cell (T1 under HWLC+DR); the full table
    comes from the session fixture and is printed in the summary."""
    case = evaluation_cases()[0]
    benchmark.pedantic(
        lambda: run_proxy_case(case, "hwlc+dr"), rounds=3, iterations=1
    )
    assert shape_violations(figure6_rows) == []
    report(figure6_table(figure6_rows))


def test_bench_figure6_original_config(benchmark):
    """Times the most expensive cell (T5 under Original)."""
    case = evaluation_cases()[4]
    run = benchmark.pedantic(
        lambda: run_proxy_case(case, "original"), rounds=3, iterations=1
    )
    assert run.location_count > 0
