"""E3 — the Figure 8/9 stringtest.

Workload: ``stringtest.cpp`` transcribed onto the COW string substrate —
main constructs a ``std::string``, a worker thread copies it, main
copies it again (line 22, "the reported conflict").

Expected shape: the Original bus-lock model reports ``_M_grab`` (the
Figure 9 warning); the corrected (HWLC) model is silent.
"""

from __future__ import annotations

from conftest import report

from repro.cxx import CowString, CxxAllocator
from repro.cxx.allocator import AllocStrategy
from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.runtime import VM


def stringtest(api):
    alloc = CxxAllocator(api, strategy=AllocStrategy.FORCE_NEW)
    with api.frame("main", "stringtest.cpp", 16):
        text = CowString.create(api, "contents", alloc)

    def worker_thread(a):
        with a.frame("workerThread", "stringtest.cpp", 10):
            local = text.copy(a)
            local.dispose(a)

    t = api.spawn(worker_thread)
    api.sleep(3)
    with api.frame("main", "stringtest.cpp", 22):
        text_copy = text.copy(api)  # <- reported conflict
    api.join(t)
    text_copy.dispose(api)
    text.dispose(api)


def run_config(config):
    det = HelgrindDetector(config)
    VM(detectors=(det,)).run(stringtest)
    return det


def test_bench_stringtest_original_vs_hwlc(benchmark):
    original = benchmark.pedantic(
        lambda: run_config(HelgrindConfig.original()), rounds=5, iterations=1
    )
    corrected = run_config(HelgrindConfig.hwlc())
    assert original.report.location_count >= 1
    assert all(
        w.site.function in ("_M_grab", "_M_dispose")
        for w in original.report.warnings
    )
    assert corrected.report.location_count == 0

    lines = [
        "Figure 8/9 — stringtest.cpp shared std::string copy",
        f"  original bus-lock model: {original.report.location_count} "
        "location(s), e.g.:",
    ]
    lines += ["    " + l for l in original.report.warnings[0].format().splitlines()]
    lines.append(
        f"  corrected (HWLC) model:  {corrected.report.location_count} locations "
        "(paper: 'we implemented this correction successfully')"
    )
    report("\n".join(lines))
