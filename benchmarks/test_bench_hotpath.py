"""Hot-path PR — memoized transitions + batched block replay speedup.

The layer-6 claim (docs/PERFORMANCE.md): once the SHARED/SHARED-MOD
transition is memoized on `(packed-low, is_write, held-lockset-id)`,
the dominant per-access cost collapses to a dict probe — and offline
replay can go further, feeding whole decoded ``MemoryAccess`` blocks
to `HelgrindDetector.bulk_access` (inline EXCLUSIVE fast path, memo
probe, intra-block run-length elision, zero event objects).

Two measurements, both single-core by design (this optimisation is
about making ONE analysis thread fly; sharding is layer 5's job):

* **batched replay** of a 263k-event synthetic multi-page trace —
  the acceptance number, asserted >= 1.25x;
* **live VM analysis** of ``workload_guest`` (4 threads, so the
  shared counters actually reach SHARED state and exercise the memo)
  — reported for context; the live path keeps per-event dispatch, so
  its gain is the memo + same-access filter only.

Methodology is BENCH_shadowmem.json's: cache-off and cache-on runs
are **interleaved** round-by-round so warm-up and machine drift hit
both shapes equally, best-of-N per shape, and **byte-identity against
the uncached report is asserted on every round before any number is
recorded**.  Cache hit rate and elision rate come from the cache-on
runs' own counters.  Results land in ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from pathlib import Path

import pytest

from conftest import report

from repro.api.profiles import profile
from repro.detectors import HelgrindDetector
from repro.detectors.parallel import PAGE_BITS
from repro.experiments.performance import workload_guest
from repro.runtime import VM, RoundRobinScheduler
from repro.runtime.codec import TraceWriter
from repro.runtime.events import (
    AccessKind,
    LockAcquire,
    LockMode,
    LockRelease,
    MemoryAccess,
    ThreadCreate,
    ThreadFinish,
    ThreadJoin,
)
from repro.runtime.trace import replay_trace

REPO_ROOT = Path(__file__).resolve().parents[1]
CONFIG = "hwlc+dr"
PAGE = 1 << PAGE_BITS

#: Same scale as BENCH_parallel's trace: 256 runs x ~1k accesses ≈ 263k
#: events.  Every 16th access is emitted twice back-to-back so the
#: run-length elision has real repeats to absorb (a server re-reading
#: the field it just wrote), and the shared-counter traffic pushes a
#: handful of words through SHARED/SHARED-MOD where the memo lives.
RUNS = 256
RUN_LEN = 1024
PAGES = 32
THREADS = 4
ROUNDS = 3
GUEST_THREADS = 4
GUEST_ITERATIONS = 500


def _config(cache: bool):
    return dataclasses.replace(
        profile(CONFIG).config(), transition_cache=cache
    )


def _synthesise(path: Path) -> int:
    """Write the hot-path workload trace; returns its event count."""
    step = 0
    events = 0
    with open(path, "wb") as fh:
        writer = TraceWriter(fh, block_rows=RUN_LEN)

        def emit(event):
            nonlocal events
            writer.write(event)
            events += 1

        for t in range(1, THREADS + 1):
            emit(ThreadCreate(step, 0, t))
            step += 1
        for run in range(RUNS):
            tid = 1 + run % THREADS
            base = (1 + run % PAGES) * PAGE
            emit(LockAcquire(step, tid, 7, LockMode.WRITE, False))
            step += 1
            emit(MemoryAccess(step, tid, 8, AccessKind.WRITE, False, -1))
            step += 1
            emit(LockRelease(step, tid, 7, LockMode.WRITE))
            step += 1
            for i in range(RUN_LEN):
                addr = base + ((tid * 64 + i * 4) % PAGE)
                kind = AccessKind.WRITE if i % 8 == 0 else AccessKind.READ
                emit(MemoryAccess(step, tid, addr, kind, False, -1))
                step += 1
                if i % 16 == 0:  # identical immediate repeat → elidable
                    emit(MemoryAccess(step, tid, addr, kind, False, -1))
                    step += 1
            emit(MemoryAccess(step, tid, 64 + ((run // THREADS) % 4) * 4,
                              AccessKind.WRITE, False, -1))
            step += 1
        for t in range(1, THREADS + 1):
            emit(ThreadFinish(step, t))
            step += 1
            emit(ThreadJoin(step, 0, t))
            step += 1
        writer.close()
    return events


@pytest.fixture(scope="module")
def hot_trace(tmp_path_factory):
    root = tmp_path_factory.mktemp("hotpath-bench")
    path = root / "hot.rptr"
    events = _synthesise(path)
    assert events >= 100_000
    det = HelgrindDetector(_config(cache=False))
    replay_trace(path, det)
    reference = json.dumps(det.report.to_dict(), indent=2).encode()
    assert det.report.location_count > 0
    return path, reference, events


def _replay(path, reference, cache: bool):
    det = HelgrindDetector(_config(cache))
    start = time.perf_counter()
    replay_trace(path, det)
    wall = time.perf_counter() - start
    got = json.dumps(det.report.to_dict(), indent=2).encode()
    assert got == reference, (
        f"replay (cache={'on' if cache else 'off'}) diverged from the "
        "uncached reference"
    )
    return wall, det


def _live(reference_holder, cache: bool):
    det = HelgrindDetector(_config(cache))
    vm = VM(scheduler=RoundRobinScheduler(), detectors=(det,))
    start = time.perf_counter()
    vm.run(workload_guest, GUEST_THREADS, GUEST_ITERATIONS)
    wall = time.perf_counter() - start
    got = json.dumps(det.report.to_dict(), indent=2).encode()
    if reference_holder:
        assert got == reference_holder[0], (
            f"live run (cache={'on' if cache else 'off'}) diverged"
        )
    else:
        reference_holder.append(got)
    return wall, vm.stats.total_events, det


def test_bench_hotpath(benchmark, hot_trace):
    path, reference, events = hot_trace

    replay_walls: dict = {"off": [], "on": []}
    live_walls: dict = {"off": [], "on": []}
    live_ref: list = []
    stats: dict = {}

    def sweep() -> dict:
        # Interleave cache-off and cache-on round-by-round (the
        # BENCH_shadowmem methodology): drift lands on both shapes.
        for _ in range(ROUNDS):
            wall, _ = _replay(path, reference, cache=False)
            replay_walls["off"].append(wall)
            wall, det = _replay(path, reference, cache=True)
            replay_walls["on"].append(wall)
            stats["replay"] = (
                det.machine.transition_cache_stats(), det._elided,
                det._access_checks,
            )
            wall, _, _ = _live(live_ref, cache=False)
            live_walls["off"].append(wall)
            wall, guest_events, det = _live(live_ref, cache=True)
            live_walls["on"].append(wall)
            stats["live"] = (
                det.machine.transition_cache_stats(), det._elided,
                det._access_checks, guest_events,
            )
        return replay_walls

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    r_off, r_on = min(replay_walls["off"]), min(replay_walls["on"])
    l_off, l_on = min(live_walls["off"]), min(live_walls["on"])
    replay_speedup = round(r_off / r_on, 2)
    live_speedup = round(l_off / l_on, 2)

    def _rates(cache_stats, elided, checks):
        probes = cache_stats["hits"] + cache_stats["misses"]
        return {
            "cache_hits": cache_stats["hits"],
            "cache_misses": cache_stats["misses"],
            "cache_evictions": cache_stats["evictions"],
            "cache_hit_rate": round(cache_stats["hits"] / probes, 4)
            if probes else None,
            "accesses_elided": elided,
            "elision_rate": round(elided / checks, 4) if checks else None,
        }

    replay_stats, replay_elided, replay_checks = stats["replay"]
    live_stats, live_elided, live_checks, guest_events = stats["live"]

    payload = {
        "snapshot": (
            "hot-path PR — memoized transition cache + same-access "
            "elision + batched block replay, cache off vs on"
        ),
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 1,
            "note": (
                "single-core single-thread measurement by design: layer 6 "
                "speeds up one analysis thread; layer 5 (sharding) adds "
                "more"
            ),
        },
        "methodology": (
            f"cache-off and cache-on runs interleaved for {ROUNDS} "
            f"rounds, best-of-{ROUNDS} per shape; every round "
            "byte-compared against the uncached reference before any "
            "timing is recorded"
        ),
        "batched_replay": {
            "events": events,
            "off": {
                "wall_seconds": round(r_off, 4),
                "events_per_sec": int(events / r_off),
            },
            "on": {
                "wall_seconds": round(r_on, 4),
                "events_per_sec": int(events / r_on),
                **_rates(replay_stats, replay_elided, replay_checks),
            },
            "speedup": replay_speedup,
        },
        "live_workload_guest": {
            "events": guest_events,
            "threads": GUEST_THREADS,
            "off": {
                "wall_seconds": round(l_off, 4),
                "events_per_sec": int(guest_events / l_off),
            },
            "on": {
                "wall_seconds": round(l_on, 4),
                "events_per_sec": int(guest_events / l_on),
                **_rates(live_stats, live_elided, live_checks),
            },
            "speedup": live_speedup,
            "note": (
                "live analysis keeps per-event dispatch (no batching), "
                "so this gain is the memo + one-entry filter only; the "
                "acceptance bar applies to the batched replay tier"
            ),
        },
    }
    (REPO_ROOT / "BENCH_hotpath.json").write_text(
        json.dumps(payload, indent=1) + "\n", encoding="utf-8"
    )

    report("\n".join([
        f"Hot path ({events} replay events / {guest_events} live events):",
        f"  replay  off: {r_off:.3f}s  on: {r_on:.3f}s  "
        f"({replay_speedup}x, hit rate "
        f"{payload['batched_replay']['on']['cache_hit_rate']}, "
        f"{replay_elided} elided)",
        f"  live    off: {l_off:.3f}s  on: {l_on:.3f}s  "
        f"({live_speedup}x, hit rate "
        f"{payload['live_workload_guest']['on']['cache_hit_rate']}, "
        f"{live_elided} elided)",
        "  (BENCH_hotpath.json updated)",
    ]))

    assert replay_speedup >= 1.25, (
        f"batched cached replay only {replay_speedup}x over uncached"
    )
