"""E12 — §3.1/§3.3: the automatic annotation pipeline.

Workload: a MiniCxx program with shared polymorphic objects deleted
across threads, built through the three-stage pipeline with and without
the annotation stage, plus a partial-coverage sweep (only some
translation units annotated — the paper: "Parts of the program where the
source code is not available will not benefit from this annotation ...
However, the overall number of false reportings is reduced").
"""

from __future__ import annotations

from conftest import report

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.instrument import BuildOptions, BuildPipeline
from repro.runtime import VM

# Two "translation units": lib.h is third-party-ish (may or may not be
# instrumentable), app the product code.
LIB_HEADER = """
#ifndef LIB_H
#define LIB_H
class Base {
    field x;
    method get() { return this.x; }
};
class Derived : Base { field y; };
fn lib_dispose(obj) {
    delete obj;
}
#endif
"""

APP_SOURCE = """
#include "lib.h"

fn reader(obj, m) {
    lock(m);
    var v = obj.get();
    unlock(m);
    sleep(20);
}

fn main() {
    var m = mutex();
    var a = new Derived;
    a.x = 1;
    var b = new Derived;
    b.x = 2;
    var t1 = spawn reader(a, m);
    var t2 = spawn reader(b, m);
    sleep(8);
    delete a;          // app-owned delete site
    lib_dispose(b);    // delete site inside the library
    join t1;
    join t2;
}
"""


def build_and_check(instrument: bool):
    pipe = BuildPipeline(includes={"lib.h": LIB_HEADER})
    art = pipe.build(APP_SOURCE, BuildOptions(instrument=instrument))
    det = HelgrindDetector(HelgrindConfig.hwlc_dr())
    VM(detectors=(det,)).run(art.program.main)
    return art, det.report.location_count


def test_bench_instrumented_vs_plain(benchmark):
    art, instrumented_count = benchmark.pedantic(
        lambda: build_and_check(True), rounds=3, iterations=1
    )
    _, plain_count = build_and_check(False)
    assert instrumented_count == 0
    assert plain_count > 0
    assert art.annotated_sites == art.delete_sites == 2
    assert "__ca_deletor_single" in art.annotated_source

    report(
        "§3.1/§3.3 automatic delete-site annotation (MiniCxx pipeline)\n"
        f"  delete sites in the unit:     {art.delete_sites}\n"
        f"  un-instrumented build:        {plain_count} destructor-FP locations\n"
        f"  instrumented build:           {instrumented_count} locations\n"
        "  annotation (Figure 4 shape) visible in the emitted source:\n"
        "    fn __ca_deletor_single(object) { hg_destruct(object); return object; }\n"
        "  paper: 'in most cases only a configuration switch for the build "
        "process has to be set'"
    )


def test_bench_partial_source_coverage(benchmark):
    """Annotate only the app's own delete; the library's site remains.

    Models §3.1's partial-coverage situation by building the library
    header pre-annotated=never: the app's own ``delete a`` is annotated
    manually in source while ``lib_dispose`` is not.
    """
    partial_app = APP_SOURCE.replace(
        "delete a;          // app-owned delete site",
        "hg_destruct(a); delete a;  // hand-annotated app site",
    )

    def run_partial():
        pipe = BuildPipeline(includes={"lib.h": LIB_HEADER})
        art = pipe.build(partial_app, BuildOptions(instrument=False))
        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        VM(detectors=(det,)).run(art.program.main)
        return det.report.location_count

    partial_count = benchmark.pedantic(run_partial, rounds=3, iterations=1)
    _, plain_count = build_and_check(False)
    _, full_count = build_and_check(True)
    # Partial coverage lands strictly between none and full.
    assert full_count < partial_count < plain_count or (
        full_count == 0 and partial_count < plain_count
    )
