"""Intra-trace parallel replay — sharded analysis speedup vs `--shards`.

The parallel-replay PR's claim: offline analysis of ONE big recorded
trace need not be single-threaded.  Partitioning memory accesses by
shadow page across worker processes (sync skeleton replicated, foreign
access blocks skipped undecoded via the page-aware block index) scales
the dominant per-access lock-set work with cores while producing a
report **byte-identical** to the sequential replay.

The T1–T3 evaluation traces are useless for this measurement — their
guest address space collapses onto a single shadow page (run
``repro trace stat`` and look at the skew line), so one shard owns
everything.  The benchmark therefore synthesises a page-coherent
multi-page trace shaped like a real server run: four worker threads,
each analysing long runs of accesses within one page before moving on,
a lock-protected shared counter for skeleton traffic, and a sprinkle
of unsynchronised shared-page writes so the report is non-trivial.

Methodology: sequential and sharded replays are **interleaved**
(seq, shard, seq, shard, ...) so cache warm-up and machine drift hit
both shapes equally; best-of-N per shape; byte-identity is asserted on
every round before any number is recorded.  Results land in
``BENCH_parallel.json`` at the repo root.

On a single-core host (``cpu_count == 1``) the worker processes
time-slice one core and the pool + trace-rescan overhead makes the
sharded replay *slower* — the rows then only verify byte-identity;
the ≥1.3× acceptance bar applies to multi-core hosts only.
"""

from __future__ import annotations

import io
import json
import os
import platform
import time
from pathlib import Path

import pytest

from conftest import report

from repro.api.profiles import profile
from repro.detectors import HelgrindDetector
from repro.detectors.parallel import PAGE_BITS, replay_trace_sharded
from repro.runtime.codec import TraceWriter
from repro.runtime.events import (
    AccessKind,
    LockAcquire,
    LockMode,
    LockRelease,
    MemoryAccess,
    ThreadCreate,
    ThreadFinish,
    ThreadJoin,
)
from repro.runtime.trace import replay_trace

REPO_ROOT = Path(__file__).resolve().parents[1]
CONFIG = "hwlc+dr"
PAGE = 1 << PAGE_BITS

#: 256 page-coherent runs x 1024 accesses ≈ 263k access events — big
#: enough that per-access analysis dwarfs pool startup + skeleton cost.
RUNS = 256
RUN_LEN = 1024
PAGES = 32
THREADS = 4
ROUNDS = 3


def _synthesise(path: Path) -> int:
    """Write the multi-page workload trace; returns its event count."""
    step = 0
    events = 0
    with open(path, "wb") as fh:
        # Cap blocks at RUN_LEN rows so one access run never straddles
        # more pages than it touches — most blocks stay shard-pure.
        writer = TraceWriter(fh, block_rows=RUN_LEN)

        def emit(event):
            nonlocal events
            writer.write(event)
            events += 1

        for t in range(1, THREADS + 1):
            emit(ThreadCreate(step, 0, t))
            step += 1
        for run in range(RUNS):
            tid = 1 + run % THREADS
            page = 1 + run % PAGES  # page 0 reserved for shared state
            base = page * PAGE
            # Lock-protected shared-counter touch: skeleton traffic
            # every run, plus a consistently-protected access.
            emit(LockAcquire(step, tid, 7, LockMode.WRITE, False))
            step += 1
            emit(MemoryAccess(step, tid, 8, AccessKind.WRITE, False, -1))
            step += 1
            emit(LockRelease(step, tid, 7, LockMode.WRITE))
            step += 1
            # The page-coherent analysis run (thread-private arena).
            for i in range(RUN_LEN):
                addr = base + ((tid * 64 + i * 4) % PAGE)
                kind = AccessKind.WRITE if i % 8 == 0 else AccessKind.READ
                emit(MemoryAccess(step, tid, addr, kind, False, -1))
                step += 1
            # One unsynchronised shared write per run → real races.
            # (Index decoupled from the tid cycle so successive writers
            # of the same word are different threads.)
            emit(MemoryAccess(step, tid, 64 + ((run // THREADS) % 4) * 4,
                              AccessKind.WRITE, False, -1))
            step += 1
        for t in range(1, THREADS + 1):
            emit(ThreadFinish(step, t))
            step += 1
            emit(ThreadJoin(step, 0, t))
            step += 1
        writer.close()
    return events


@pytest.fixture(scope="module")
def big_trace(tmp_path_factory):
    root = tmp_path_factory.mktemp("parallel-bench")
    path = root / "big.rptr"
    events = _synthesise(path)
    assert events >= 100_000
    det = HelgrindDetector(profile(CONFIG).config())
    replay_trace(path, det)
    reference = json.dumps(det.report.to_dict(), indent=2).encode()
    assert det.report.location_count > 0  # races exist: report non-trivial
    return path, reference, events


def _run_sequential(path, reference) -> float:
    det = HelgrindDetector(profile(CONFIG).config())
    start = time.perf_counter()
    replay_trace(path, det)
    wall = time.perf_counter() - start
    got = json.dumps(det.report.to_dict(), indent=2).encode()
    assert got == reference, "sequential replay diverged from itself"
    return wall


def _run_sharded(path, reference, shards) -> float:
    start = time.perf_counter()
    result = replay_trace_sharded(path, CONFIG, shards=shards)
    wall = time.perf_counter() - start
    got = json.dumps(result.report.to_dict(), indent=2).encode()
    assert got == reference, f"sharded ({shards}) report != sequential"
    assert result.skeleton_consistent
    return wall


def test_bench_parallel_replay(benchmark, big_trace):
    path, reference, events = big_trace
    cpus = os.cpu_count() or 1
    shards = min(4, max(2, cpus))

    walls: dict = {"sequential": [], f"shards_{shards}": []}

    def sweep() -> dict:
        # Interleave shapes round-by-round: warm-up and machine drift
        # land on both sides of the ratio equally.
        for _ in range(ROUNDS):
            walls["sequential"].append(_run_sequential(path, reference))
            walls[f"shards_{shards}"].append(
                _run_sharded(path, reference, shards)
            )
        return walls

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    seq = min(walls["sequential"])
    par = min(walls[f"shards_{shards}"])
    speedup = round(seq / par, 2)

    one_core_note = (
        "single-core host: shard processes time-slice one core, so the "
        "pool + rescan overhead makes sharding slower (byte-identity "
        "still verified every round); the >=1.3x bar applies to "
        "multi-core hosts"
    )
    payload = {
        "snapshot": "parallel replay PR — sharded analysis of one trace",
        "environment": {
            "python": platform.python_version(),
            "cpu_count": cpus,
            "note": one_core_note if cpus == 1 else
            f"multi-core host: speedup_shards_{shards} is the "
            "acceptance number",
        },
        "methodology": (
            f"synthetic page-coherent trace ({events} events, "
            f"{PAGES + 1} shadow pages, {THREADS} threads, hwlc+dr); "
            f"sequential and --shards {shards} replays interleaved for "
            f"{ROUNDS} rounds, best-of-{ROUNDS} per shape; every round "
            "byte-compared against the sequential reference first"
        ),
        "results": {
            "events": events,
            "sequential": {
                "wall_seconds": round(seq, 4),
                "events_per_sec": int(events / seq),
            },
            f"shards_{shards}": {
                "wall_seconds": round(par, 4),
                "events_per_sec": int(events / par),
            },
        },
        "speedup": {f"shards_{shards}": speedup},
    }
    (REPO_ROOT / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=1) + "\n", encoding="utf-8"
    )

    report("\n".join([
        f"Parallel replay ({events} events, {PAGES + 1} pages):",
        f"  sequential:   {seq:.3f}s  ({int(events / seq)} events/s)",
        f"  --shards {shards}:   {par:.3f}s  ({int(events / par)} events/s)"
        f"  ({speedup}x)",
        f"  (cpu_count={cpus}; BENCH_parallel.json updated)",
    ]))

    # Byte-identity always; scaling only where the cores exist.
    if cpus > 1:
        assert speedup >= 1.3, (
            f"sharded replay only {speedup}x on a {cpus}-core host"
        )
