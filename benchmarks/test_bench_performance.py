"""E7 — §4.5: the slowdown study.

Workload: the locked-counter benchmark loop at two concurrency levels,
measured as native Python, VM-only, and VM+detector, plus the trace-size
cost of post-mortem analysis.

Paper numbers: Valgrind VM alone 8-10×, with Helgrind 20-30× (analysis
≈2.5-3× on top of the VM).  Our VM is a Python interpreter hosted on a
Python interpreter, so its *absolute* slowdown is far larger; the
reproducible observation is the decomposition — a dominating VM cost
plus a bounded multiple for on-the-fly analysis, clearest in the
single-threaded tier where no carrier switching dilutes the measurement.
"""

from __future__ import annotations

from conftest import report

from repro.experiments.performance import measure_performance, trace_cost


def test_bench_slowdown_multithreaded(benchmark):
    perf = benchmark.pedantic(
        lambda: measure_performance(
            n_threads=4, iterations=120, repeats=2,
            detectors=("helgrind", "helgrind-orig", "djit"),
        ),
        rounds=1,
        iterations=1,
    )
    assert perf.vm_slowdown > 1
    report("Multi-threaded tier (4 guest threads):\n" + perf.format())


def test_bench_slowdown_single_threaded(benchmark):
    perf = benchmark.pedantic(
        lambda: measure_performance(
            n_threads=1, iterations=400, repeats=3,
            detectors=("helgrind", "djit"),
        ),
        rounds=1,
        iterations=1,
    )
    assert perf.vm_slowdown > 1
    # With no carrier switching, the analysis multiple is visible:
    assert perf.analysis_overhead("helgrind") > 1.0
    report("Single-threaded tier (analysis multiple isolated):\n" + perf.format())


def test_bench_trace_cost(benchmark):
    cost = benchmark.pedantic(
        lambda: trace_cost(n_threads=4, iterations=120), rounds=2, iterations=1
    )
    assert cost["events"] > 0
    report(
        "Post-mortem (offline) analysis cost (§4.5):\n"
        f"  trace length:        {int(cost['events'])} events\n"
        f"  serialized size:     ~{int(cost['estimated_bytes'])} bytes\n"
        f"  replay through HWLC+DR: {cost['replay_seconds'] * 1e3:.1f} ms\n"
        "  paper: 'offline techniques suffer from their need for large "
        "amount of data'"
    )
