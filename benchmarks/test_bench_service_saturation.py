"""Service saturation — aggregate ingest throughput vs `--workers`.

The sharding PR's claim: per-session lock-set analysis is
shared-nothing, so routing sessions to worker *processes* scales
aggregate events/s with cores, where the single-process thread pool
tops out near one core no matter how many clients connect.

The measurement streams M concurrent sessions (T1–T3, each twice)
into the service and divides the total decoded event count by the
wall-clock of the slowest session, for:

* the single-process server (the pre-PR shape, `--single-process`);
* the sharded server at ``--workers`` 1, 2 and 4.

Every report is asserted byte-identical to its offline twin before
any number is recorded — a fast wrong answer is not a result.
Results land in ``BENCH_service.json`` at the repo root.

On a single-core host (our CI container: ``cpu_count == 1``) worker
processes merely time-slice the one core, so the expected speedup is
≈1× and the sharded rows only verify correctness + overhead; the
≥1.5× acceptance bar applies to multi-core hosts and is asserted
only there.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import pytest

from conftest import report

from repro.api.profiles import profile
from repro.detectors import HelgrindDetector
from repro.runtime import codec
from repro.runtime.trace import TraceRecorder, replay_trace
from repro.service import AnalysisServer, ShardedAnalysisServer, fetch_report

REPO_ROOT = Path(__file__).resolve().parents[1]
CASES = ("T1", "T2", "T3")
CONFIG = "hwlc+dr"
#: Sessions per measurement — more sessions than workers, so every
#: worker has queued work at each fleet size.
SESSIONS_PER_RUN = 2  # each case this many times → 6 concurrent sessions
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def service_traces(tmp_path_factory):
    """``{case: (path, reference_bytes, events)}`` for T1–T3."""
    from repro.experiments.harness import run_proxy_case
    from repro.sip.workload import evaluation_cases

    root = tmp_path_factory.mktemp("saturation-traces")
    by_id = {c.case_id: c for c in evaluation_cases()}
    out = {}
    for case_id in CASES:
        path = root / f"{case_id}.rptr"
        with TraceRecorder(path, format="binary") as recorder:
            run_proxy_case(by_id[case_id], CONFIG, seed=42,
                           extra_hooks=(recorder,))
        det = HelgrindDetector(profile(CONFIG).config())
        replay_trace(path, det)
        reference = json.dumps(det.report.to_dict(), indent=2).encode()
        events = codec.trace_stats(path)["events"]
        out[case_id] = (path, reference, events)
    return out


def _drive(server_address, service_traces) -> float:
    """Stream every session concurrently; returns the wall-clock of
    the whole batch.  Raises if any report differs from its twin."""
    errors: list[Exception] = []

    def one(case_id: str) -> None:
        path, reference, _ = service_traces[case_id]
        try:
            got = fetch_report(
                path, CONFIG, socket_path=server_address, chunk_bytes=4096
            )
            if got != reference:
                raise AssertionError(f"{case_id}: report differs from offline")
        except Exception as exc:  # surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=one, args=(case_id,))
        for case_id in CASES
        for _ in range(SESSIONS_PER_RUN)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]
    return wall


def _measure(make_server, service_traces, tmp_path, rounds: int = 2) -> dict:
    """Best-of-``rounds`` events/s for one server shape."""
    total_events = SESSIONS_PER_RUN * sum(
        events for _, _, events in service_traces.values()
    )
    best = float("inf")
    for attempt in range(rounds):
        sock = tmp_path / f"bench-{attempt}.sock"
        server = make_server(str(sock))
        server.start()
        try:
            best = min(best, _drive(server.address, service_traces))
        finally:
            server.shutdown(drain=True, timeout=60.0)
    return {
        "events": total_events,
        "wall_seconds": round(best, 4),
        "events_per_sec": int(total_events / best),
    }


def test_bench_service_saturation(benchmark, service_traces, tmp_path):
    results: dict = {}

    def sweep() -> dict:
        results["single_process"] = _measure(
            lambda sock: AnalysisServer(socket_path=sock, workers=2),
            service_traces, tmp_path,
        )
        for n in WORKER_COUNTS:
            results[f"workers_{n}"] = _measure(
                lambda sock, n=n: ShardedAnalysisServer(
                    socket_path=sock, workers=n, threads=2
                ),
                service_traces, tmp_path,
            )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    base = results["single_process"]["events_per_sec"]
    speedups = {
        f"workers_{n}": round(results[f"workers_{n}"]["events_per_sec"] / base, 2)
        for n in WORKER_COUNTS
    }
    cpus = os.cpu_count() or 1
    one_core_note = (
        "single-core host: worker processes time-slice one core, so "
        "sharded throughput ~= single-process (verified byte-identical, "
        "not faster here); the >=1.5x bar applies to multi-core hosts"
    )
    payload = {
        "snapshot": "service sharding PR — saturation throughput vs --workers",
        "environment": {
            "python": platform.python_version(),
            "cpu_count": cpus,
            "note": one_core_note if cpus == 1 else
            "multi-core host: speedup_workers_2 is the acceptance number",
        },
        "methodology": (
            f"{SESSIONS_PER_RUN * len(CASES)} concurrent sessions "
            f"(T1-T3 x{SESSIONS_PER_RUN}, hwlc+dr, 4 KiB chunks) streamed "
            "over a unix socket; aggregate decoded events / batch "
            "wall-clock, best of 2 fresh-server rounds per shape; every "
            "report asserted byte-identical to offline replay first"
        ),
        "results": results,
        "speedup_vs_single_process": speedups,
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(payload, indent=1) + "\n", encoding="utf-8"
    )

    lines = [
        "Service saturation (events/s, aggregate over "
        f"{SESSIONS_PER_RUN * len(CASES)} sessions):",
        f"  single-process:  {base}",
    ]
    for n in WORKER_COUNTS:
        lines.append(
            f"  --workers {n}:     "
            f"{results[f'workers_{n}']['events_per_sec']}"
            f"  ({speedups[f'workers_{n}']}x)"
        )
    lines.append(f"  (cpu_count={cpus}; BENCH_service.json updated)")
    report("\n".join(lines))

    # Correctness always; scaling only where the cores exist.
    if cpus >= 4:
        assert speedups["workers_2"] >= 1.5, speedups
    elif cpus >= 2:
        assert speedups["workers_2"] >= 1.1, speedups
