"""E9 — §4.1: every documented real-bug class is actually found.

Workload: the proxy with exactly one injected bug enabled at a time
(HWLC+DR detector + instrumented build, so the false-positive classes
are out of the way), verified against the ground-truth oracle's bug ids.

For ``init-order`` — which the paper says "would not occur often enough
to attract attention" in the usual environment — a seed sweep is used.
"""

from __future__ import annotations

from conftest import report

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.detectors.classify import classify_report
from repro.oracle import GroundTruth
from repro.runtime import VM, RandomScheduler
from repro.sip.bugs import ALL_BUG_IDS, BUGS
from repro.sip.server import ProxyConfig, SipProxy
from repro.sip.workload import evaluation_cases


def run_with_bug(bug_id: str, *, seed: int = 42):
    truth = GroundTruth()
    proxy = SipProxy(
        ProxyConfig(bugs=frozenset({bug_id}), instrumented=True), truth=truth
    )
    det = HelgrindDetector(HelgrindConfig.hwlc_dr())
    vm = VM(detectors=(det,), scheduler=RandomScheduler(seed), step_limit=10_000_000)
    vm.run(proxy.main, evaluation_cases()[3].wires)
    return classify_report(det.report, truth)


def test_bench_true_positive_catalogue(benchmark):
    benchmark.pedantic(
        lambda: run_with_bug("return-reference"), rounds=2, iterations=1
    )
    lines = ["§4.1 true positives — injected bug classes vs detection"]
    for bug_id in sorted(ALL_BUG_IDS):
        if bug_id == "init-order":
            hits = sum(
                bug_id in run_with_bug(bug_id, seed=s).bug_ids_found()
                for s in range(6)
            )
            found = hits >= 1
            detail = f"found under {hits}/6 schedules (schedule-dependent, §4.1.1)"
        else:
            classified = run_with_bug(bug_id)
            found = bug_id in classified.bug_ids_found()
            detail = f"{sum(1 for i in classified.items if i.bug_id == bug_id)} locations"
        assert found, bug_id
        lines.append(f"  {bug_id:20s} DETECTED  ({detail})  [{BUGS[bug_id].paper_ref}]")
    report("\n".join(lines))


def test_bench_fixed_proxy_clean(benchmark):
    """The regression direction: with every bug repaired, no true races."""

    def run_fixed():
        truth = GroundTruth()
        proxy = SipProxy(ProxyConfig.fixed(instrumented=True), truth=truth)
        det = HelgrindDetector(HelgrindConfig.hwlc_dr())
        vm = VM(detectors=(det,), scheduler=RandomScheduler(42), step_limit=10_000_000)
        vm.run(proxy.main, evaluation_cases()[3].wires)
        return classify_report(det.report, truth)

    classified = benchmark.pedantic(run_fixed, rounds=2, iterations=1)
    assert classified.true_races == 0
