#!/usr/bin/env python3
"""Deadlock detection, both flavours the paper mentions (§3.3).

1. The *lock-order graph*: the tool reports a potential deadlock when
   two locks are ever taken in both orders — even if this run got
   lucky.  ("the race-checker also does dead-lock detection")
2. The *actual* deadlock: under an unlucky schedule the same program
   wedges, and the VM reports exactly which thread waits on what.

Run with::

    python examples/deadlock_detection.py
"""

from repro import VM, LockGraphDetector
from repro.errors import DeadlockError
from repro.runtime import FixedOrderScheduler


def transfer_program(api, pause_between_locks: bool):
    """Two accounts, two locks, two transfer directions — the classic."""
    account_a = api.malloc(1, tag="account-a")
    account_b = api.malloc(1, tag="account-b")
    api.store(account_a, 100)
    api.store(account_b, 100)
    lock_a = api.mutex("account-a-lock")
    lock_b = api.mutex("account-b-lock")

    def transfer(a, src_lock, dst_lock, src, dst, amount, name):
        with a.frame(name, "bank.cpp", 50):
            a.lock(src_lock)
            if pause_between_locks:
                a.sleep(3)  # widen the window
            a.lock(dst_lock)
            a.store(src, a.load(src) - amount)
            a.store(dst, a.load(dst) + amount)
            a.unlock(dst_lock)
            a.unlock(src_lock)

    t1 = api.spawn(transfer, lock_a, lock_b, account_a, account_b, 10, "a_to_b")
    t2 = api.spawn(transfer, lock_b, lock_a, account_b, account_a, 20, "b_to_a")
    api.join(t1)
    api.join(t2)
    return api.load(account_a), api.load(account_b)


def main() -> None:
    print("=== run 1: a lucky schedule (sequential transfers) ===")
    detector = LockGraphDetector()
    # Scripted schedule: let each worker run to completion in turn.
    vm = VM(detectors=(detector,), scheduler=FixedOrderScheduler([0] * 50 + [1] * 50 + [2] * 50))
    balances = vm.run(transfer_program, False)
    print(f"transfers completed, balances: {balances}")
    print(f"lock-order cycles found anyway: {detector.cycles_found}")
    for warning in detector.report:
        print(warning.format())
    assert detector.cycles_found == 1
    print()
    print("the tool warns even though THIS run survived — that is the")
    print("point of lock-order analysis.\n")

    print("=== run 2: the unlucky schedule ===")
    vm2 = VM()
    try:
        vm2.run(transfer_program, True)
        print("survived (change the scheduler/seed to wedge it)")
    except DeadlockError as deadlock:
        print(f"the VM detected the wedge: {deadlock}")
        print()
        print("§3.3: applications used to detect this themselves 'using a")
        print("timeout while trying to acquire a lock inside the")
        print("lock-function' — with the tool, that hand-rolled (and itself")
        print("racy, §4.1!) machinery is unnecessary.")


if __name__ == "__main__":
    main()
