#!/usr/bin/env python3
"""§2.1's limitation of *every* data-race definition — and a detector for it.

The paper's own example: a person record with date-of-birth and age.
Every single field access is protected by the mutex, so the lock-set
algorithm — correctly, by its definition — reports nothing.  Yet the
writer releases the lock between the two dependent updates, so a reader
can observe a new date-of-birth with a stale age: a *high-level data
race* (Artho, Havelund & Biere [1], cited in §2.1).

This example shows both: Helgrind silent, the view-consistency detector
flagging the torn update — and, under the right schedule, the torn
record actually being observed.

Run with::

    python examples/highlevel_race.py
"""

from repro import VM, HelgrindConfig, HelgrindDetector
from repro.detectors import AtomizerDetector, HighLevelRaceDetector
from repro.runtime import FixedOrderScheduler


def person_record(api, observations):
    """dob/age with individually-locked setters (the §2.1 structure)."""
    dob = api.malloc(1, tag="person.dob")
    age = api.malloc(1, tag="person.age")
    api.store(dob, 1970)
    api.store(age, 37)
    m = api.mutex("person-guard")

    def update_person(a):
        with a.frame("update_person", "person.cpp", 20):
            with a.atomic_region("update_person"):  # the *intent*
                a.lock(m)
                a.store(dob, 1980)  # setDateOfBirth(1980)
                a.unlock(m)
                a.yield_()  # <- the lock is released between dependent writes
                a.lock(m)
                a.store(age, 27)  # setAge(27)
                a.unlock(m)

    def read_person(a):
        with a.frame("read_person", "person.cpp", 40):
            a.lock(m)
            observations.append((a.load(dob), a.load(age)))
            a.unlock(m)

    t1 = api.spawn(update_person)
    t2 = api.spawn(read_person)
    api.join(t1)
    api.join(t2)


def main() -> None:
    # A schedule that lets the reader slip between the two updates:
    # the updater (tid 1) finishes its first critical section, then the
    # reader (tid 2) runs to completion before the age is written.
    schedule = [1] + [2] * 20

    observations: list[tuple[int, int]] = []
    helgrind = HelgrindDetector(HelgrindConfig.hwlc_dr())
    highlevel = HighLevelRaceDetector()
    atomizer = AtomizerDetector()
    vm = VM(
        detectors=(helgrind, highlevel, atomizer),
        scheduler=FixedOrderScheduler(schedule),
    )
    vm.run(person_record, observations)
    highlevel.finalize()

    dob, age = observations[0]
    torn = (dob == 1980 and age == 37)
    print(f"reader observed: born {dob}, age {age}"
          + ("   <- TORN RECORD (new dob, stale age)" if torn else ""))
    print()
    print(f"Helgrind (lock-set) warnings:        {helgrind.report.location_count}")
    print("  -> every single access was properly locked; by the access-level")
    print("     definition there is no data race.  (§2.1: 'The weakness of")
    print("     the definition is that the program can reach an inconsistent")
    print("     state, even if every single access ... is protected.')")
    print()
    print(f"view-consistency warnings:           {highlevel.report.location_count}")
    for warning in highlevel.report:
        print(warning.format())
    print()
    print(f"atomicity (Atomizer) warnings:       {atomizer.report.location_count}")
    for warning in atomizer.report:
        print(warning.format())
    assert helgrind.report.location_count == 0
    assert highlevel.report.location_count >= 1
    assert atomizer.report.location_count >= 1


if __name__ == "__main__":
    main()
