#!/usr/bin/env python3
"""§3.1/§3.3: the transparent delete-site annotation pipeline.

Builds a MiniCxx program twice — once plainly, once through the
annotation stage — shows the Figure 4 source transformation, and runs
both binaries under the race detector to show the destructor false
positives disappearing.

Run with::

    python examples/instrumented_build.py
"""

from repro import VM, HelgrindConfig, HelgrindDetector
from repro.instrument import BuildOptions, BuildPipeline

SOURCE = """
// A polymorphic message object shared between request workers.
class Message {
    field length;
    method size() { return this.length; }
};
class SipRequest : Message {
    field method_name;
};

fn reader(msg, m) {
    lock(m);
    var n = msg.size();     // virtual call: reads the vptr
    unlock(m);
    sleep(20);              // keeps serving other requests
}

fn main() {
    var m = mutex();
    var msg = new SipRequest;
    msg.length = 42;
    var t1 = spawn reader(msg, m);
    var t2 = spawn reader(msg, m);
    sleep(8);               // protocol: readers are done with msg by now
    delete msg;             // base-class dtor rewrites the vptr!
    join t1;
    join t2;
}
"""


def build_and_run(instrument: bool):
    pipeline = BuildPipeline()
    artifacts = pipeline.build(SOURCE, BuildOptions(instrument=instrument))
    detector = HelgrindDetector(HelgrindConfig.hwlc_dr())
    VM(detectors=(detector,)).run(artifacts.program.main)
    return artifacts, detector


def main() -> None:
    print("=== build WITHOUT instrumentation ===")
    plain_art, plain_det = build_and_run(instrument=False)
    print(f"delete sites: {plain_art.delete_sites}, annotated: {plain_art.annotated_sites}")
    print(f"warnings: {plain_det.report.location_count}")
    for warning in plain_det.report:
        print(warning.format())
    assert plain_det.report.location_count >= 1
    print()

    print("=== build WITH instrumentation (the §3.3 wrapper script) ===")
    inst_art, inst_det = build_and_run(instrument=True)
    print(f"delete sites: {inst_art.delete_sites}, annotated: {inst_art.annotated_sites}")
    print(f"warnings: {inst_det.report.location_count}")
    assert inst_det.report.location_count == 0
    print()

    print("the annotated source the second stage emitted (Figure 4):")
    print("-" * 60)
    for line in inst_art.annotated_source.splitlines():
        if line.strip():
            print("  " + line)
    print("-" * 60)
    print()
    print('paper §3.1: "Annotation is done on-the-fly and it is easily')
    print('removed from the build process, since the source code is not')
    print('modified, neither by the annotation tool nor by the programmer."')


if __name__ == "__main__":
    main()
