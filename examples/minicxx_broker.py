#!/usr/bin/env python3
"""A complete MiniCxx application built through the §3.3 pipeline.

A small message broker written in MiniCxx — classes with inheritance
and virtual dispatch, a worker pool fed through a queue, COW strings,
globals, locks — preprocessed, (optionally) annotated and compiled,
then raced under three detector configurations.  Demonstrates that the
instrumentation front-end handles a real program, not just snippets.

Run with::

    python examples/minicxx_broker.py
"""

from repro import VM, HelgrindConfig, HelgrindDetector
from repro.instrument import BuildOptions, BuildPipeline
from repro.runtime import RandomScheduler

CONFIG_H = """
#ifndef CONFIG_H
#define CONFIG_H
#define N_WORKERS 3
#define N_JOBS 9
#endif
"""

BROKER_SRC = """
#include "config.h"

global processed = 0;
global rejected = 0;

class Message {
    field topic;
    field payload;
    method describe() { return this.topic; }
    method weight() { return 1; }
};
class UrgentMessage : Message {
    field deadline;
    method weight() { return 10; }
    dtor { print("urgent-destroyed"); }
};

fn make_message(i) {
    if (i % 3 == 0) {
        var u = new UrgentMessage;
        u.topic = "alerts";
        u.payload = i;
        u.deadline = i + 100;
        return u;
    }
    var msg = new Message;
    msg.topic = "telemetry";
    msg.payload = i;
    return msg;
}

fn worker(jobs, stats_lock, id) {
    while (true) {
        var msg = take(jobs);
        if (msg == null) { return; }
        var label = msg.describe();
        var w = msg.weight();
        lock(stats_lock);
        if (w > 5) {
            processed = processed + w;
        } else {
            processed = processed + 1;
        }
        unlock(stats_lock);
        delete msg;
    }
}

fn main() {
    var jobs = queue();
    var stats_lock = mutex();
    var w1 = spawn worker(jobs, stats_lock, 1);
    var w2 = spawn worker(jobs, stats_lock, 2);
    var w3 = spawn worker(jobs, stats_lock, 3);
    var i = 0;
    while (i < N_JOBS) {
        put(jobs, make_message(i));
        i = i + 1;
    }
    put(jobs, null);
    put(jobs, null);
    put(jobs, null);
    join w1;
    join w2;
    join w3;
    lock(stats_lock);
    var total = processed;
    unlock(stats_lock);
    print(total);
    return total;
}
"""


def build_and_run(instrument: bool, det_config, *, force_new: bool = False):
    pipeline = BuildPipeline(includes={"config.h": CONFIG_H})
    artifacts = pipeline.build(
        BROKER_SRC,
        BuildOptions(instrument=instrument, force_new_allocator=force_new),
    )
    detector = HelgrindDetector(det_config)
    vm = VM(detectors=(detector,), scheduler=RandomScheduler(11))
    result = vm.run(artifacts.program.main)
    return artifacts, detector, result


def main() -> None:
    print("building the broker through preprocess -> annotate -> compile ...\n")
    # Each row removes one §4 warning source: queue-aware HB kills the
    # Figure 11 hand-off FPs, the annotated build kills the destructor
    # FPs, and the force-new allocator (GLIBCPP_FORCE_NEW, §4) kills the
    # pool-reuse FPs left by messages recycled across dialogs.
    runs = [
        ("plain build, lock-set+segments", False, HelgrindConfig.hwlc_dr(), False),
        ("plain build, queue-aware (ext.)", False, HelgrindConfig.extended(), False),
        ("instrumented, queue-aware", True, HelgrindConfig.extended(), False),
        ("instrumented, queue-aware, force-new", True, HelgrindConfig.extended(), True),
    ]
    print(f"{'build / detector':40s} {'result':>7s} {'warnings':>9s}")
    results = []
    for label, instrument, config, force_new in runs:
        artifacts, detector, result = build_and_run(
            instrument, config, force_new=force_new
        )
        print(f"{label:40s} {result:7d} {detector.report.location_count:9d}")
        results.append((artifacts, detector, result))

    counts = [det.report.location_count for _, det, _ in results]
    # Rows 2 and 3 are both dominated by pool-reuse noise (recycled
    # message memory carries stale shadow state into the next dialog —
    # the §4 libstdc++ issue — so their exact counts wobble); the
    # force-new row must be clean and the first row the worst.
    assert counts[0] > 0
    assert counts[3] == 0
    art, det, result = results[3]
    assert result == 3 * 10 + 6  # three urgent (weight 10) + six normal
    assert art.annotated_sites == art.delete_sites == 1
    print()
    print(f"program output: {art.program.last_output}")
    print("every §4 warning source eliminated by its own remedy; same answer.")


if __name__ == "__main__":
    main()
