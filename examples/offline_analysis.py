#!/usr/bin/env python3
"""§4.5: on-the-fly vs post-mortem (offline) analysis.

The paper weighs the two modes: on-the-fly checking slows the program
down while it runs; offline checking runs the program (almost) clean
but must **log every memory access** — "in our case, where each access
to a memory location had to be logged, offline analysis would be almost
impossible for long execution traces."

This example runs a SIP test case once with only a trace recorder
attached, shows what the log costs, replays it through a detector after
the fact, and verifies the post-mortem report is identical to an
on-the-fly run — detectors here are pure functions of the event stream.

Run with::

    python examples/offline_analysis.py
"""

import tempfile
from pathlib import Path

from repro import VM, HelgrindConfig, HelgrindDetector
from repro.runtime import RandomScheduler
from repro.runtime.trace import TraceRecorder, load_trace, replay
from repro.sip import ProxyConfig, SipProxy, evaluation_cases
from repro.sip.bugs import EVALUATION_BUGS


def run_proxy(detectors):
    proxy = SipProxy(ProxyConfig(bugs=EVALUATION_BUGS))
    vm = VM(detectors=detectors, scheduler=RandomScheduler(42), step_limit=10_000_000)
    vm.run(proxy.main, evaluation_cases()[2].wires)
    return vm


def main() -> None:
    case = evaluation_cases()[2]
    print(f"workload: {case.case_id} ({case.name}), {case.message_count} requests\n")

    # --- phase 1: execution with logging only (the 'offline' deal) ----
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "execution.trace"
        with TraceRecorder(trace_path) as recorder:
            vm = run_proxy((recorder,))
        size = trace_path.stat().st_size
        print("phase 1 — run with logging only:")
        print(f"  events logged:     {len(recorder)}")
        print(f"  trace file size:   {size} bytes "
              f"({size // max(1, len(recorder))} bytes/event)")
        print(f"  (this grows linearly with execution, which is the §4.5")
        print(f"   objection to offline mode for long-running servers)\n")

        # --- phase 2: post-mortem analysis -----------------------------
        loaded = load_trace(trace_path)  # streaming generator
        offline = HelgrindDetector(HelgrindConfig.original())
        replay(loaded, offline, vm=vm)
        print("phase 2 — post-mortem replay through Helgrind (original):")
        print(f"  {offline.report.location_count} reported locations\n")

    # --- cross-check: identical to on-the-fly ------------------------
    online = HelgrindDetector(HelgrindConfig.original())
    run_proxy((online,))
    print("cross-check — the same detector on-the-fly:")
    print(f"  {online.report.location_count} reported locations")
    assert online.report.locations() == offline.report.locations()
    print("  identical location sets: detectors are pure functions of the")
    print("  event stream, so both §4.5 modes are available interchangeably.")


if __name__ == "__main__":
    main()
