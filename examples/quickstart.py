#!/usr/bin/env python3
"""Quickstart: find a data race in sixty seconds.

Write a guest program against :class:`repro.runtime.vm.GuestAPI`, attach
a detector, run — the warning prints in Helgrind's Figure 9 shape.

Run with::

    python examples/quickstart.py
"""

from repro import VM, HelgrindConfig, HelgrindDetector


def program(api):
    """Two workers increment a shared counter; one forgets the lock."""
    counter = api.malloc(1, tag="hit-counter")
    api.store(counter, 0)
    m = api.mutex("counter-guard")

    def careful_worker(a):
        with a.frame("careful_worker", "workers.cpp", 11):
            for _ in range(5):
                a.lock(m)
                a.store(counter, a.load(counter) + 1)
                a.unlock(m)

    def sloppy_worker(a):
        with a.frame("sloppy_worker", "workers.cpp", 23):
            for _ in range(5):
                a.store(counter, a.load(counter) + 1)  # forgot the lock!

    t1 = api.spawn(careful_worker)
    t2 = api.spawn(sloppy_worker)
    api.join(t1)
    api.join(t2)
    return api.load(counter)


def main() -> None:
    detector = HelgrindDetector(HelgrindConfig.hwlc_dr())
    vm = VM(detectors=(detector,))
    final_value = vm.run(program)

    print(f"final counter value: {final_value} (10 expected — updates may be lost!)")
    print()
    print(detector.report.format_summary())
    print()
    for warning in detector.report:
        print(warning.format())
        print()
    assert detector.report.location_count >= 1, "the race should be reported"
    print("the sloppy_worker's unlocked accesses were caught.")


if __name__ == "__main__":
    main()
