#!/usr/bin/env python3
"""Systematic schedule exploration: §4.3's hope, made a proof.

The paper's remedy for schedule-dependent detection is to re-run with
different inputs and hope for different interleavings.  On a
deterministic VM we can *enumerate* the interleavings of small programs
instead, CHESS-style — and turn three of the paper's claims into
exhaustive verdicts:

1. the unlocked-unlocked race is reported under **every** schedule
   (lock-set detection really is schedule-independent here);
2. the §4.3 unlocked-vs-locked race is reported under some schedules
   and provably **missed** under others (delayed initialisation);
3. the lost-update corruption is real: some schedule yields the wrong
   counter value.

Run with::

    python examples/schedule_exploration.py
"""

from repro import HelgrindConfig, HelgrindDetector
from repro.runtime import explore


def plain_race(api):
    counter = api.malloc(1)
    api.store(counter, 0)

    def w(a):
        a.store(counter, a.load(counter) + 1)

    t1, t2 = api.spawn(w), api.spawn(w)
    api.join(t1)
    api.join(t2)
    return api.load(counter)


def delayed_init_race(api):
    addr = api.malloc(1)
    api.store(addr, 0)
    m = api.mutex()

    def unlocked_writer(a):
        a.store(addr, 1)

    def locked_writer(a):
        a.lock(m)
        a.store(addr, 2)
        a.unlock(m)

    t1, t2 = api.spawn(unlocked_writer), api.spawn(locked_writer)
    api.join(t1)
    api.join(t2)


def main() -> None:
    detector = lambda: HelgrindDetector(HelgrindConfig.hwlc())  # noqa: E731

    print("1) unlocked vs unlocked (no hiding place):")
    result = explore(plain_race, detector_factories=(detector,), max_schedules=1024)
    print("   " + result.format().replace("\n", "\n   "))
    assert result.exhausted
    assert result.races_found == result.schedules_run
    print(f"   -> reported under all {result.schedules_run} schedules\n")

    print("2) the §4.3 case — unlocked vs locked writer:")
    result = explore(
        delayed_init_race, detector_factories=(detector,), max_schedules=2048
    )
    print("   " + result.format().replace("\n", "\n   "))
    assert result.exhausted
    missed = result.schedules_run - result.races_found
    print(
        f"   -> reported under {result.races_found} schedules, MISSED under "
        f"{missed} (delayed lock-set initialisation) — the paper: 'this is "
        "not\n      guaranteed to happen in the development environment'\n"
    )

    print("3) the corruption the race causes:")
    result = explore(plain_race, max_schedules=1024)
    print(f"   distinct final counter values: {sorted(result.distinct_results())}")
    assert result.distinct_results() == {1, 2}
    print("   -> one schedule loses an update: the failure is real, not")
    print("      just a warning.")


if __name__ == "__main__":
    main()
