#!/usr/bin/env python3
"""The full §3.2 debugging process on the SIP proxy server.

Instrumentation → Execution → Analysis, exactly as the paper describes
it: run one SIPp test case against the (buggy) proxy under the three
detector configurations, print the warning counts, and triage the final
run's warnings into the paper's categories — ending with the list of
*real* bugs found (§4.1).

Run with::

    python examples/sip_proxy_debugging.py
"""

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.detectors.classify import classify_report
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM, RandomScheduler
from repro.sip import ProxyConfig, SipProxy, evaluation_cases
from repro.sip.bugs import BUGS, EVALUATION_BUGS


def debug_run(case, config_name: str, det_config: HelgrindConfig):
    """One pass of the debugging loop: build, execute on the VM, log."""
    truth = GroundTruth()
    proxy = SipProxy(
        ProxyConfig(
            bugs=EVALUATION_BUGS,
            # Stage 1 (instrumentation): the build switch — delete sites
            # emit HG_DESTRUCT when the detector will honour them.
            instrumented=det_config.honor_destruct,
        ),
        truth=truth,
    )
    detector = HelgrindDetector(det_config)
    vm = VM(
        detectors=(detector,),
        scheduler=RandomScheduler(42),
        step_limit=10_000_000,
    )
    # Stage 2 (execution): the test suite drives the proxy on the VM.
    result = vm.run(proxy.main, case.wires)
    # Stage 3 (analysis): triage the log.
    classified = classify_report(detector.report, truth)
    return detector, classified, result


def main() -> None:
    case = evaluation_cases()[0]  # T1
    print(f"test case {case.case_id} ({case.name}): {case.message_count} requests")
    print(f"  {case.description}")
    print()

    configs = [
        ("Original", HelgrindConfig.original()),
        ("HWLC", HelgrindConfig.hwlc()),
        ("HWLC+DR", HelgrindConfig.hwlc_dr()),
    ]
    last = None
    print(f"{'configuration':14s} {'locations':>10s}   notes")
    for name, det_config in configs:
        detector, classified, result = debug_run(case, name, det_config)
        notes = ", ".join(
            f"{cat.value}={n}" for cat, n in sorted(
                classified.counts.items(), key=lambda kv: -kv[1]
            )
        )
        print(f"{name:14s} {detector.report.location_count:10d}   {notes}")
        last = classified
    print()

    print("triage of the HWLC+DR run (the analyst's worklist):")
    real = last.of(WarningCategory.TRUE_RACE)
    bug_ids = sorted({item.bug_id for item in real if item.bug_id})
    for bug_id in bug_ids:
        bug = BUGS[bug_id]
        locations = sum(1 for item in real if item.bug_id == bug_id)
        print(f"  [{bug.paper_ref}] {bug.title}")
        print(f"      {locations} warning location(s); fix: {bug.fix}")
    print()
    print("after fixing: re-run the suite — 'all warnings related to the")
    print("corrected defect will disappear and do not have to be considered")
    print("again' (§4).")

    # Run the *fixed* proxy to confirm the worklist empties:
    truth = GroundTruth()
    proxy = SipProxy(ProxyConfig.fixed(instrumented=True), truth=truth)
    detector = HelgrindDetector(HelgrindConfig.hwlc_dr())
    vm = VM(detectors=(detector,), scheduler=RandomScheduler(42), step_limit=10_000_000)
    vm.run(proxy.main, case.wires)
    fixed = classify_report(detector.report, truth)
    print()
    print(
        f"fixed proxy, same test case: {fixed.true_races} true races remain "
        f"({detector.report.location_count} locations total)"
    )


if __name__ == "__main__":
    main()
