#!/usr/bin/env python3
"""Figure 8/9 of the paper: the ``std::string`` reference-counter FP.

``stringtest.cpp`` copies a shared COW string from two threads.  The
counter is protected by the hardware bus lock (``LOCK``-prefixed
increments), but the *checks* of the counter are plain reads — under the
original Helgrind bus-lock model the candidate lock-set drains and
``_M_grab`` is reported (Figure 9); under the paper's corrected
(read-write-lock) model the warning disappears.

Run with::

    python examples/stringtest.py
"""

from repro import VM, HelgrindConfig, HelgrindDetector
from repro.cxx import CowString, CxxAllocator
from repro.cxx.allocator import AllocStrategy


def stringtest(api):
    """A line-for-line transcription of the paper's stringtest.cpp."""
    alloc = CxxAllocator(api, strategy=AllocStrategy.FORCE_NEW)

    with api.frame("main", "stringtest.cpp", 16):
        text = CowString.create(api, "contents", alloc)  # std::string text("contents");

    def worker_thread(a):
        with a.frame("workerThread", "stringtest.cpp", 10):
            local = text.copy(a)  # std::string text = *(std::string*)arguments;
            local.dispose(a)

    thread_id = api.spawn(worker_thread)  # pthread_create(...)
    api.sleep(3)  # sleep(1);
    with api.frame("main", "stringtest.cpp", 22):
        text_copy = text.copy(api)  # std::string text_copy = text;  <- reported conflict
    api.join(thread_id)  # pthread_join(...)
    text_copy.dispose(api)
    text.dispose(api)


def run(config: HelgrindConfig):
    detector = HelgrindDetector(config)
    VM(detectors=(detector,)).run(stringtest)
    return detector


def main() -> None:
    print("=== original Helgrind bus-lock model (a mutex held only during")
    print("    LOCK-prefixed accesses) ===\n")
    original = run(HelgrindConfig.original())
    for warning in original.report:
        print(warning.format())
        print()
    assert original.report.location_count >= 1

    print("=== corrected model (HWLC: an implicit read-write lock; every")
    print("    plain read holds it in read mode) ===\n")
    corrected = run(HelgrindConfig.hwlc())
    print(f"warnings: {corrected.report.location_count}")
    assert corrected.report.location_count == 0
    print()
    print('paper §4.2.2: "As already described, we implemented this')
    print('correction successfully."')


if __name__ == "__main__":
    main()
