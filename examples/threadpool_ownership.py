#!/usr/bin/env python3
"""Figures 10 and 11: ownership transfer the detector can(not) see.

Figure 10 — *thread-per-request*: message data passes to the worker via
``pthread_create`` and back via ``pthread_join``.  The thread-segment
graph covers both edges, so the lock-set detector stays silent.

Figure 11 — *thread pool*: the same data passes through a message
queue's put/get instead.  The segment graph has no edge for that, so the
lock-set detector reports false positives — "the accesses are clearly
separated by the put and get operations, but the algorithm does not
detect that."  The paper leaves this as future work (§5); the
``extended`` configuration implements it (queue-aware happens-before),
and the DJIT baseline never had the problem.

Run with::

    python examples/threadpool_ownership.py
"""

from repro import VM, DjitDetector, HelgrindConfig, HelgrindDetector


def thread_per_request(api):
    """Figure 10: create/join hand-off, one worker per request."""
    for i in range(4):
        data = api.malloc(3, tag=f"request-{i}")
        with api.frame("setup_request", "accept.cpp", 12):
            for j in range(3):
                api.store(data + j, j)

        def worker(a, base=data):
            with a.frame("process_request", "worker.cpp", 40):
                for j in range(3):
                    a.store(base + j, a.load(base + j) * 2)

        t = api.spawn(worker)
        api.join(t)
        with api.frame("collect_result", "accept.cpp", 20):
            for j in range(3):
                api.load(data + j)


def thread_pool(api):
    """Figure 11: the same work, handed over through a queue."""
    jobs = api.queue(name="jobs")

    def pool_worker(a):
        while True:
            base = a.get(jobs)
            if base is None:
                return
            with a.frame("process_request", "pool.cpp", 40):
                for j in range(3):
                    a.store(base + j, a.load(base + j) * 2)

    workers = [api.spawn(pool_worker) for _ in range(2)]
    for i in range(4):
        data = api.malloc(3, tag=f"job-{i}")
        with api.frame("setup_request", "pool.cpp", 12):
            for j in range(3):
                api.store(data + j, j)
        api.put(jobs, data)
    for _ in workers:
        api.put(jobs, None)
    for w in workers:
        api.join(w)


def count(program, detector):
    VM(detectors=(detector,)).run(program)
    return detector.report.location_count


def main() -> None:
    helgrind = HelgrindConfig.hwlc_dr
    extended = HelgrindConfig.extended

    print("Figure 10 — thread-per-request (create/join hand-off):")
    n = count(thread_per_request, HelgrindDetector(helgrind()))
    print(f"  Helgrind (lock-set + segments): {n} warnings")
    assert n == 0
    print("  -> the thread-segment graph sees the create and join edges\n")

    print("Figure 11 — thread pool (queue hand-off):")
    n_lockset = count(thread_pool, HelgrindDetector(helgrind()))
    n_extended = count(thread_pool, HelgrindDetector(extended()))
    n_djit = count(thread_pool, DjitDetector())
    print(f"  Helgrind (lock-set + segments): {n_lockset} warnings  <- Figure 11's FPs")
    print(f"  extended (queue-aware, §5):     {n_extended} warnings")
    print(f"  DJIT (happens-before, §2.2):    {n_djit} warnings")
    assert n_lockset > 0 and n_extended == 0 and n_djit == 0
    print()
    print('paper §5: "Common concurrent patterns often rely on higher level')
    print('constructs for synchronization that the lock-set algorithm is')
    print('unaware of."')


if __name__ == "__main__":
    main()
