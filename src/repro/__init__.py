"""repro — fault detection in multi-threaded (simulated) C++ server applications.

A from-scratch Python reproduction of

    Arndt Mühlenfeld and Franz Wotawa,
    *Fault Detection in Multi-Threaded C++ Server Applications*,
    Electronic Notes in Theoretical Computer Science 174 (2007) 5-22.

The package contains everything the paper's experiments depend on:

``repro.runtime``
    A deterministic cooperative virtual machine — the Valgrind analogue.
    Guest threads run one at a time under a seeded scheduler; every
    memory access, lock operation and allocation is trapped and shown to
    detector hooks.
``repro.cxx``
    A simulated C++ object model: class hierarchies whose destruction
    rewrites object headers (the vptr writes behind the paper's
    destructor false positives), a reference-counted copy-on-write
    string (Figure 8), pooled STL-style allocation (§4's libstdc++
    issue) and non-thread-safe libc functions (§4.1.3).
``repro.instrument``
    The ELSA-parser analogue: a small C++-like language (MiniCxx), a
    three-stage build pipeline (preprocess → annotate → compile) and the
    automatic ``delete``-site annotation of Figure 4.
``repro.detectors``
    The paper's contribution: the Eraser lock-set algorithm with the
    Figure 1 state machine, VisualThreads thread segments (Figure 2),
    the corrected hardware bus-lock model (HWLC), destructor-annotation
    support (DR), plus DJIT vector-clock and hybrid baselines, deadlock
    detection and suppression files.
``repro.sip``
    The application under test: a simulated SIP proxy server with the
    paper's documented bug classes injected, plus a SIPp-like workload
    generator providing test cases T1-T8.
``repro.experiments``
    The harness that regenerates every table and figure of the paper's
    evaluation (see ``EXPERIMENTS.md``).
``repro.api``
    The public facade (``docs/API.md``): :class:`~repro.api.Pipeline`
    (configuration → detector/VM wiring), :class:`~repro.api.Session`
    (incremental analysis with snapshot/restore) and
    :func:`~repro.api.detector_config`.
``repro.service``
    The streaming analysis service (``docs/SERVICE.md``): ``repro
    serve`` accepts concurrent clients streaming RPTR v1 traces into
    per-session detector pipelines with backpressure and checkpoints.
"""

from repro import api
from repro.api import Pipeline, Session, detector_config, detector_configs
from repro.detectors import (
    DjitDetector,
    HelgrindConfig,
    HelgrindDetector,
    HybridDetector,
    LockGraphDetector,
    Report,
    Suppressions,
    Warning_,
)
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import (
    VM,
    GuestAPI,
    RandomScheduler,
    RoundRobinScheduler,
    SimThread,
    StickyScheduler,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "Pipeline",
    "Session",
    "detector_config",
    "detector_configs",
    "VM",
    "GuestAPI",
    "SimThread",
    "RoundRobinScheduler",
    "RandomScheduler",
    "StickyScheduler",
    "HelgrindDetector",
    "HelgrindConfig",
    "DjitDetector",
    "HybridDetector",
    "LockGraphDetector",
    "Report",
    "Warning_",
    "Suppressions",
    "GroundTruth",
    "WarningCategory",
    "__version__",
]
