"""``python -m repro`` entry point — see :mod:`repro.cli`."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
