"""Small internal utilities shared across the package.

Nothing in here is part of the public API; import from the concrete
submodules (:mod:`repro._util.ids`, :mod:`repro._util.rng`,
:mod:`repro._util.tables`) inside the library only.
"""

from repro._util.ids import IdAllocator
from repro._util.rng import SplitMix64
from repro._util.tables import format_table

__all__ = ["IdAllocator", "SplitMix64", "format_table"]
