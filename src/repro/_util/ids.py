"""Monotonic id allocation.

Every entity in the simulated world (threads, thread segments, locks,
memory blocks, warnings, transactions...) carries a small integer id.
Ids are allocated per-VM (not globally) so that runs are reproducible:
the same program under the same seed allocates the same ids, which keeps
golden-output tests and trace diffs stable.
"""

from __future__ import annotations

__all__ = ["IdAllocator"]


class IdAllocator:
    """Hands out consecutive integers starting from ``first``.

    >>> ids = IdAllocator()
    >>> ids.next(), ids.next(), ids.next()
    (0, 1, 2)
    >>> ids.peek()
    3
    """

    __slots__ = ("_next",)

    def __init__(self, first: int = 0) -> None:
        self._next = first

    def next(self) -> int:
        """Return the next id and advance."""
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """Return the id the next call to :meth:`next` would produce."""
        return self._next

    def reset(self, first: int = 0) -> None:
        """Restart allocation from ``first`` (used by VM reset)."""
        self._next = first

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdAllocator(next={self._next})"
