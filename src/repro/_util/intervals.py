"""Half-open integer interval sets with payload lookup.

Used by the detectors for benign-race address ranges and by the
classification oracle to map warning addresses back to the guest object
(and therefore the paper's warning category) they fall into.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterator

__all__ = ["IntervalMap", "IntervalSet"]


class IntervalMap:
    """Maps half-open ``[start, end)`` integer ranges to payloads.

    Later insertions shadow earlier ones on overlap (lookup returns the
    most recently added covering interval), which matches how guest
    memory is reused: the newest object at an address is the one a
    warning refers to.
    """

    def __init__(self) -> None:
        #: Insertion-ordered list of (start, end, payload).
        self._entries: list[tuple[int, int, object]] = []

    def add(self, start: int, end: int, payload: object) -> None:
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        self._entries.append((start, end, payload))

    def lookup(self, addr: int) -> object | None:
        """Payload of the most recently added interval covering ``addr``."""
        for start, end, payload in reversed(self._entries):
            if start <= addr < end:
                return payload
        return None

    def lookup_all(self, addr: int) -> list[object]:
        """Payloads of *every* covering interval, newest first."""
        return [p for s, e, p in reversed(self._entries) if s <= addr < e]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[int, int, object]]:
        return iter(self._entries)


class IntervalSet:
    """A set of non-overlapping half-open integer intervals.

    Supports membership queries in O(log n).  Adding an interval merges
    it with any intervals it touches, so the internal representation
    stays disjoint and sorted.
    """

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []

    def add(self, start: int, end: int) -> None:
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        # Find the window of existing intervals that overlap or touch:
        # an interval with end == start touches us, hence bisect_left.
        lo = bisect_left(self._ends, start)
        hi = bisect_right(self._starts, end)
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        self._starts[lo:hi] = [start]
        self._ends[lo:hi] = [end]

    def __contains__(self, addr: int) -> bool:
        idx = bisect_right(self._starts, addr) - 1
        return idx >= 0 and addr < self._ends[idx]

    def __len__(self) -> int:
        """Number of disjoint intervals (also makes emptiness testable,
        which lets hot paths skip the bisect entirely)."""
        return len(self._starts)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(zip(self._starts, self._ends))

    @property
    def total_words(self) -> int:
        return sum(e - s for s, e in self)
