"""A tiny, dependency-free, splittable PRNG.

The schedulers and workload generators must be *deterministic given a
seed* and *independent of each other*: drawing an extra random number in
the workload generator must not perturb the scheduler's choices.  Python's
``random.Random`` would work, but a hand-rolled SplitMix64 keeps the state
tiny (one integer), makes splitting explicit and cheap, and guarantees
identical sequences across Python versions (``random.Random`` only
promises stability for ``random()`` itself).

SplitMix64 is the mixing function from Steele, Lea & Flood, "Fast
Splittable Pseudorandom Number Generators" (OOPSLA 2014); it passes
BigCrush and is the standard seeder for xoshiro generators.
"""

from __future__ import annotations

__all__ = ["SplitMix64"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(z: int) -> int:
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    return z ^ (z >> 31)


class SplitMix64:
    """Deterministic 64-bit PRNG with O(1) state and explicit splitting."""

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next raw 64-bit output."""
        self._state = (self._state + _GOLDEN) & _MASK64
        return _mix(self._state)

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)``; ``n`` must be positive.

        Uses rejection sampling to avoid modulo bias (the bias would be
        negligible for small ``n``, but determinism tests compare exact
        sequences, so we keep the sampling principled).
        """
        if n <= 0:
            raise ValueError(f"randrange needs n > 0, got {n}")
        limit = _MASK64 - (_MASK64 % n)
        while True:
            value = self.next_u64()
            if value < limit:
                return value % n

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of entropy."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def choice(self, seq):
        """Uniform choice from a non-empty sequence."""
        if not seq:
            raise IndexError("choice from empty sequence")
        return seq[self.randrange(len(seq))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randrange(i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def split(self) -> "SplitMix64":
        """Return an independent child generator.

        The child is seeded from this generator's stream, so two splits
        from the same state yield different children, and consuming the
        child never advances the parent beyond the single split draw.
        """
        return SplitMix64(self.next_u64())

    def fork(self, label: str) -> "SplitMix64":
        """Return a child generator derived from a *label*, not the stream.

        Unlike :meth:`split`, forking does not consume parent state, so
        components seeded by label are insulated from each other: adding a
        new consumer cannot shift the sequences of existing ones.
        """
        h = self._state
        for ch in label:
            h = (h * 1099511628211 ^ ord(ch)) & _MASK64
        return SplitMix64(_mix(h))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SplitMix64(state={self._state:#x})"
