"""Plain-text table rendering for the experiment harness.

The benchmark harness prints the same rows the paper's tables and figures
report (see ``EXPERIMENTS.md``); this module renders them as aligned
monospace tables so ``pytest -s benchmarks/`` output is directly
comparable to the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    align_right: Sequence[bool] | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    ``align_right[i]`` selects right alignment for column ``i``; by
    default every column except the first is right-aligned, which suits
    the "label, number, number, ..." shape of the paper's tables.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(f"row has {len(row)} cells, expected {ncols}: {row}")
    if align_right is None:
        align_right = [False] + [True] * (ncols - 1)
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if align_right[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
