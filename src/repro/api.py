"""The public facade: one front door to the analysis pipeline.

Historically the pipeline had three scattered entry points — the
evaluation harness (:func:`repro.experiments.harness.run_proxy_case`),
the offline tier (:func:`repro.runtime.trace.replay_trace`), and
hand-built ``VM`` + detector assemblies — each wiring detectors,
configurations and replay state slightly differently.  This module
consolidates them:

* :func:`detector_config` — name → :class:`~repro.detectors.HelgrindConfig`
  with validation (the public twin of what the harness used privately).
* :class:`Pipeline` — a detector *configuration* bound to factories for
  everything built from it: fresh detectors, live harness runs, offline
  replays, and incremental sessions.
* :class:`Session` — one incremental analysis: feed events or encoded
  RPTR v1 bytes in any chunking, snapshot/restore the full mid-stream
  state, read the report at any time.  The streaming analysis service
  (:mod:`repro.service`) runs one of these per connected client; tests
  and tooling use the same object directly.

Everything here is re-exported from the package root::

    import repro
    report = repro.Pipeline("hwlc+dr").replay("trace.rptr")

Deprecation policy (see ``docs/API.md``): superseded private entry
points keep working for one PR cycle behind a shim that emits a single
:class:`DeprecationWarning`, then are removed.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.detectors.report import Report
from repro.runtime import codec
from repro.runtime.events import EVENT_TYPES, Event
from repro.runtime.trace import ReplayVM, replay_trace

__all__ = ["Pipeline", "Session", "detector_config", "detector_configs"]

#: Known configuration names → factory.  ``detector_config`` validates
#: against this table; keep it in sync with the CLI choices.
_CONFIG_FACTORIES = {
    "original": HelgrindConfig.original,
    "hwlc": HelgrindConfig.hwlc,
    "hwlc+dr": HelgrindConfig.hwlc_dr,
    "extended": HelgrindConfig.extended,
    "raw-eraser": HelgrindConfig.raw_eraser,
    "eraser-states": HelgrindConfig.eraser_states,
}

#: Pickle payload version for :meth:`Session.snapshot`.
SNAPSHOT_VERSION = 1


def detector_configs() -> tuple[str, ...]:
    """The known detector-configuration names, sorted."""
    return tuple(sorted(_CONFIG_FACTORIES))


def detector_config(name: str) -> HelgrindConfig:
    """Build the named detector configuration.

    The names are the paper's evaluation vocabulary (``original``,
    ``hwlc``, ``hwlc+dr``) plus the extensions; unknown names raise a
    :class:`ValueError` that lists every known one.
    """
    try:
        factory = _CONFIG_FACTORIES[name]
    except KeyError:
        known = ", ".join(detector_configs())
        raise ValueError(
            f"unknown detector configuration {name!r}; known configurations: {known}"
        ) from None
    return factory()


class Pipeline:
    """A detector configuration plus factories for everything built on it.

    ``config`` is a configuration *name* (validated by
    :func:`detector_config`) or a ready :class:`HelgrindConfig`.  The
    pipeline itself is stateless and reusable — each :meth:`detector`,
    :meth:`session`, :meth:`run_case` or :meth:`replay` call builds
    fresh analysis state.
    """

    def __init__(
        self,
        config: str | HelgrindConfig = "hwlc+dr",
        *,
        suppressions=None,
    ) -> None:
        if isinstance(config, str):
            self.config_name: str | None = config
            self.config = detector_config(config)
        else:
            self.config_name = None
            self.config = config
        self.suppressions = suppressions

    def __repr__(self) -> str:
        name = self.config_name or "<custom config>"
        return f"Pipeline({name!r})"

    def detector(self) -> HelgrindDetector:
        """A fresh detector wired for this configuration."""
        return HelgrindDetector(self.config, suppressions=self.suppressions)

    def session(self, *, extra_hooks: tuple = ()) -> "Session":
        """A fresh incremental :class:`Session` on this configuration."""
        return Session(self, extra_hooks=extra_hooks)

    def run_case(self, case, **kwargs):
        """Run one harness test case live under this configuration.

        ``case`` is a :class:`~repro.sip.workload.TestCase` or a case id
        (``"T1"``…``"T8"``); keyword arguments pass through to
        :func:`repro.experiments.harness.run_proxy_case` (``seed``,
        ``mode``, ``extra_hooks``, ``telemetry``, …).  Returns that
        function's :class:`~repro.experiments.harness.ExperimentRun`.
        """
        if self.config_name is None:
            raise ValueError(
                "run_case needs a named configuration (the harness wires "
                "the instrumented build from the name); construct the "
                "Pipeline with a configuration name"
            )
        # Deferred: the harness imports repro.api for detector_config.
        from repro.experiments.harness import run_proxy_case
        from repro.sip.workload import evaluation_cases

        if isinstance(case, str):
            by_id = {c.case_id: c for c in evaluation_cases()}
            try:
                case = by_id[case]
            except KeyError:
                known = ", ".join(sorted(by_id))
                raise ValueError(
                    f"unknown case {case!r}; known cases: {known}"
                ) from None
        if self.suppressions is not None and "detector" not in kwargs:
            kwargs["detector"] = self.detector()
        return run_proxy_case(case, self.config_name, **kwargs)

    def replay(self, path: str | Path, *, vm=None) -> Report:
        """Replay a recorded trace file offline; returns the report.

        Byte-identical to the live run's report (see
        :func:`repro.runtime.trace.replay_trace`).
        """
        detector = self.detector()
        replay_trace(path, detector, vm=vm)
        return detector.report


class Session:
    """One incremental analysis: feed data in, read the report out.

    A session owns a :class:`~repro.runtime.trace.ReplayVM` (so report
    "Address ..." lines render identically to a live run), a fresh
    detector, and a :class:`~repro.runtime.codec.StreamDecoder`.  Input
    arrives either as encoded RPTR v1 bytes (:meth:`feed`, any chunk
    sizes — a record may straddle chunks) or as event objects
    (:meth:`feed_events`); both produce exactly the state an offline
    :func:`~repro.runtime.trace.replay_trace` of the same stream would.

    :meth:`snapshot` pickles the *entire* mid-stream state — shadow
    engine, lock-set tables, report, decoder interning tables, and any
    buffered partial record — and :meth:`restore` rebuilds a session
    from it, in the same process or another one.  A restored session
    continues byte-for-byte: resume the input stream from
    :attr:`bytes_fed` and the final report is identical to an
    uninterrupted run.  This is the service's checkpoint mechanism.
    """

    def __init__(
        self,
        config: str | HelgrindConfig | Pipeline = "hwlc+dr",
        *,
        suppressions=None,
        extra_hooks: tuple = (),
    ) -> None:
        if isinstance(config, Pipeline):
            pipeline = config
        else:
            pipeline = Pipeline(config, suppressions=suppressions)
        self.pipeline = pipeline
        self.vm = ReplayVM()
        self.detector = pipeline.detector()
        self._extra_hooks = tuple(extra_hooks)
        self._events_fed = 0
        self._decoder = codec.StreamDecoder()
        self._bind()

    # ------------------------------------------------------------------

    @property
    def _hooks(self) -> tuple:
        """Hook order matches ``replay_trace``: the ReplayVM first (so
        block tables exist before detectors render addresses), then any
        extra hooks, then the detector."""
        return (self.vm, *self._extra_hooks, self.detector)

    def _bind(self) -> None:
        """(Re)build the decoder's per-type handler table."""
        table = []
        for cls in EVENT_TYPES:
            fns = []
            for hook in self._hooks:
                resolver = getattr(hook, "handler_for", None)
                fn = resolver(cls) if resolver is not None else hook.handle
                if fn is not None:
                    fns.append(fn)
            table.append(tuple(fns))
        self._decoder.bind(table, self.vm)

    # -- ingestion -----------------------------------------------------

    def feed(self, data: bytes) -> int:
        """Feed encoded RPTR v1 bytes (any chunking); returns the number
        of events decoded and dispatched by this call."""
        return self._decoder.feed(data)

    def feed_events(self, events) -> int:
        """Feed event objects directly (the in-memory ingest path)."""
        count = 0
        vm = self.vm
        hooks = self._hooks
        for event in events:
            count += 1
            for hook in hooks:
                hook.handle(event, vm)
        self._events_fed += count
        return count

    # -- results -------------------------------------------------------

    @property
    def report(self) -> Report:
        """The detector's live report (readable at any time)."""
        return self.detector.report

    def report_text(self) -> str:
        """The report rendered exactly as :meth:`Report.save` writes it
        — byte-identical to ``repro trace replay --report-out``."""
        import json

        return json.dumps(self.report.to_dict(), indent=2)

    @property
    def events_seen(self) -> int:
        """Events analysed so far (decoded bytes + direct events)."""
        return self._decoder.events_decoded + self._events_fed

    @property
    def bytes_fed(self) -> int:
        """Encoded bytes accepted so far — the resume offset: after a
        :meth:`restore`, continue the input stream from here."""
        return self._decoder.bytes_fed

    @property
    def bytes_consumed(self) -> int:
        """Encoded bytes of fully-decoded records."""
        return self._decoder.bytes_consumed

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes of a trailing partial record."""
        return self._decoder.pending_bytes

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> bytes:
        """Pickle the full mid-stream state (config, detector, shadow
        engine, ReplayVM block table, decoder tables and buffer)."""
        payload = {
            "version": SNAPSHOT_VERSION,
            "config_name": self.pipeline.config_name,
            "config": None if self.pipeline.config_name else self.pipeline.config,
            "suppressions": self.pipeline.suppressions,
            "detector": self.detector,
            "vm": self.vm,
            "decoder": self._decoder,
            "events_fed": self._events_fed,
        }
        return pickle.dumps(payload)

    @classmethod
    def restore(cls, blob: bytes, *, extra_hooks: tuple = ()) -> "Session":
        """Rebuild a session from a :meth:`snapshot`.

        ``extra_hooks`` are re-attached by the caller (hooks are not
        checkpointed — a recorder's open file handle cannot travel).
        """
        payload = pickle.loads(blob)
        if payload.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported session snapshot version {payload.get('version')!r}"
            )
        session = cls.__new__(cls)
        config = payload["config_name"] or payload["config"]
        session.pipeline = Pipeline(
            config, suppressions=payload.get("suppressions")
        )
        session.vm = payload["vm"]
        session.detector = payload["detector"]
        session._extra_hooks = tuple(extra_hooks)
        session._events_fed = payload["events_fed"]
        session._decoder = payload["decoder"]
        session._bind()
        return session
