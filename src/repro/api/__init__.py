"""The public facade: one front door to the analysis pipeline.

Historically the pipeline had three scattered entry points — the
evaluation harness (:func:`repro.experiments.harness.run_proxy_case`),
the offline tier (:func:`repro.runtime.trace.replay_trace`), and
hand-built ``VM`` + detector assemblies — each wiring detectors,
configurations and replay state slightly differently.  This package
consolidates them:

* :mod:`repro.api.profiles` — the :class:`~repro.api.profiles
  .AnalysisProfile` registry behind every configuration name: config
  factory, detector factory and capability flags per tier (the paper's
  three configurations and the ``predictive`` tier register uniformly).
* :class:`Pipeline` — a profile (or hand-built config) bound to
  factories for everything built from it: fresh detectors, live harness
  runs, offline replays, and incremental sessions.
* :class:`Session` — one incremental analysis: feed events or encoded
  RPTR v1 bytes in any chunking, snapshot/restore the full mid-stream
  state, read the report at any time.  The streaming analysis service
  (:mod:`repro.service`) runs one of these per connected client; tests
  and tooling use the same object directly.

Everything here is re-exported from the package root::

    import repro
    report = repro.Pipeline("hwlc+dr").replay("trace.rptr")

Deprecation policy (see ``docs/API.md``): superseded entry points keep
working for one PR cycle behind a shim that emits a single
:class:`DeprecationWarning`, then are removed.  :func:`detector_config`
and :func:`detector_configs` are the currently shimmed names — use
``repro.api.profiles.profile(name)`` / ``profile_names()``.
"""

from __future__ import annotations

import pickle
import warnings
from pathlib import Path

from repro.api import profiles
from repro.api.profiles import AnalysisProfile
from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.detectors.report import Report
from repro.runtime import codec
from repro.runtime.events import EVENT_TYPES, Event
from repro.runtime.trace import ReplayVM, replay_trace

__all__ = [
    "AnalysisProfile",
    "Pipeline",
    "Session",
    "detector_config",
    "detector_configs",
    "profiles",
]

#: Pickle payload version for :meth:`Session.snapshot`.
SNAPSHOT_VERSION = 1

#: One-shot latch for the ``detector_config``/``detector_configs``
#: deprecation shims (one warning per process, not one per call).
_DETECTOR_CONFIG_WARNED = False


def _warn_detector_config() -> None:
    global _DETECTOR_CONFIG_WARNED
    if not _DETECTOR_CONFIG_WARNED:
        _DETECTOR_CONFIG_WARNED = True
        warnings.warn(
            "repro.api.detector_config/detector_configs are deprecated; "
            "use repro.api.profiles.profile(name).config() and "
            "repro.api.profiles.profile_names()",
            DeprecationWarning,
            stacklevel=3,
        )


def detector_configs() -> tuple[str, ...]:
    """Deprecated: use :func:`repro.api.profiles.profile_names`."""
    _warn_detector_config()
    return profiles.profile_names()


def detector_config(name: str) -> HelgrindConfig:
    """Deprecated: use ``repro.api.profiles.profile(name).config()``.

    The names are the paper's evaluation vocabulary (``original``,
    ``hwlc``, ``hwlc+dr``) plus the extensions and the ``predictive``
    tier; unknown names raise a :class:`ValueError` that lists every
    known one.
    """
    _warn_detector_config()
    return profiles.profile(name).config()


def _case_by_id(case_id: str):
    """Resolve a case id across the evaluation and predictive suites."""
    from repro.sip.workload import evaluation_cases, predictive_cases

    by_id = {c.case_id: c for c in evaluation_cases()}
    by_id.update({c.case_id: c for c in predictive_cases()})
    try:
        return by_id[case_id]
    except KeyError:
        known = ", ".join(sorted(by_id, key=lambda c: (len(c), c)))
        raise ValueError(
            f"unknown case {case_id!r}; known cases: {known}"
        ) from None


class Pipeline:
    """An analysis profile plus factories for everything built on it.

    ``config`` is a profile *name* (validated against
    :mod:`repro.api.profiles`) or a ready :class:`HelgrindConfig`.  The
    pipeline itself is stateless and reusable — each :meth:`detector`,
    :meth:`session`, :meth:`run_case` or :meth:`replay` call builds
    fresh analysis state.
    """

    def __init__(
        self,
        config: str | HelgrindConfig = "hwlc+dr",
        *,
        suppressions=None,
    ) -> None:
        if isinstance(config, str):
            self.profile: AnalysisProfile | None = profiles.profile(config)
            self.config_name: str | None = config
            self.config = self.profile.config()
        else:
            self.profile = None
            self.config_name = None
            self.config = config
        self.suppressions = suppressions

    def __repr__(self) -> str:
        name = self.config_name or "<custom config>"
        return f"Pipeline({name!r})"

    def detector(self) -> HelgrindDetector:
        """A fresh detector wired for this profile/configuration."""
        if self.profile is not None:
            return self.profile.detector(
                self.config, suppressions=self.suppressions
            )
        return HelgrindDetector(self.config, suppressions=self.suppressions)

    def session(self, *, extra_hooks: tuple = ()) -> "Session":
        """A fresh incremental :class:`Session` on this configuration."""
        return Session(self, extra_hooks=extra_hooks)

    def run_case(self, case, **kwargs):
        """Run one harness test case live under this configuration.

        ``case`` is a :class:`~repro.sip.workload.TestCase` or a case id
        (``"T1"``…``"T10"``); keyword arguments pass through to
        :func:`repro.experiments.harness.run_proxy_case` (``seed``,
        ``mode``, ``extra_hooks``, ``telemetry``, …).  Returns that
        function's :class:`~repro.experiments.harness.ExperimentRun`.
        """
        if self.config_name is None:
            raise ValueError(
                "run_case needs a named configuration (the harness wires "
                "the instrumented build from the name); construct the "
                "Pipeline with a configuration name"
            )
        # Deferred: the harness imports repro.api for the profiles.
        from repro.experiments.harness import run_proxy_case

        if isinstance(case, str):
            case = _case_by_id(case)
        if self.suppressions is not None and "detector" not in kwargs:
            kwargs["detector"] = self.detector()
        return run_proxy_case(case, self.config_name, **kwargs)

    def replay(self, path: str | Path, *, vm=None) -> Report:
        """Replay a recorded trace file offline; returns the report.

        Byte-identical to the live run's report (see
        :func:`repro.runtime.trace.replay_trace`).  Predictive profiles
        run their finalisation post-pass before the report is returned.
        """
        detector = self.detector()
        replay_trace(path, detector, vm=vm)
        detector.finalize()
        return detector.report


class Session:
    """One incremental analysis: feed data in, read the report out.

    A session owns a :class:`~repro.runtime.trace.ReplayVM` (so report
    "Address ..." lines render identically to a live run), a fresh
    detector, and a :class:`~repro.runtime.codec.StreamDecoder`.  Input
    arrives either as encoded RPTR v1 bytes (:meth:`feed`, any chunk
    sizes — a record may straddle chunks) or as event objects
    (:meth:`feed_events`); both produce exactly the state an offline
    :func:`~repro.runtime.trace.replay_trace` of the same stream would.

    :meth:`snapshot` pickles the *entire* mid-stream state — shadow
    engine, lock-set tables, report, decoder interning tables, and any
    buffered partial record — and :meth:`restore` rebuilds a session
    from it, in the same process or another one.  A restored session
    continues byte-for-byte: resume the input stream from
    :attr:`bytes_fed` and the final report is identical to an
    uninterrupted run.  This is the service's checkpoint mechanism.
    """

    def __init__(
        self,
        config: str | HelgrindConfig | Pipeline = "hwlc+dr",
        *,
        suppressions=None,
        extra_hooks: tuple = (),
    ) -> None:
        if isinstance(config, Pipeline):
            pipeline = config
        else:
            pipeline = Pipeline(config, suppressions=suppressions)
        self.pipeline = pipeline
        self.vm = ReplayVM()
        self.detector = pipeline.detector()
        self._extra_hooks = tuple(extra_hooks)
        self._events_fed = 0
        self._decoder = codec.StreamDecoder()
        self._bind()

    # ------------------------------------------------------------------

    @property
    def _hooks(self) -> tuple:
        """Hook order matches ``replay_trace``: the ReplayVM first (so
        block tables exist before detectors render addresses), then any
        extra hooks, then the detector."""
        return (self.vm, *self._extra_hooks, self.detector)

    def _bind(self) -> None:
        """(Re)build the decoder's per-type handler table."""
        table = []
        for cls in EVENT_TYPES:
            fns = []
            for hook in self._hooks:
                resolver = getattr(hook, "handler_for", None)
                fn = resolver(cls) if resolver is not None else hook.handle
                if fn is not None:
                    fns.append(fn)
            table.append(tuple(fns))
        self._decoder.bind(table, self.vm)

    # -- ingestion -----------------------------------------------------

    def feed(self, data: bytes) -> int:
        """Feed encoded RPTR v1 bytes (any chunking); returns the number
        of events decoded and dispatched by this call."""
        return self._decoder.feed(data)

    def feed_events(self, events) -> int:
        """Feed event objects directly (the in-memory ingest path)."""
        count = 0
        vm = self.vm
        hooks = self._hooks
        for event in events:
            count += 1
            for hook in hooks:
                hook.handle(event, vm)
        self._events_fed += count
        return count

    # -- results -------------------------------------------------------

    def finalize(self) -> None:
        """Run the detector's end-of-stream pass (idempotent).

        Legacy tiers are complete after the last event and this is a
        no-op; the predictive tier emits its predicted findings here.
        Call it once the input stream is known to be finished — the
        service does at FINISH time.
        """
        self.detector.finalize()

    @property
    def report(self) -> Report:
        """The detector's live report (readable at any time)."""
        return self.detector.report

    def report_text(self) -> str:
        """The report rendered exactly as :meth:`Report.save` writes it
        — byte-identical to ``repro trace replay --report-out``."""
        return self.report.render()

    @property
    def events_seen(self) -> int:
        """Events analysed so far (decoded bytes + direct events)."""
        return self._decoder.events_decoded + self._events_fed

    @property
    def bytes_fed(self) -> int:
        """Encoded bytes accepted so far — the resume offset: after a
        :meth:`restore`, continue the input stream from here."""
        return self._decoder.bytes_fed

    @property
    def bytes_consumed(self) -> int:
        """Encoded bytes of fully-decoded records."""
        return self._decoder.bytes_consumed

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes of a trailing partial record."""
        return self._decoder.pending_bytes

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> bytes:
        """Pickle the full mid-stream state (config, detector, shadow
        engine, ReplayVM block table, decoder tables and buffer)."""
        payload = {
            "version": SNAPSHOT_VERSION,
            "config_name": self.pipeline.config_name,
            "config": None if self.pipeline.config_name else self.pipeline.config,
            "suppressions": self.pipeline.suppressions,
            "detector": self.detector,
            "vm": self.vm,
            "decoder": self._decoder,
            "events_fed": self._events_fed,
        }
        return pickle.dumps(payload)

    @classmethod
    def restore(cls, blob: bytes, *, extra_hooks: tuple = ()) -> "Session":
        """Rebuild a session from a :meth:`snapshot`.

        ``extra_hooks`` are re-attached by the caller (hooks are not
        checkpointed — a recorder's open file handle cannot travel).
        """
        payload = pickle.loads(blob)
        if payload.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported session snapshot version {payload.get('version')!r}"
            )
        session = cls.__new__(cls)
        config = payload["config_name"] or payload["config"]
        session.pipeline = Pipeline(
            config, suppressions=payload.get("suppressions")
        )
        session.vm = payload["vm"]
        session.detector = payload["detector"]
        session._extra_hooks = tuple(extra_hooks)
        session._events_fed = payload["events_fed"]
        session._decoder = payload["decoder"]
        session._bind()
        return session
