"""Analysis profiles: the registry every configuration name routes through.

Historically ``repro.api.detector_config`` hard-coded a string →
``HelgrindConfig`` table, which worked while every analysis tier was a
flavour of the same detector.  The predictive tier broke that
assumption: ``predictive`` needs a *different detector class*
(:class:`~repro.detectors.predict.PredictiveDetector`) layered on the
``hwlc+dr`` configuration, plus a finalisation pass the legacy tiers do
not have.  An :class:`AnalysisProfile` captures all of it in one
registered object:

* the public **name** (the CLI ``--detector-config`` vocabulary, the
  service HELLO ``config`` field, the harness column label),
* a **config factory** (fresh :class:`HelgrindConfig` per call — configs
  are frozen but interning tables behind them are not),
* a **detector factory** (config → ready detector, honouring
  suppressions),
* **capabilities** flags (``"paper-eval"`` marks the three Figure-6
  configurations; ``"predictive"`` marks profiles whose detector emits
  predicted findings at :meth:`finalize` time).

Look-ups go through :func:`profile`; enumeration through
:func:`profiles`/:func:`profile_names`.  The old
``detector_config``/``detector_configs`` names keep working from
``repro.api`` behind a warn-once deprecation shim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.detectors import HelgrindConfig, HelgrindDetector

__all__ = [
    "AnalysisProfile",
    "profile",
    "profiles",
    "profile_names",
    "register_profile",
]


@dataclass(frozen=True, slots=True)
class AnalysisProfile:
    """One registered analysis tier.

    ``detector_factory`` takes ``(config, *, suppressions=None)`` so a
    caller holding a hand-modified copy of the profile's config (e.g.
    the ``--no-transition-cache`` escape hatch) can still build the
    profile's detector class around it.
    """

    #: Public name — CLI choices and service HELLOs validate against it.
    name: str
    #: One-line human description (``repro.api.profiles`` docs, help).
    description: str
    #: Fresh configuration per call.
    config_factory: Callable[[], HelgrindConfig]
    #: ``(config, *, suppressions=None) -> detector``.
    detector_factory: Callable[..., HelgrindDetector]
    #: Capability flags: ``"paper-eval"`` (a Figure-6 configuration),
    #: ``"predictive"`` (detector emits predicted findings at finalize).
    capabilities: frozenset[str] = field(default_factory=frozenset)

    @property
    def predictive(self) -> bool:
        """True when the profile's detector predicts offline findings."""
        return "predictive" in self.capabilities

    def config(self) -> HelgrindConfig:
        """A fresh configuration for this profile."""
        return self.config_factory()

    def detector(self, config: HelgrindConfig | None = None, *, suppressions=None):
        """A fresh detector; ``config`` overrides the profile default."""
        cfg = config if config is not None else self.config_factory()
        return self.detector_factory(cfg, suppressions=suppressions)


_REGISTRY: dict[str, AnalysisProfile] = {}


def register_profile(profile: AnalysisProfile) -> AnalysisProfile:
    """Register (or replace) a profile under its name."""
    _REGISTRY[profile.name] = profile
    return profile


def profile_names() -> tuple[str, ...]:
    """Every registered profile name, sorted."""
    return tuple(sorted(_REGISTRY))


def profiles() -> tuple[AnalysisProfile, ...]:
    """Every registered profile, sorted by name."""
    return tuple(_REGISTRY[name] for name in profile_names())


def profile(name: str) -> AnalysisProfile:
    """Look up a profile by name.

    Unknown names raise a :class:`ValueError` listing every known one —
    the same contract (and message shape) ``detector_config`` had, so
    CLI and service error paths read identically.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(profile_names())
        raise ValueError(
            f"unknown detector configuration {name!r}; "
            f"known configurations: {known}"
        ) from None


def _predictive_detector(config: HelgrindConfig, *, suppressions=None):
    # Deferred: predict.py imports the detector stack, which is heavier
    # than this registry module needs at import time.
    from repro.detectors.predict import PredictiveDetector

    return PredictiveDetector(config, suppressions=suppressions)


# -- the registered tiers ----------------------------------------------

register_profile(AnalysisProfile(
    name="original",
    description="Helgrind as shipped: mutex bus-lock model (§3)",
    config_factory=HelgrindConfig.original,
    detector_factory=HelgrindDetector,
    capabilities=frozenset({"paper-eval"}),
))
register_profile(AnalysisProfile(
    name="hwlc",
    description="corrected hardware bus-lock semantics (§3.2)",
    config_factory=HelgrindConfig.hwlc,
    detector_factory=HelgrindDetector,
    capabilities=frozenset({"paper-eval"}),
))
register_profile(AnalysisProfile(
    name="hwlc+dr",
    description="HWLC plus destructor annotations — the paper's "
    "headline configuration (§3.3)",
    config_factory=HelgrindConfig.hwlc_dr,
    detector_factory=HelgrindDetector,
    capabilities=frozenset({"paper-eval"}),
))
register_profile(AnalysisProfile(
    name="extended",
    description="every extension on: queue/semaphore happens-before",
    config_factory=HelgrindConfig.extended,
    detector_factory=HelgrindDetector,
))
register_profile(AnalysisProfile(
    name="raw-eraser",
    description="the §2.3.2 Eraser ablation (no states, no segments)",
    config_factory=HelgrindConfig.raw_eraser,
    detector_factory=HelgrindDetector,
))
register_profile(AnalysisProfile(
    name="eraser-states",
    description="Eraser with the full Figure-1 state machine",
    config_factory=HelgrindConfig.eraser_states,
    detector_factory=HelgrindDetector,
))
register_profile(AnalysisProfile(
    name="predictive",
    description="hwlc+dr plus cross-thread lock sets, predicted races "
    "and dynamic deadlock prediction (offline post-pass)",
    config_factory=lambda: HelgrindConfig.hwlc_dr().with_(name="predictive"),
    detector_factory=_predictive_detector,
    capabilities=frozenset({"predictive"}),
))
