"""Command-line interface: ``python -m repro <command>``.

The Valgrind experience the paper praises — "widely accepted by
programmers in different environments because of its ease of use and
the usefulness of its output" (§5) — is one command with readable
output.  The CLI exposes the reproduction the same way:

========  ============================================================
command   what it does
========  ============================================================
figure6   run T1-T8 × {Original, HWLC, HWLC+DR}; print Figures 6 and 5
case      run one test case under one configuration; print the warnings
studies   the §4.3 false-negative sweep, the E10 ablation, E11 baselines
perf      the §4.5 slowdown and trace-cost measurements
bugs      the §4.1 injected-bug registry
report    regenerate the full EXPERIMENTS.md record in one pass
suppress  run a case, triage it, emit a suppression file (§2.3.1)
========  ============================================================
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Fault Detection in Multi-Threaded C++ Server "
            "Applications' (Muehlenfeld & Wotawa, ENTCS 174, 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("figure6", help="regenerate Figures 6 and 5")
    p.add_argument("--seed", type=int, default=42, help="scheduler seed")
    p.add_argument(
        "--mode",
        choices=("thread-per-request", "thread-pool"),
        default="thread-per-request",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the 24 independent cells (1 = sequential)",
    )
    p.set_defaults(handler=_cmd_figure6)

    p = sub.add_parser("case", help="run one test case under one configuration")
    p.add_argument("case_id", choices=[f"T{i}" for i in range(1, 9)])
    p.add_argument(
        "config",
        choices=("original", "hwlc", "hwlc+dr", "extended", "raw-eraser"),
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--full", action="store_true", help="print every warning block")
    p.set_defaults(handler=_cmd_case)

    p = sub.add_parser("studies", help="false negatives, ablation, baselines")
    p.set_defaults(handler=_cmd_studies)

    p = sub.add_parser("perf", help="the §4.5 slowdown measurements")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--iterations", type=int, default=120)
    p.set_defaults(handler=_cmd_perf)

    p = sub.add_parser("bugs", help="list the §4.1 injected-bug registry")
    p.set_defaults(handler=_cmd_bugs)

    p = sub.add_parser(
        "report", help="regenerate the full experiment record (EXPERIMENTS.md data)"
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--workers", type=int, default=1, help="worker processes for the Figure 6 sweep"
    )
    p.set_defaults(handler=_cmd_report)

    p = sub.add_parser("suppress", help="triage a case and emit suppressions")
    p.add_argument("case_id", choices=[f"T{i}" for i in range(1, 9)])
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("-o", "--output", default="-", help="file ('-' = stdout)")
    p.set_defaults(handler=_cmd_suppress)

    return parser


# ----------------------------------------------------------------------
# Command implementations (imports deferred so --help stays instant)
# ----------------------------------------------------------------------


def _cmd_figure6(args) -> int:
    from repro.experiments.figures import (
        figure5_decomposition,
        figure6_table,
        shape_violations,
    )
    from repro.experiments.harness import run_figure6

    rows = run_figure6(seed=args.seed, mode=args.mode, workers=args.workers)
    print(figure6_table(rows))
    print()
    print(figure5_decomposition(rows))
    problems = shape_violations(rows)
    if problems:
        print("\nSHAPE VIOLATIONS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nall of the paper's qualitative claims hold on this run.")
    return 0


def _case_by_id(case_id: str):
    from repro.sip.workload import evaluation_cases

    for case in evaluation_cases():
        if case.case_id == case_id:
            return case
    raise SystemExit(f"unknown case {case_id}")


def _cmd_case(args) -> int:
    from repro.experiments.harness import run_proxy_case

    case = _case_by_id(args.case_id)
    run = run_proxy_case(case, args.config, seed=args.seed)
    print(
        f"{case.case_id} ({case.name}) under {args.config}: "
        f"{run.location_count} reported locations, "
        f"{run.events} events, {run.wall_seconds * 1e3:.0f} ms"
    )
    print(run.classified.format_summary())
    if args.full:
        print()
        for item in run.classified.items:
            print(f"--- [{item.category.value}] {item.note or ''}")
            print(item.warning.format())
            print()
    return 0


def _cmd_studies(args) -> int:
    from repro.experiments.studies import (
        ablation_study,
        baseline_study,
        false_negative_study,
    )

    print(false_negative_study().format())
    print()
    print(ablation_study().format())
    print()
    print(baseline_study().format())
    return 0


def _cmd_perf(args) -> int:
    from repro.experiments.performance import measure_performance, trace_cost

    report = measure_performance(
        n_threads=args.threads, iterations=args.iterations
    )
    print(report.format())
    cost = trace_cost(n_threads=args.threads, iterations=args.iterations)
    print(
        f"  offline mode: {int(cost['events'])} events "
        f"(~{int(cost['estimated_bytes'])} bytes), "
        f"replay {cost['replay_seconds'] * 1e3:.1f} ms"
    )
    return 0


def _cmd_bugs(args) -> int:
    from repro.sip.bugs import BUGS

    for bug in BUGS.values():
        print(f"{bug.bug_id:20s} [{bug.paper_ref}]")
        print(f"  {bug.title}")
        print(f"  fix: {bug.fix}")
        print()
    return 0


def _cmd_report(args) -> int:
    """Everything EXPERIMENTS.md records, regenerated in one pass."""
    from repro.experiments.figures import (
        figure5_decomposition,
        figure6_table,
        shape_violations,
    )
    from repro.experiments.harness import run_figure6
    from repro.experiments.performance import measure_performance, trace_cost
    from repro.experiments.studies import (
        ablation_study,
        baseline_study,
        false_negative_study,
    )

    rows = run_figure6(seed=args.seed, workers=args.workers)
    print(figure6_table(rows))
    print()
    print(figure5_decomposition(rows))
    print()
    print(false_negative_study().format())
    print()
    print(ablation_study().format())
    print()
    print(baseline_study().format())
    print()
    print("Multi-threaded performance tier:")
    print(measure_performance(n_threads=4, iterations=120).format())
    print()
    print("Single-threaded performance tier:")
    print(measure_performance(n_threads=1, iterations=400).format())
    cost = trace_cost()
    print()
    print(
        f"offline mode: {int(cost['events'])} events "
        f"(~{int(cost['estimated_bytes'])} bytes), "
        f"replay {cost['replay_seconds'] * 1e3:.1f} ms"
    )
    problems = shape_violations(rows)
    if problems:
        print("\nSHAPE VIOLATIONS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    return 0


def _cmd_suppress(args) -> int:
    from repro.detectors.suppress_gen import generate_suppressions
    from repro.experiments.harness import run_proxy_case

    case = _case_by_id(args.case_id)
    run = run_proxy_case(case, "original", seed=args.seed)
    text = generate_suppressions(run.classified)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        fp = run.classified.false_positives
        print(f"wrote {fp} suppression entries to {args.output}")
    return 0
