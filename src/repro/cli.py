"""Command-line interface: ``python -m repro <command>``.

The Valgrind experience the paper praises — "widely accepted by
programmers in different environments because of its ease of use and
the usefulness of its output" (§5) — is one command with readable
output.  The CLI exposes the reproduction the same way:

========  ============================================================
command   what it does
========  ============================================================
figure6   run T1-T8 × {Original, HWLC, HWLC+DR}; print Figures 6 and 5
case      run one test case under one configuration; print the warnings
studies   the §4.3 false-negative sweep, the E10 ablation, E11 baselines
perf      the §4.5 slowdown and trace-cost measurements
bugs      the §4.1 injected-bug registry
report    regenerate the full EXPERIMENTS.md record in one pass
suppress  run a case, triage it, emit a suppression file (§2.3.1)
stats     run one case instrumented; print/export pipeline telemetry
serve     run the streaming analysis service (unix socket or TCP)
client    stream a case or trace to a running service; fetch reports
========  ============================================================

``figure6`` and ``report`` additionally accept ``--metrics-out`` /
``--trace-out``: the runs are then instrumented with
:mod:`repro.telemetry` and the collected metrics are written as a JSON
snapshot (plus a Prometheus text twin at ``<path>.prom``) and a Chrome
trace-event file loadable in Perfetto.  Parallel sweeps merge each
worker's snapshot in the parent, so ``--workers N`` loses nothing.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if getattr(args, "no_transition_cache", False):
        # Process-wide escape hatch (docs/PERFORMANCE.md layer 6): every
        # detector built after this point — including in forked workers —
        # runs the unmemoized, unelided, unbatched vanilla path.
        from repro.detectors.lockset import set_transition_cache_default

        set_transition_cache_default(False)
    return args.handler(args)


def _build_parser() -> argparse.ArgumentParser:
    # The analysis-profile registry is the single source of truth for
    # which configurations exist; the CLI's choices are generated from
    # it so a newly registered profile is selectable everywhere at once.
    from repro.api.profiles import profile_names

    config_choices = profile_names()
    case_ids = [f"T{i}" for i in range(1, 11)]

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Fault Detection in Multi-Threaded C++ Server "
            "Applications' (Muehlenfeld & Wotawa, ENTCS 174, 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("figure6", help="regenerate Figures 6 and 5")
    p.add_argument("--seed", type=int, default=42, help="scheduler seed")
    p.add_argument(
        "--config",
        dest="configs",
        action="append",
        choices=config_choices,
        help=(
            "sweep these profiles instead of the paper's "
            "Original/HWLC/HWLC+DR columns (repeatable); a custom set "
            "renders a plain location-count table without the paper "
            "comparison"
        ),
    )
    p.add_argument(
        "--mode",
        choices=("thread-per-request", "thread-pool"),
        default="thread-per-request",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the 24 independent cells (1 = sequential)",
    )
    _add_telemetry_flags(p)
    _add_cache_flag(p)
    p.set_defaults(handler=_cmd_figure6)

    p = sub.add_parser("case", help="run one test case under one configuration")
    p.add_argument("case_id", choices=case_ids)
    p.add_argument("config", choices=config_choices)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--full", action="store_true", help="print every warning block")
    p.set_defaults(handler=_cmd_case)

    p = sub.add_parser("studies", help="false negatives, ablation, baselines")
    p.set_defaults(handler=_cmd_studies)

    p = sub.add_parser("perf", help="the §4.5 slowdown measurements")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--iterations", type=int, default=120)
    p.set_defaults(handler=_cmd_perf)

    p = sub.add_parser("bugs", help="list the §4.1 injected-bug registry")
    p.set_defaults(handler=_cmd_bugs)

    p = sub.add_parser(
        "report", help="regenerate the full experiment record (EXPERIMENTS.md data)"
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--workers", type=int, default=1, help="worker processes for the Figure 6 sweep"
    )
    p.add_argument(
        "--case",
        dest="cases",
        action="append",
        choices=case_ids,
        help=(
            "restrict the Figure 6 sweep to these cases (repeatable); "
            "implies a focused report: the case-independent studies and "
            "performance tiers are skipped"
        ),
    )
    p.add_argument(
        "--detector",
        choices=_STATS_DETECTORS,
        default="helgrind",
        help=(
            "detector for the instrumented deep-dive run performed when "
            "--metrics-out/--trace-out is given (default: helgrind)"
        ),
    )
    _add_telemetry_flags(p)
    _add_cache_flag(p)
    p.set_defaults(handler=_cmd_report)

    p = sub.add_parser("suppress", help="triage a case and emit suppressions")
    p.add_argument("case_id", choices=case_ids)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("-o", "--output", default="-", help="file ('-' = stdout)")
    p.set_defaults(handler=_cmd_suppress)

    p = sub.add_parser(
        "trace",
        help="record, replay and inspect offline traces (§4.5)",
    )
    trace_sub = p.add_subparsers(dest="trace_command")

    tp = trace_sub.add_parser(
        "record", help="run one case with a trace recorder riding along"
    )
    tp.add_argument("case_id", choices=case_ids)
    tp.add_argument(
        "config",
        nargs="?",
        default="hwlc+dr",
        choices=config_choices,
    )
    tp.add_argument("-o", "--output", required=True, help="trace file path")
    tp.add_argument(
        "--format",
        choices=("binary", "jsonl"),
        default=None,
        help="trace encoding (default: by suffix — .bin/.rptr = binary)",
    )
    tp.add_argument("--seed", type=int, default=42)
    tp.add_argument(
        "--report-out",
        metavar="PATH",
        help="also save the live detector's report (for diffing vs replay)",
    )
    tp.set_defaults(handler=_cmd_trace_record)

    tp = trace_sub.add_parser(
        "replay", help="feed a trace through a detector post-mortem"
    )
    tp.add_argument("trace_file")
    tp.add_argument(
        "config",
        nargs="?",
        default="hwlc+dr",
        choices=config_choices,
    )
    tp.add_argument("--full", action="store_true", help="print every warning block")
    tp.add_argument(
        "--shards",
        type=_shards_arg,
        default=1,
        metavar="N",
        help=(
            "analyze the trace across N worker processes, partitioned "
            "by shadow page; the merged report is byte-identical to a "
            "sequential replay. 'auto' picks a count from cpu_count and "
            "the trace's page histogram (default: 1 = sequential)"
        ),
    )
    tp.add_argument(
        "--report-out",
        metavar="PATH",
        help="save the offline report (byte-identical to the live one)",
    )
    _add_cache_flag(tp)
    tp.set_defaults(handler=_cmd_trace_replay)

    tp = trace_sub.add_parser("stat", help="summarise a trace file")
    tp.add_argument("trace_file")
    tp.set_defaults(handler=_cmd_trace_stat)

    tp = trace_sub.add_parser(
        "merge",
        help=(
            "merge per-process Chrome traces (epoch-aligned) into one "
            "Perfetto timeline"
        ),
    )
    tp.add_argument("inputs", nargs="+", help="Chrome trace JSON files")
    tp.add_argument(
        "-o", "--output", required=True, help="merged trace file path"
    )
    tp.set_defaults(handler=_cmd_trace_merge)

    p.set_defaults(handler=_cmd_trace_help, _trace_parser=p)

    p = sub.add_parser(
        "serve",
        help="run the streaming analysis service (docs/SERVICE.md)",
    )
    p.add_argument("--socket", metavar="PATH", help="listen on a unix socket")
    p.add_argument("--tcp", metavar="HOST:PORT", help="listen on a TCP endpoint")
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help=(
            "shared-nothing worker processes; sessions are routed by "
            "consistent hashing on session id (docs/SERVICE.md)"
        ),
    )
    p.add_argument(
        "--threads",
        type=int,
        default=2,
        metavar="N",
        help="analysis threads inside each worker process",
    )
    p.add_argument(
        "--single-process",
        action="store_true",
        help=(
            "run the whole service in this process (no acceptor/worker "
            "split; --threads sizes the one thread pool)"
        ),
    )
    p.add_argument(
        "--queue-blocks",
        type=int,
        default=8,
        metavar="N",
        help="per-session ingest bound: at most N chunks buffered (credits)",
    )
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="checkpoint and close sessions idle this long",
    )
    p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="enable durable session checkpoints (kill-and-resume)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="EVENTS",
        help="also checkpoint mid-stream every EVENTS analysed events",
    )
    p.add_argument(
        "--admin-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve the HTTP admin plane on 127.0.0.1:PORT (0 picks a "
            "free one): /metrics /healthz /readyz /sessions /workers"
        ),
    )
    p.add_argument(
        "--admin-host",
        default="127.0.0.1",
        metavar="HOST",
        help="bind address for --admin-port (default: loopback only)",
    )
    p.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable structured JSON-lines logs at this level",
    )
    p.add_argument(
        "--log-file",
        metavar="PATH",
        default=None,
        help=(
            "append structured logs here (all processes share the file; "
            "without it --log-level writes to stderr)"
        ),
    )
    p.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help=(
            "each worker writes a Chrome trace here at shutdown "
            "(combine with `repro trace merge`)"
        ),
    )
    p.add_argument(
        "--finish-shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "opt-in FINISH-time post-pass: spool each session's bytes, "
            "re-analyze the trace sharded across N processes and verify "
            "byte-identity against the streaming report "
            "(repro_service_shard_verify_total; default: off)"
        ),
    )
    p.add_argument(
        "--finish-predict",
        action="store_true",
        help=(
            "opt-in FINISH-time predictive post-pass: spool each "
            "session's bytes and re-analyze the trace under the "
            "'predictive' profile, appending predicted findings to the "
            "session's report (default: off)"
        ),
    )
    _add_cache_flag(p)
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser(
        "client",
        help="talk to a running analysis service",
    )
    client_sub = p.add_subparsers(dest="client_command")

    def _conn_flags(cp, data: bool = True) -> None:
        cp.add_argument("--socket", metavar="PATH", help="service unix socket")
        cp.add_argument("--tcp", metavar="HOST:PORT", help="service TCP endpoint")
        if data:
            cp.add_argument(
                "--chunk-bytes", type=int, default=32 * 1024, metavar="N"
            )

    cp = client_sub.add_parser(
        "record", help="run a case live, streaming its events to the service"
    )
    cp.add_argument("case_id", choices=case_ids)
    cp.add_argument(
        "config",
        nargs="?",
        default="hwlc+dr",
        choices=config_choices,
    )
    cp.add_argument("--seed", type=int, default=42)
    cp.add_argument(
        "--report-out", metavar="PATH", help="save the service's report bytes"
    )
    _conn_flags(cp)
    cp.set_defaults(handler=_cmd_client_record)

    cp = client_sub.add_parser(
        "report", help="stream a recorded .rptr trace; fetch the report"
    )
    cp.add_argument("trace_file")
    cp.add_argument(
        "config",
        nargs="?",
        default="hwlc+dr",
        choices=config_choices,
    )
    cp.add_argument(
        "--session",
        metavar="ID",
        help="resume this checkpointed session (streams from its offset)",
    )
    cp.add_argument(
        "--report-out", metavar="PATH", help="save the service's report bytes"
    )
    cp.add_argument("--full", action="store_true", help="print the raw report")
    _conn_flags(cp)
    cp.set_defaults(handler=_cmd_client_report)

    cp = client_sub.add_parser(
        "stat", help="print the service's repro_service_* metrics"
    )
    cp.add_argument("--json", action="store_true", help="raw snapshot JSON")
    cp.add_argument(
        "--per-worker",
        action="store_true",
        help=(
            "show each worker process's unmerged snapshot next to the "
            "merged view (sharded servers; single-process shows one)"
        ),
    )
    _conn_flags(cp, data=False)
    cp.set_defaults(handler=_cmd_client_stat)

    p.set_defaults(handler=_cmd_client_help, _client_parser=p)

    p = sub.add_parser(
        "stats",
        help="run one case instrumented; print pipeline telemetry",
    )
    p.add_argument("case_id", nargs="?", default="T1", choices=case_ids)
    p.add_argument(
        "--detector", choices=_STATS_DETECTORS, default="helgrind"
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--per-worker",
        action="store_true",
        help=(
            "print the per-process snapshot section next to the merged "
            "view (one section per contributing process; a plain local "
            "run has exactly one)"
        ),
    )
    _add_telemetry_flags(p)
    p.set_defaults(handler=_cmd_stats)

    return parser


#: Detectors the ``stats`` command (and ``report --detector``) can
#: instrument.  "helgrind" runs the paper's HWLC+DR configuration;
#: "lockset" is the raw §2.3.2 Eraser ablation; "predictive" is the
#: offline prediction tier riding HWLC+DR.
_STATS_DETECTORS = (
    "helgrind",
    "lockset",
    "predictive",
    "djit",
    "racetrack",
    "hybrid",
    "atomizer",
)


def _add_cache_flag(p) -> None:
    p.add_argument(
        "--no-transition-cache",
        action="store_true",
        help=(
            "disable the memoized shadow-transition cache (and the "
            "same-access elision + batched replay built on it); the "
            "escape hatch for A/B-ing the vanilla per-event path — "
            "reports are byte-identical either way"
        ),
    )


def _shards_arg(value: str):
    """``--shards`` accepts an int or the literal ``auto``."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid shards value: {value!r} (an integer or 'auto')"
        ) from None


def _add_telemetry_flags(p) -> None:
    p.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the metrics snapshot as JSON (+ Prometheus twin at PATH.prom)",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a Chrome trace-event JSON (open in Perfetto / chrome://tracing)",
    )


# ----------------------------------------------------------------------
# Command implementations (imports deferred so --help stays instant)
# ----------------------------------------------------------------------


def _telemetry_for(args):
    """A :class:`repro.telemetry.Telemetry` if any output flag asks for
    one, else ``None`` (the uninstrumented fast path)."""
    if not (getattr(args, "metrics_out", None) or getattr(args, "trace_out", None)):
        return None
    from repro.telemetry import Telemetry

    return Telemetry(trace=bool(args.trace_out))


def _write_telemetry(telemetry, args) -> None:
    """Write ``--metrics-out`` (JSON + ``.prom`` twin) and ``--trace-out``."""
    if telemetry is None:
        return
    from repro.telemetry import write_metrics

    snapshot = telemetry.snapshot()
    if args.metrics_out:
        twin = write_metrics(args.metrics_out, snapshot)
        print(f"metrics: wrote {args.metrics_out} (+ {twin})")
    if args.trace_out and telemetry.tracer is not None:
        telemetry.tracer.write(args.trace_out)
        print(
            f"trace: wrote {args.trace_out} "
            f"({len(telemetry.tracer)} events; open in Perfetto)"
        )


def _stats_detector(name: str):
    """Map a ``--detector`` choice to ``(detector instance, config name)``.

    ``None`` as the instance means "let :func:`run_proxy_case` build the
    Helgrind detector from the config" (the helgrind/lockset rows); the
    baseline detectors are built here and run against the instrumented
    (``hwlc+dr``) proxy build so destructor annotations are present.
    """
    if name == "helgrind":
        return None, "hwlc+dr"
    if name == "lockset":
        return None, "raw-eraser"
    if name == "predictive":
        return None, "predictive"
    from repro.detectors import (
        AtomizerDetector,
        DjitDetector,
        HybridDetector,
        RaceTrackDetector,
    )

    det = {
        "djit": DjitDetector,
        "racetrack": RaceTrackDetector,
        "hybrid": HybridDetector,
        "atomizer": AtomizerDetector,
    }[name]()
    return det, "hwlc+dr"


def _cmd_figure6(args) -> int:
    from repro.experiments.figures import (
        figure5_decomposition,
        figure6_table,
        shape_violations,
        sweep_table,
    )
    from repro.experiments.harness import EVAL_CONFIGS, run_figure6

    telemetry = _telemetry_for(args)
    configs = tuple(args.configs) if args.configs else EVAL_CONFIGS
    rows = run_figure6(
        seed=args.seed, mode=args.mode, workers=args.workers,
        telemetry=telemetry, configs=configs,
    )
    if configs != EVAL_CONFIGS:
        # A custom column set has no paper twin: render the plain
        # sweep and skip the Figure 5/6 comparisons and shape checks.
        print(sweep_table(rows, configs))
        _write_telemetry(telemetry, args)
        return 0
    print(figure6_table(rows))
    print()
    print(figure5_decomposition(rows))
    _write_telemetry(telemetry, args)
    problems = shape_violations(rows)
    if problems:
        print("\nSHAPE VIOLATIONS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nall of the paper's qualitative claims hold on this run.")
    return 0


def _case_by_id(case_id: str):
    from repro.sip.workload import evaluation_cases, predictive_cases

    for case in (*evaluation_cases(), *predictive_cases()):
        if case.case_id == case_id:
            return case
    raise SystemExit(f"unknown case {case_id}")


def _cmd_case(args) -> int:
    from repro.experiments.harness import run_proxy_case

    case = _case_by_id(args.case_id)
    run = run_proxy_case(case, args.config, seed=args.seed)
    print(
        f"{case.case_id} ({case.name}) under {args.config}: "
        f"{run.location_count} reported locations, "
        f"{run.events} events, {run.wall_seconds * 1e3:.0f} ms"
    )
    print(run.classified.format_summary())
    if args.full:
        print()
        for item in run.classified.items:
            print(f"--- [{item.category.value}] {item.note or ''}")
            print(item.warning.format())
            print()
    return 0


def _cmd_studies(args) -> int:
    from repro.experiments.studies import (
        ablation_study,
        baseline_study,
        false_negative_study,
    )

    print(false_negative_study().format())
    print()
    print(ablation_study().format())
    print()
    print(baseline_study().format())
    return 0


def _cmd_perf(args) -> int:
    from repro.experiments.performance import measure_performance, trace_cost

    report = measure_performance(
        n_threads=args.threads, iterations=args.iterations
    )
    print(report.format())
    cost = trace_cost(n_threads=args.threads, iterations=args.iterations)
    print(
        f"  offline mode: {int(cost['events'])} events "
        f"(~{int(cost['estimated_bytes'])} bytes), "
        f"replay {cost['replay_seconds'] * 1e3:.1f} ms"
    )
    return 0


def _cmd_bugs(args) -> int:
    from repro.sip.bugs import BUGS

    for bug in BUGS.values():
        print(f"{bug.bug_id:20s} [{bug.paper_ref}]")
        print(f"  {bug.title}")
        print(f"  fix: {bug.fix}")
        print()
    return 0


def _cmd_report(args) -> int:
    """Everything EXPERIMENTS.md records, regenerated in one pass.

    ``--case`` focuses the report on a subset of the Figure 6 sweep
    (skipping the case-independent studies/perf tiers), which is what
    the CI telemetry smoke job runs: ``repro report --case T1
    --metrics-out m.json``.  With telemetry flags, the sweep runs
    instrumented; a non-default ``--detector`` adds a deep-dive
    instrumented run per selected case under that detector so its spans
    and state metrics land in the same snapshot.
    """
    from repro.experiments.figures import (
        figure5_decomposition,
        figure6_table,
        shape_violations,
    )
    from repro.experiments.harness import run_figure6, run_proxy_case
    from repro.experiments.performance import measure_performance, trace_cost
    from repro.experiments.studies import (
        ablation_study,
        baseline_study,
        false_negative_study,
    )
    from repro.sip.workload import evaluation_cases

    telemetry = _telemetry_for(args)
    focused = bool(args.cases)
    cases = None
    if focused:
        wanted = set(args.cases)
        cases = [c for c in evaluation_cases() if c.case_id in wanted]

    rows = run_figure6(
        cases, seed=args.seed, workers=args.workers, telemetry=telemetry
    )
    print(figure6_table(rows))
    print()
    print(figure5_decomposition(rows))
    if not focused:
        print()
        print(false_negative_study().format())
        print()
        print(ablation_study().format())
        print()
        print(baseline_study().format())
        print()
        print("Multi-threaded performance tier:")
        print(measure_performance(n_threads=4, iterations=120).format())
        print()
        print("Single-threaded performance tier:")
        print(measure_performance(n_threads=1, iterations=400).format())
        cost = trace_cost()
        print()
        print(
            f"offline mode: {int(cost['events'])} events "
            f"(~{int(cost['estimated_bytes'])} bytes), "
            f"replay {cost['replay_seconds'] * 1e3:.1f} ms"
        )
    else:
        print()
        print(
            f"(focused report: {', '.join(sorted(c.case_id for c in cases))} "
            "only; studies and performance tiers skipped)"
        )

    if telemetry is not None and args.detector != "helgrind":
        # Deep-dive: the sweep itself is Helgrind; fold the requested
        # baseline detector's view of the same case(s) into the snapshot.
        det_cases = cases if cases else [_case_by_id("T1")]
        for case in det_cases:
            det, config = _stats_detector(args.detector)
            run_proxy_case(
                case, config, seed=args.seed, detector=det, telemetry=telemetry
            )
    _write_telemetry(telemetry, args)

    problems = shape_violations(rows) if not focused else []
    if problems:
        print("\nSHAPE VIOLATIONS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    return 0


def _cmd_suppress(args) -> int:
    from repro.detectors.suppress_gen import generate_suppressions
    from repro.experiments.harness import run_proxy_case

    case = _case_by_id(args.case_id)
    run = run_proxy_case(case, "original", seed=args.seed)
    text = generate_suppressions(run.classified)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        fp = run.classified.false_positives
        print(f"wrote {fp} suppression entries to {args.output}")
    return 0


def _cmd_trace_help(args) -> int:
    args._trace_parser.print_help()
    return 2


def _cmd_trace_record(args) -> int:
    """Run a case with a :class:`TraceRecorder` riding the standard
    harness run — the §4.5 offline mode's record half."""
    from repro.api.profiles import profile
    from repro.experiments.harness import run_proxy_case
    from repro.runtime.trace import TraceRecorder

    case = _case_by_id(args.case_id)
    det = profile(args.config).detector()
    with TraceRecorder(args.output, format=args.format) as recorder:
        run = run_proxy_case(
            case, args.config, seed=args.seed,
            detector=det, extra_hooks=(recorder,),
        )
    print(
        f"recorded {len(recorder)} events from {case.case_id} under "
        f"{args.config} to {args.output} "
        f"({recorder.format or 'jsonl'}, {recorder.bytes_written} bytes, "
        f"{recorder.bytes_written / max(len(recorder), 1):.1f} B/event)"
    )
    print(
        f"live run: {run.location_count} reported locations, "
        f"{run.events} events, {run.wall_seconds * 1e3:.0f} ms"
    )
    if args.report_out:
        det.report.save(args.report_out)
        print(f"live report: wrote {args.report_out}")
    return 0


def _auto_shards(trace_file) -> int:
    """Resolve ``--shards auto``: shard only when it can plausibly win.

    BENCH_parallel.json showed sharding *loses* on a single-core host
    (fork + merge overhead, no parallelism) and on traces whose page
    histogram is degenerate (every access on one shadow page leaves
    N-1 workers idle).  Both cases resolve to 1; the decision and its
    reason are printed so operators can override with an explicit N.
    """
    import os
    from pathlib import Path

    from repro.runtime import codec

    cpus = os.cpu_count() or 1
    if cpus == 1:
        print(
            "shards auto: 1 (single-core host; sharding would only add "
            "fork+merge overhead)"
        )
        return 1
    if not codec.is_binary_trace(trace_file):
        print(
            "shards auto: 1 (JSON-lines trace; sharded replay needs the "
            "binary codec)"
        )
        return 1
    hist = codec.page_histogram(Path(trace_file).read_bytes())
    if hist["pages"] <= 1:
        print(
            f"shards auto: 1 (degenerate page histogram: "
            f"{hist['pages']} distinct shadow page(s) — nothing to split)"
        )
        return 1
    shards = min(cpus, hist["pages"], 8)
    print(
        f"shards auto: {shards} (cpu_count={cpus}, {hist['pages']} "
        f"distinct shadow pages, skew {hist['skew']:.2f})"
    )
    return shards


def _cmd_trace_replay(args) -> int:
    """Feed a recorded trace through a fresh detector (§4.5 offline
    analysis).  The produced report is byte-identical to the live one —
    and with ``--shards N`` the analysis fans out across N worker
    processes partitioned by shadow page, still byte-identical."""
    import time

    shards = args.shards
    if shards == "auto":
        shards = _auto_shards(args.trace_file)
    if shards > 1:
        from repro.detectors.parallel import replay_trace_sharded

        start = time.perf_counter()
        result = replay_trace_sharded(
            args.trace_file, args.config, shards=shards,
            transition_cache=False if args.no_transition_cache else None,
        )
        wall = time.perf_counter() - start
        count = result.events
        report = result.report
        print(
            f"replayed {count} events from {args.trace_file} under "
            f"{args.config} across {shards} shards: "
            f"{report.location_count} reported locations, "
            f"{wall * 1e3:.0f} ms ({count / wall:,.0f} events/s)"
            if wall > 0
            else f"replayed {count} events: {report.location_count} locations"
        )
        for outcome in result.shards:
            s = outcome.stats
            print(
                f"  shard {outcome.shard}: {outcome.warnings} warnings, "
                f"{s['blocks_decoded']} blocks decoded, "
                f"{s['blocks_skipped_shard']} skipped (foreign pages), "
                f"{s['blocks_skipped_type']} skipped (no subscriber)"
            )
        if not result.skeleton_consistent:
            print("  warning: shard segment graphs diverged (replay bug?)")
    else:
        from repro.api.profiles import profile
        from repro.runtime.trace import replay_trace

        det = profile(args.config).detector()
        start = time.perf_counter()
        count = replay_trace(args.trace_file, det)
        det.finalize()
        wall = time.perf_counter() - start
        report = det.report
        print(
            f"replayed {count} events from {args.trace_file} under "
            f"{args.config}: {report.location_count} reported locations, "
            f"{wall * 1e3:.0f} ms ({count / wall:,.0f} events/s)"
            if wall > 0
            else f"replayed {count} events: {report.location_count} locations"
        )
    if args.full:
        print()
        print(report.format_full())
    if args.report_out:
        report.save(args.report_out)
        print(f"offline report: wrote {args.report_out}")
    return 0


def _cmd_trace_stat(args) -> int:
    """Summarise a trace file (size, event mix, interning tables)."""
    from repro.runtime import codec

    if codec.is_binary_trace(args.trace_file):
        stats = codec.trace_stats(args.trace_file)
        print(f"{stats['path']}: binary (RPTR v1)")
        print(
            f"  {stats['events']} events, {stats['file_bytes']} bytes "
            f"({stats['bytes_per_event']:.1f} B/event)"
        )
        print(
            f"  tables: {stats['strings']} strings, {stats['stacks']} stacks"
        )
        for name, n in stats["by_type"].items():
            print(f"  {n:8d}  {name}")
        from pathlib import Path as _Path

        hist = codec.page_histogram(_Path(args.trace_file).read_bytes())
        print(
            f"  pages: {hist['pages']} distinct shadow pages, "
            f"{hist['accesses']} accesses, skew {hist['skew']:.2f} "
            f"(1.00 = uniform; high skew shards poorly)"
        )
        for page, n in hist["top"][:5]:
            print(f"  {n:8d}  page {page:#x}")
        return 0
    import os

    from repro.runtime.trace import load_trace

    by_type: dict[str, int] = {}
    total = 0
    for event in load_trace(args.trace_file):
        by_type[type(event).__name__] = by_type.get(type(event).__name__, 0) + 1
        total += 1
    size = os.path.getsize(args.trace_file)
    print(f"{args.trace_file}: JSON-lines")
    print(
        f"  {total} events, {size} bytes "
        f"({size / max(total, 1):.1f} B/event)"
    )
    for name, n in sorted(by_type.items(), key=lambda kv: -kv[1]):
        print(f"  {n:8d}  {name}")
    return 0


def _cmd_trace_merge(args) -> int:
    """Merge per-process Chrome trace files into one timeline.

    The sharded service writes one trace per worker process
    (``--trace-dir``); each file's ``otherData.epoch_unix`` anchors its
    relative timestamps to wall time, so the merge lines the processes
    up on one Perfetto timeline and keeps their process groups apart.
    """
    import json as _json
    import os

    from repro.telemetry import merge_chrome_traces

    docs = []
    for path in args.inputs:
        with open(path, "r", encoding="utf-8") as fh:
            docs.append(_json.load(fh))
    names = [
        os.path.splitext(os.path.basename(path))[0] for path in args.inputs
    ]
    merged = merge_chrome_traces(docs, names=names)
    with open(args.output, "w", encoding="utf-8") as fh:
        _json.dump(merged, fh, indent=1)
        fh.write("\n")
    print(
        f"merged {len(docs)} traces ({len(merged['traceEvents'])} events) "
        f"into {args.output} (open in Perfetto)"
    )
    return 0


def _cmd_serve(args) -> int:
    """Run the streaming analysis service until interrupted; SIGINT or
    SIGTERM triggers a graceful drain (queued chunks are analysed and
    unfinished sessions checkpointed before exit).

    Default mode is sharded: an acceptor in this process routes each
    session to one of ``--workers`` shared-nothing worker processes by
    consistent hashing on the session id, so aggregate throughput
    scales with cores instead of saturating one GIL.
    ``--single-process`` keeps everything on one thread pool here.
    """
    import os
    import signal

    from repro.service import AnalysisServer, ShardedAnalysisServer
    from repro.telemetry import StructuredLogger, Tracer

    if (args.socket is None) == (args.tcp is None):
        raise SystemExit("pass exactly one of --socket PATH or --tcp HOST:PORT")
    endpoint: dict = {}
    if args.socket is not None:
        endpoint["socket_path"] = args.socket
    else:
        host, _, port = args.tcp.rpartition(":")
        endpoint["host"] = host or "127.0.0.1"
        endpoint["port"] = int(port)

    # Structured logs: enabled by --log-level and/or --log-file (a file
    # without a level logs at info; a level without a file logs to
    # stderr).  Neither → no logger at all, so the default service is
    # exactly as quiet and as fast as before this flag existed.
    logger = None
    log_stream = None
    if args.log_level or args.log_file:
        if args.log_file:
            log_stream = open(args.log_file, "a", encoding="utf-8")
        else:
            log_stream = sys.stderr
        logger = StructuredLogger(log_stream, level=args.log_level or "info")

    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)

    common = dict(
        queue_blocks=args.queue_blocks,
        idle_timeout=args.idle_timeout,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        finish_shards=args.finish_shards,
        finish_predict=args.finish_predict,
        **endpoint,
    )
    if args.single_process:
        tracer = trace_out = None
        if args.trace_dir:
            tracer = Tracer(pid=os.getpid(), process_name="w0")
            trace_out = os.path.join(
                args.trace_dir, f"trace-w0-{os.getpid()}.json"
            )
        server = AnalysisServer(
            workers=args.threads, logger=logger, tracer=tracer,
            trace_out=trace_out, **common,
        )
        shape = f"single process, {args.threads} analysis threads"
    else:
        server = ShardedAnalysisServer(
            workers=args.workers, threads=args.threads, logger=logger,
            log_file=args.log_file, log_level=args.log_level,
            trace_dir=args.trace_dir, **common,
        )
        shape = (
            f"{args.workers} worker processes x {args.threads} threads, "
            "consistent-hash routing"
        )

    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    server.start()
    admin = None
    if args.admin_port is not None:
        from repro.service import AdminServer

        admin = AdminServer(
            server, host=args.admin_host, port=args.admin_port,
            logger=logger,
        )
        admin.start()
    addr = server.address
    where = addr if isinstance(addr, str) else f"{addr[0]}:{addr[1]}"
    print(
        f"repro service listening on {where} "
        f"({shape}, queue bound {args.queue_blocks} blocks"
        + (f", checkpoints in {args.checkpoint_dir}" if args.checkpoint_dir else "")
        + (
            f", admin http://{admin.address[0]}:{admin.address[1]}"
            if admin is not None
            else ""
        )
        + ")",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining...", flush=True)
        server.shutdown(drain=True)
    finally:
        if admin is not None:
            admin.shutdown()
        if log_stream is not None and log_stream is not sys.stderr:
            log_stream.close()
    return 0


def _cmd_client_help(args) -> int:
    args._client_parser.print_help()
    return 2


def _client_endpoint(args) -> dict:
    """``--socket``/``--tcp`` → :class:`AnalysisClient` kwargs."""
    if (args.socket is None) == (args.tcp is None):
        raise SystemExit("pass exactly one of --socket PATH or --tcp HOST:PORT")
    if args.socket is not None:
        return {"socket_path": args.socket}
    host, _, port = args.tcp.rpartition(":")
    return {"host": host or "127.0.0.1", "port": int(port)}


class _WriterHook:
    """Legacy-style VM hook feeding every event to a TraceWriter (whose
    sink is the service connection — the live-streaming record path)."""

    def __init__(self, writer) -> None:
        self._writer = writer

    def handle(self, event, vm=None) -> None:
        self._writer.write(event)


def _save_service_report(payload: bytes, path: str | None) -> None:
    if path:
        with open(path, "wb") as fh:
            fh.write(payload)
        print(f"service report: wrote {path}")


def _cmd_client_record(args) -> int:
    """Run one case live, encoding its event stream straight onto the
    service connection (nothing staged on disk), then fetch the report."""
    import json

    from repro.experiments.harness import run_proxy_case
    from repro.runtime import codec
    from repro.service import AnalysisClient

    case = _case_by_id(args.case_id)
    with AnalysisClient(
        chunk_bytes=args.chunk_bytes, **_client_endpoint(args)
    ) as client:
        welcome = client.hello(args.config)
        sink = client.sink()
        writer = codec.TraceWriter(sink)
        run = run_proxy_case(
            case, args.config, seed=args.seed, extra_hooks=(_WriterHook(writer),)
        )
        writer.close()
        sink.close()
        payload = client.finish()
    report = json.loads(payload)
    print(
        f"streamed {writer.events_written} events "
        f"({writer.bytes_written} bytes) from {case.case_id} under "
        f"{args.config} to session {welcome['session']}"
    )
    print(
        f"live run: {run.location_count} reported locations; "
        f"service report: {len(report['warnings'])} warnings"
    )
    _save_service_report(payload, args.report_out)
    return 0


def _cmd_client_report(args) -> int:
    """Stream a recorded trace to the service; the returned report is
    byte-identical to the offline ``repro trace replay`` one."""
    import json
    import time

    from repro.service import AnalysisClient

    start = time.perf_counter()
    with AnalysisClient(
        chunk_bytes=args.chunk_bytes, **_client_endpoint(args)
    ) as client:
        welcome = client.hello(args.config, session=args.session)
        offset = int(welcome.get("offset", 0))
        sent = client.stream_file(args.trace_file, offset=offset)
        payload = client.finish()
    wall = time.perf_counter() - start
    report = json.loads(payload)
    resumed = f" (resumed at byte {offset})" if offset else ""
    print(
        f"session {welcome['session']}{resumed}: streamed {sent} bytes of "
        f"{args.trace_file} under {welcome['config']}: "
        f"{len(report['warnings'])} reported locations, {wall * 1e3:.0f} ms"
    )
    if args.full:
        print(payload.decode("utf-8"))
    _save_service_report(payload, args.report_out)
    return 0


def _print_snapshot_metrics(snapshot: dict) -> None:
    for name in sorted(snapshot.get("metrics", {})):
        family = snapshot["metrics"][name]
        print(f"{name} ({family['type']})")
        for sample in family.get("samples", []):
            labels = ",".join(
                f"{k}={v}"
                for k, v in sorted(sample.get("labels", {}).items())
            )
            print(f"  {{{labels}}} {sample['value']:g}")


def _cmd_client_stat(args) -> int:
    """Print the service's metrics snapshot (``repro_service_*`` et al).

    ``--per-worker`` asks a sharded service for every worker process's
    unmerged snapshot and prints each next to the merged whole (a
    single-process server shows one ``w0`` section)."""
    import json

    from repro.service import AnalysisClient

    with AnalysisClient(**_client_endpoint(args)) as client:
        snapshot = client.stats(per_worker=args.per_worker)
    if args.json:
        print(json.dumps(snapshot, indent=2))
        return 0
    if args.per_worker:
        for wname in sorted(snapshot.get("workers", {})):
            print(f"-- {wname} --")
            _print_snapshot_metrics(snapshot["workers"][wname])
            print()
        print("-- merged --")
        _print_snapshot_metrics(snapshot.get("merged", {}))
    else:
        _print_snapshot_metrics(snapshot)
    return 0


def _cmd_stats(args) -> int:
    """Run one case instrumented and print the pipeline's own telemetry."""
    from repro.experiments.harness import run_proxy_case
    from repro.telemetry import Telemetry, to_console

    case = _case_by_id(args.case_id)
    telemetry = Telemetry(trace=bool(args.trace_out))
    det, config = _stats_detector(args.detector)
    run = run_proxy_case(
        case, config, seed=args.seed, detector=det, telemetry=telemetry
    )
    print(
        f"{case.case_id} ({case.name}) under {args.detector} [{config}]: "
        f"{run.location_count} locations, {run.events} events, "
        f"{run.wall_seconds * 1e3:.0f} ms"
    )
    print()
    snapshot = telemetry.snapshot()
    if args.per_worker:
        # Local runs are one process; mirror the sharded service's
        # shape anyway so output is uniform with `client stat`.
        import os

        from repro.telemetry import merge_snapshots

        print(f"-- w0 (pid {os.getpid()}) --")
        print(to_console(snapshot), end="")
        print()
        print("-- merged --")
        print(to_console(merge_snapshots([snapshot])), end="")
    else:
        print(to_console(snapshot), end="")
    _write_telemetry(telemetry, args)
    return 0
