"""A simulated C++ runtime over guest memory.

The paper's false positives are not artefacts of the application's
logic; they come from what the *C++ implementation* does under the
hood — compiler-generated destructor chains rewriting vptrs (§4.2.1),
libstdc++'s reference-counted copy-on-write ``std::string`` (§4.2.2,
Figure 8/9), the pooling allocator recycling memory behind the tool's
back (§4), and libc functions returning pointers to static data
(§4.1.3).  This package rebuilds those mechanisms *as guest code*, so
running any program that uses them produces the same access patterns
Helgrind saw on the real binary:

``repro.cxx.allocator``
    ``__default_alloc_template``-style size-class pool with the
    ``GLIBCPP_FORCE_NEW`` escape hatch.
``repro.cxx.object_model``
    Class hierarchies; construction and destruction walk the base chain
    writing the vptr header word, exactly the writes behind the
    destructor false positives; ``delete_object`` optionally emits the
    Figure 4 ``HG_DESTRUCT`` annotation (the build-time switch).
``repro.cxx.string``
    ``CowString`` — reference-counted copy-on-write string whose
    ``_M_grab`` does a plain read followed by a bus-locked increment.
``repro.cxx.containers``
    Vector and map over the pooled allocator.
``repro.cxx.libc``
    ``localtime`` & friends with their static result buffers.
"""

from repro.cxx.allocator import AllocStrategy, CxxAllocator
from repro.cxx.containers import CxxMap, CxxVector
from repro.cxx.libc import LibC
from repro.cxx.object_model import CxxClass, CxxObject, delete_object, new_object
from repro.cxx.string import CowString

__all__ = [
    "AllocStrategy",
    "CowString",
    "CxxAllocator",
    "CxxClass",
    "CxxMap",
    "CxxObject",
    "CxxVector",
    "LibC",
    "delete_object",
    "new_object",
]
