"""The libstdc++-style pooling allocator (and its escape hatch).

§4 of the paper: *"An issue arising when using Helgrind with the GNU C++
Standard Library is false reporting due to the memory allocation
strategy in the standard container objects.  Memory is reused internally
and accesses to the reused memory regions are reported as data races,
even though the accesses are separated by freeing and allocating, as
Helgrind does not know anything about them.  Fortunately, the allocation
strategy of the GNU Standard C++ Library is configurable with
environment variables."*

:class:`CxxAllocator` reproduces both modes:

* ``AllocStrategy.POOL`` — the default ``__default_alloc_template``
  behaviour: small allocations come from per-size-class free lists
  carved out of large chunks; ``deallocate`` pushes the range back on
  the free list **without telling the VM**, so the detector's shadow
  state survives across logical objects and the next owner inherits a
  stale SHARED state → the §4 false positives.
* ``AllocStrategy.FORCE_NEW`` — the ``GLIBCPP_FORCE_NEW`` environment
  switch: every allocation goes straight to the VM heap, every free is a
  real free.  The detector sees each object's lifetime → no reuse FPs.
  The paper notes "this must be done prior to calling Helgrind"; here it
  is a constructor argument for the same reason (the strategy is fixed
  before the program runs).
* ``announce=True`` — a *repaired* pool (our extension): identical reuse
  behaviour, but each reissue emits an ``hg_clean`` client request so
  the detector resets the range, showing that the right fix is an
  annotation, not disabling pooling.

When a pooled range is *reissued*, the allocator registers an
``FP_ALLOC_REUSE`` ground-truth claim for it: any warning at those
addresses is attributable to reuse (the oracle analogue of the authors'
manual triage of this FP class).
"""

from __future__ import annotations

import enum

from repro.oracle import GroundTruth, WarningCategory

__all__ = ["AllocStrategy", "CxxAllocator"]

#: Size classes, in words (libstdc++ uses 8..128 bytes in steps of 8).
_SIZE_CLASSES = (1, 2, 4, 8, 16, 32, 64)
#: How many objects of a class to carve per chunk refill.
_OBJECTS_PER_CHUNK = 8


class AllocStrategy(enum.Enum):
    """Pool vs direct allocation (the ``GLIBCPP_FORCE_NEW`` switch)."""

    POOL = "pool"
    FORCE_NEW = "force-new"


class CxxAllocator:
    """Guest-level allocator; all memory traffic goes through ``api``.

    One allocator instance is shared by all threads of a guest program
    (like the real singleton pool).  The free-list manipulation itself
    is host-level bookkeeping — the real pool protects its lists with
    its own internal lock which Helgrind *does* see; modelling that adds
    nothing to the experiments, so list operations are not traced.
    """

    def __init__(
        self,
        api,
        *,
        strategy: AllocStrategy = AllocStrategy.POOL,
        truth: GroundTruth | None = None,
        announce: bool = False,
    ) -> None:
        self.api = api
        self.strategy = strategy
        self.truth = truth
        self.announce = announce
        #: size-class -> list of free base addresses.
        self._free: dict[int, list[int]] = {c: [] for c in _SIZE_CLASSES}
        #: Statistics for the E8 experiment.
        self.pool_hits = 0
        self.pool_misses = 0
        self.direct_allocs = 0
        #: addr -> size-class for pooled live allocations.
        self._live_pooled: dict[int, int] = {}
        #: Addresses that have carried at least one previous object.
        self._used_before: set[int] = set()

    # ------------------------------------------------------------------

    def allocate(self, api, size: int, tag: str = "") -> int:
        """Allocate ``size`` words; returns the base address.

        ``api`` is the *calling thread's* guest API (the allocator is
        shared, the caller is not).
        """
        if self.strategy is AllocStrategy.FORCE_NEW or size > _SIZE_CLASSES[-1]:
            self.direct_allocs += 1
            return api.malloc(size, tag=tag or "operator-new")
        size_class = self._class_for(size)
        free_list = self._free[size_class]
        if not free_list:
            self.pool_misses += 1
            self._refill(api, size_class)
        addr = free_list.pop()
        if addr in self._used_before:
            # Reissue of a recycled range — the §4 confusion source.
            self.pool_hits += 1
            self._on_reissue(api, addr, size_class, tag)
        self._live_pooled[addr] = size_class
        return addr

    def deallocate(self, api, addr: int, size: int) -> None:
        """Return ``addr`` to the pool (or the VM under FORCE_NEW)."""
        size_class = self._live_pooled.pop(addr, None)
        if size_class is None:
            api.free(addr)  # direct allocation
            return
        # Pooled: no VM free — the range silently joins the free list.
        self._used_before.add(addr)
        self._free[size_class].append(addr)

    # ------------------------------------------------------------------

    def _class_for(self, size: int) -> int:
        for c in _SIZE_CLASSES:
            if size <= c:
                return c
        raise AssertionError("unreachable: large sizes go direct")

    def _refill(self, api, size_class: int) -> None:
        """Carve a fresh chunk into ``size_class`` objects."""
        chunk = api.malloc(
            size_class * _OBJECTS_PER_CHUNK, tag=f"pool-chunk[{size_class}]"
        )
        # LIFO order: lowest address is handed out first.
        for i in reversed(range(_OBJECTS_PER_CHUNK)):
            self._free[size_class].append(chunk + i * size_class)

    def _on_reissue(self, api, addr: int, size_class: int, tag: str) -> None:
        """Bookkeeping when a previously-used range is handed out again."""
        if self.truth is not None:
            self.truth.claim(
                addr,
                size_class,
                WarningCategory.FP_ALLOC_REUSE,
                note=f"pool reissue for {tag or 'object'}",
            )
        if self.announce:
            api.hg_clean(addr, size_class)

    # ------------------------------------------------------------------

    @property
    def reuse_count(self) -> int:
        """Number of allocations served from recycled ranges."""
        return self.pool_hits

    def stats(self) -> dict[str, int]:
        return {
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "direct_allocs": self.direct_allocs,
            "live_pooled": len(self._live_pooled),
        }
