"""STL-style containers over the pooled allocator.

Minimal ``std::vector`` / ``std::map`` models whose storage lives in
guest memory and flows through :class:`repro.cxx.allocator.CxxAllocator`
— which is the entire point: container churn is what drives the §4
allocator-reuse false positives ("false reporting due to the memory
allocation strategy in the standard container objects").

Layout
------
``CxxVector``: a control block ``[size][capacity][buf*]`` plus a data
buffer that is reallocated on growth (the old buffer returning to the
pool is the reuse trigger).

``CxxMap``: an association vector — sorted ``(key, value)`` pairs in a
single buffer with binary-search lookup, the classic small-``std::map``
implementation strategy.  Keys are host strings/ints; values are guest
words.  Like the real ``std::map::operator[]``, lookups of missing keys
insert a default value — and like the real thing, none of this is
internally synchronised: callers must lock, and the paper's
``getDomainData`` bug (Figure 7) is precisely a caller handing out an
unprotected reference to such a map.
"""

from __future__ import annotations

from repro.errors import GuestFault

__all__ = ["CxxVector", "CxxMap"]

_V_SIZE = 0
_V_CAP = 1
_V_BUF = 2
_V_CTRL = 3

_FILE = "stl_impl.h"


class CxxVector:
    """A growable guest-memory array of words."""

    __slots__ = ("ctrl", "allocator")

    def __init__(self, api, allocator, *, capacity: int = 4) -> None:
        self.allocator = allocator
        with api.frame("vector::vector", _FILE, 20):
            self.ctrl = allocator.allocate(api, _V_CTRL, tag="vector.ctrl")
            buf = allocator.allocate(api, capacity, tag="vector.buf")
            api.store(self.ctrl + _V_SIZE, 0)
            api.store(self.ctrl + _V_CAP, capacity)
            api.store(self.ctrl + _V_BUF, buf)

    def size(self, api) -> int:
        with api.frame("vector::size", _FILE, 41):
            return api.load(self.ctrl + _V_SIZE)

    def push_back(self, api, value) -> None:
        with api.frame("vector::push_back", _FILE, 55):
            size = api.load(self.ctrl + _V_SIZE)
            cap = api.load(self.ctrl + _V_CAP)
            buf = api.load(self.ctrl + _V_BUF)
            if size == cap:
                buf = self._grow(api, size, cap, buf)
            api.store(buf + size, value)
            api.store(self.ctrl + _V_SIZE, size + 1)

    def _grow(self, api, size: int, cap: int, old_buf: int) -> int:
        with api.frame("vector::_M_realloc", _FILE, 70):
            new_cap = cap * 2
            new_buf = self.allocator.allocate(api, new_cap, tag="vector.buf")
            for i in range(size):
                api.store(new_buf + i, api.load(old_buf + i))
            # The old buffer returns to the pool: the §4 reuse trigger.
            self.allocator.deallocate(api, old_buf, cap)
            api.store(self.ctrl + _V_CAP, new_cap)
            api.store(self.ctrl + _V_BUF, new_buf)
            return new_buf

    def get(self, api, index: int):
        with api.frame("vector::operator[]", _FILE, 90):
            size = api.load(self.ctrl + _V_SIZE)
            if not 0 <= index < size:
                raise GuestFault(
                    f"vector index {index} out of range [0, {size})", tid=api.tid
                )
            buf = api.load(self.ctrl + _V_BUF)
            return api.load(buf + index)

    def set(self, api, index: int, value) -> None:
        with api.frame("vector::operator[]", _FILE, 90):
            size = api.load(self.ctrl + _V_SIZE)
            if not 0 <= index < size:
                raise GuestFault(
                    f"vector index {index} out of range [0, {size})", tid=api.tid
                )
            buf = api.load(self.ctrl + _V_BUF)
            api.store(buf + index, value)

    def pop_back(self, api):
        with api.frame("vector::pop_back", _FILE, 101):
            size = api.load(self.ctrl + _V_SIZE)
            if size == 0:
                raise GuestFault("pop_back on empty vector", tid=api.tid)
            buf = api.load(self.ctrl + _V_BUF)
            value = api.load(buf + size - 1)
            api.store(self.ctrl + _V_SIZE, size - 1)
            return value

    def destroy(self, api) -> None:
        """``~vector``: release buffer and control block."""
        with api.frame("vector::~vector", _FILE, 33):
            cap = api.load(self.ctrl + _V_CAP)
            buf = api.load(self.ctrl + _V_BUF)
            self.allocator.deallocate(api, buf, cap)
            self.allocator.deallocate(api, self.ctrl, _V_CTRL)

    def storage_peek(self, vm) -> tuple[int, int]:
        """Untraced (host-level) view of ``(buffer, capacity)``.

        For oracle bookkeeping only: reads the control words through the
        VM's debug interface so the inspection itself emits no events
        and cannot perturb detector state.
        """
        cap = vm.memory.peek(self.ctrl + _V_CAP) or 0
        buf = vm.memory.peek(self.ctrl + _V_BUF) or 0
        return buf, cap


class CxxMap:
    """A sorted association vector with ``std::map`` semantics.

    Entries occupy two consecutive words (key, value) in the buffer.
    """

    __slots__ = ("_vec",)

    def __init__(self, api, allocator) -> None:
        with api.frame("map::map", _FILE, 120):
            self._vec = CxxVector(api, allocator, capacity=8)

    def size(self, api) -> int:
        with api.frame("map::size", _FILE, 130):
            return self._vec.size(api) // 2

    def _find_slot(self, api, key) -> tuple[int, bool]:
        """Linear scan (entries are few); returns (pair index, found)."""
        n = self._vec.size(api) // 2
        for i in range(n):
            existing = self._vec.get(api, 2 * i)
            if existing == key:
                return i, True
            if existing > key:
                return i, False
        return n, False

    def insert(self, api, key, value) -> bool:
        """Insert; returns False if the key already existed (no update)."""
        with api.frame("map::insert", _FILE, 140):
            idx, found = self._find_slot(api, key)
            if found:
                return False
            self._shift_in(api, idx, key, value)
            return True

    def _shift_in(self, api, idx: int, key, value) -> None:
        self._vec.push_back(api, None)
        self._vec.push_back(api, None)
        n = self._vec.size(api) // 2
        for j in range(n - 1, idx, -1):
            self._vec.set(api, 2 * j, self._vec.get(api, 2 * (j - 1)))
            self._vec.set(api, 2 * j + 1, self._vec.get(api, 2 * (j - 1) + 1))
        self._vec.set(api, 2 * idx, key)
        self._vec.set(api, 2 * idx + 1, value)

    def get(self, api, key, default=None):
        with api.frame("map::find", _FILE, 160):
            idx, found = self._find_slot(api, key)
            if not found:
                return default
            return self._vec.get(api, 2 * idx + 1)

    def subscript(self, api, key):
        """``map::operator[]``: inserts a default on miss (like the STL)."""
        with api.frame("map::operator[]", _FILE, 175):
            idx, found = self._find_slot(api, key)
            if not found:
                self._shift_in(api, idx, key, 0)
            return self._vec.get(api, 2 * idx + 1)

    def set(self, api, key, value) -> None:
        with api.frame("map::operator[]", _FILE, 175):
            idx, found = self._find_slot(api, key)
            if found:
                self._vec.set(api, 2 * idx + 1, value)
            else:
                self._shift_in(api, idx, key, value)

    def contains(self, api, key) -> bool:
        with api.frame("map::count", _FILE, 190):
            return self._find_slot(api, key)[1]

    def keys(self, api) -> list:
        with api.frame("map::begin", _FILE, 200):
            n = self._vec.size(api) // 2
            return [self._vec.get(api, 2 * i) for i in range(n)]

    def destroy(self, api) -> None:
        with api.frame("map::~map", _FILE, 125):
            self._vec.destroy(api)

    def storage_peek(self, vm) -> tuple[int, int]:
        """Untraced ``(buffer, capacity)`` of the backing vector."""
        return self._vec.storage_peek(vm)
