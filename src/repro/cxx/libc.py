"""Non-thread-safe libc functions with static result buffers (§4.1.3).

The paper quotes the glibc manual: *"The four functions asctime(),
ctime(), gmtime() and localtime() return a pointer to static data and
hence are NOT thread-safe"* — and reports that the proxy's use of such
functions produced genuine data-race warnings.

:class:`LibC` models the family: each legacy function owns one static
guest buffer, lazily allocated, written on every call, whose address is
returned to the caller.  Two threads calling ``localtime`` concurrently
genuinely race on the buffer (a *true positive*), so the buffer is
claimed as ``TRUE_RACE`` in the oracle with ``bug_id='libc-static'``.

The reentrant ``*_r`` variants (the fix the paper implies) write into a
caller-supplied buffer instead.
"""

from __future__ import annotations

from repro.oracle import GroundTruth, WarningCategory

__all__ = ["LibC", "TM_SIZE"]

#: Words in a ``struct tm`` model: sec, min, hour, mday, mon, year.
TM_SIZE = 6

_FILE = "time.c"


class LibC:
    """One simulated C library instance, shared by all guest threads."""

    def __init__(self, *, truth: GroundTruth | None = None, bug_id: str = "libc-static") -> None:
        self.truth = truth
        self.bug_id = bug_id
        self._static_buffers: dict[str, int] = {}
        #: Number of calls per function (test/diagnostic aid).
        self.calls: dict[str, int] = {}

    # ------------------------------------------------------------------

    def _static_buffer(self, api, name: str, size: int) -> int:
        addr = self._static_buffers.get(name)
        if addr is None:
            addr = api.malloc(size, tag=f"libc.static.{name}")
            self._static_buffers[name] = addr
            if self.truth is not None:
                self.truth.claim(
                    addr,
                    size,
                    WarningCategory.TRUE_RACE,
                    note=f"static result buffer of {name}() — not thread-safe",
                    bug_id=self.bug_id,
                )
        return addr

    def _count(self, name: str) -> None:
        self.calls[name] = self.calls.get(name, 0) + 1

    # ------------------------------------------------------------------
    # The unsafe family: write static data, return its address.
    # ------------------------------------------------------------------

    def localtime(self, api, timestamp: int) -> int:
        """``struct tm *localtime(const time_t *)`` — NOT thread-safe."""
        self._count("localtime")
        buf = self._static_buffer(api, "localtime", TM_SIZE)
        with api.frame("localtime", _FILE, 88):
            self._fill_tm(api, buf, timestamp)
        return buf

    def gmtime(self, api, timestamp: int) -> int:
        """``struct tm *gmtime(const time_t *)`` — NOT thread-safe."""
        self._count("gmtime")
        buf = self._static_buffer(api, "gmtime", TM_SIZE)
        with api.frame("gmtime", _FILE, 95):
            self._fill_tm(api, buf, timestamp)
        return buf

    def ctime(self, api, timestamp: int) -> int:
        """``char *ctime(const time_t *)`` — NOT thread-safe.

        Returns the address of a one-word static string buffer.
        """
        self._count("ctime")
        buf = self._static_buffer(api, "ctime", 1)
        with api.frame("ctime", _FILE, 102):
            api.store(buf, f"time-string-{timestamp}")
        return buf

    def asctime(self, api, tm_addr: int) -> int:
        """``char *asctime(const struct tm *)`` — NOT thread-safe."""
        self._count("asctime")
        buf = self._static_buffer(api, "asctime", 1)
        with api.frame("asctime", _FILE, 110):
            parts = [api.load(tm_addr + i) for i in range(TM_SIZE)]
            api.store(buf, "tm:" + ":".join(str(p) for p in parts))
        return buf

    def strtok(self, api, text_addr: int | None, sep: str) -> object:
        """``char *strtok(char *, const char *)`` — static cursor state.

        The parse position lives in a static word; interleaved use from
        two threads corrupts both parses.
        """
        self._count("strtok")
        state = self._static_buffer(api, "strtok", 2)
        with api.frame("strtok", "string.c", 55):
            if text_addr is not None:
                api.store(state, text_addr)
                api.store(state + 1, 0)
            src = api.load(state)
            pos = api.load(state + 1)
            text = api.load(src)
            tokens = text.split(sep)
            if pos >= len(tokens):
                return None
            api.store(state + 1, pos + 1)
            return tokens[pos]

    # ------------------------------------------------------------------
    # The reentrant fixes.
    # ------------------------------------------------------------------

    def localtime_r(self, api, timestamp: int, buf: int) -> int:
        """``localtime_r``: caller-supplied buffer — thread-safe."""
        self._count("localtime_r")
        with api.frame("localtime_r", _FILE, 120):
            self._fill_tm(api, buf, timestamp)
        return buf

    def gmtime_r(self, api, timestamp: int, buf: int) -> int:
        self._count("gmtime_r")
        with api.frame("gmtime_r", _FILE, 128):
            self._fill_tm(api, buf, timestamp)
        return buf

    # ------------------------------------------------------------------

    @staticmethod
    def _fill_tm(api, buf: int, timestamp: int) -> None:
        """Decompose ``timestamp`` into the six ``struct tm`` words."""
        api.store(buf + 0, timestamp % 60)
        api.store(buf + 1, (timestamp // 60) % 60)
        api.store(buf + 2, (timestamp // 3600) % 24)
        api.store(buf + 3, (timestamp // 86400) % 31 + 1)
        api.store(buf + 4, (timestamp // 2678400) % 12 + 1)
        api.store(buf + 5, 1970 + timestamp // 31536000)
