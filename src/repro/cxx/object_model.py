"""The simulated C++ object model: vptrs, constructor/destructor chains.

§4.2.1 of the paper explains the largest false-positive class:

    "When the destructor of an object is called every destructor of its
    parent classes is called prior to actually releasing the memory
    associated with the object.  The destructor of the super-class
    should only see the properties of its class ... This change is done
    by writing to a location in the object's memory."

That location is the vptr (word 0 of the object here).  We model it
faithfully:

* ``new_object`` runs the constructor chain **base → derived**; each
  constructor stores its class's vtable pointer into the header, then
  zero-initialises the fields that class declares.
* ``delete_object`` runs the destructor chain **derived → base**; each
  destructor *first* rewrites the header to its own class's vtable (the
  compiler-generated write that trips Helgrind), then runs its body.
  With ``annotate=True`` the Figure 4 ``HG_DESTRUCT`` client request is
  emitted before the chain — the output of the instrumented build.

Objects are laid out ``[vptr][base fields...][derived fields...]``, the
standard single-inheritance layout.

All accesses happen under descriptive guest stack frames
(``Derived::~Derived (file:line)``) so warnings carry the same shape as
the paper's Figure 9 and the destructor-stack classification heuristic
applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import GuestFault
from repro.oracle import GroundTruth, WarningCategory

__all__ = ["CxxClass", "CxxObject", "new_object", "delete_object"]


@dataclass
class CxxClass:
    """A class description: name, optional single base, declared fields.

    ``methods`` maps method names to ``fn(api, obj, *args)`` callables;
    :meth:`CxxObject.vcall` dispatches through the vptr like a real
    virtual call (reading the header word first).
    """

    name: str
    base: "CxxClass | None" = None
    fields: tuple[str, ...] = ()
    methods: dict[str, Callable] = field(default_factory=dict)
    #: Source coordinates used for constructor/destructor frames.
    file: str = "<generated>"
    line: int = 0

    def __post_init__(self) -> None:
        seen = set()
        for cls in self.mro():
            for f in cls.fields:
                if f in seen:
                    raise ValueError(
                        f"field {f!r} declared twice in hierarchy of {self.name}"
                    )
                seen.add(f)

    def mro(self) -> list["CxxClass"]:
        """Base-to-derived chain (single inheritance)."""
        chain: list[CxxClass] = []
        cls: CxxClass | None = self
        while cls is not None:
            chain.append(cls)
            cls = cls.base
        chain.reverse()
        return chain

    @property
    def size(self) -> int:
        """Object size in words: 1 header word + all fields."""
        return 1 + sum(len(c.fields) for c in self.mro())

    def field_offset(self, name: str) -> int:
        offset = 1  # header
        for cls in self.mro():
            for f in cls.fields:
                if f == name:
                    return offset
                offset += 1
        raise KeyError(f"{self.name} has no field {name!r}")

    def all_fields(self) -> list[str]:
        out: list[str] = []
        for cls in self.mro():
            out.extend(cls.fields)
        return out

    def find_method(self, name: str) -> Callable:
        """Look the method up derived-to-base (virtual override order)."""
        for cls in reversed(self.mro()):
            if name in cls.methods:
                return cls.methods[name]
        raise KeyError(f"{self.name} has no method {name!r}")

    def is_derived(self) -> bool:
        return self.base is not None

    def __repr__(self) -> str:
        base = f" : {self.base.name}" if self.base else ""
        return f"CxxClass({self.name}{base}, {len(self.all_fields())} fields)"


@dataclass(slots=True)
class CxxObject:
    """A constructed instance living in guest memory."""

    cls: CxxClass
    addr: int

    @property
    def header_addr(self) -> int:
        return self.addr

    def field_addr(self, name: str) -> int:
        return self.addr + self.cls.field_offset(name)

    def get(self, api, name: str):
        """Plain (unlocked) field read."""
        return api.load(self.field_addr(name))

    def set(self, api, name: str, value) -> None:
        """Plain (unlocked) field write."""
        api.store(self.field_addr(name), value)

    def vcall(self, api, method: str, *args):
        """Virtual dispatch: read the vptr, then invoke the override.

        The vptr *read* is what drags the header word into a shared
        state once a second thread calls any virtual method — the
        precondition for the §4.2.1 destructor warnings.
        """
        vptr = api.load(self.header_addr)
        if not isinstance(vptr, str) or not vptr.startswith("vtbl:"):
            raise GuestFault(
                f"virtual call on corrupt object at {self.addr:#x} (vptr={vptr!r})",
                tid=api.tid,
            )
        impl = self.cls.find_method(method)
        return impl(api, self, *args)


def new_object(
    api,
    cls: CxxClass,
    allocator,
    *,
    init: dict[str, object] | None = None,
) -> CxxObject:
    """``new Cls(...)``: allocate and run the constructor chain."""
    addr = allocator.allocate(api, cls.size, tag=cls.name)
    obj = CxxObject(cls, addr)
    for c in cls.mro():  # base → derived
        with api.frame(f"{c.name}::{c.name}", c.file, c.line):
            # The compiler sets the vtable pointer for the class whose
            # constructor body is about to run.
            api.store(obj.header_addr, f"vtbl:{c.name}")
            for f in c.fields:
                api.store(obj.field_addr(f), 0)
    if init:
        for name, value in init.items():
            obj.set(api, name, value)
    return obj


def delete_object(
    api,
    obj: CxxObject,
    allocator,
    *,
    annotate: bool,
    truth: GroundTruth | None = None,
) -> None:
    """``delete obj``: destructor chain derived → base, then deallocate.

    ``annotate`` is the build switch of §3.3: instrumented builds pass
    the pointer through ``ca_deletor_single`` (Figure 4), which emits
    ``VALGRIND_HG_DESTRUCT(object, sizeof(Type))`` before the destructor
    runs.  Un-instrumented builds (or source the build had no access to)
    go straight to the destructor chain.

    Destructor header rewrites only happen for *derived* classes — a
    class without bases never needs to re-point its vptr mid-destruction
    — matching the paper's observation that the warnings "all belong to
    derived classes".
    """
    if annotate:
        api.hg_destruct(obj.addr, obj.cls.size)
    if truth is not None:
        # Oracle: warnings on the header from here on are the §4.2.1 FP
        # class (the destructor writes themselves are single-owner).
        truth.claim(
            obj.header_addr,
            1,
            WarningCategory.FP_DESTRUCTOR,
            note=f"vptr rewrites while destroying {obj.cls.name}",
        )
    chain = list(reversed(obj.cls.mro()))  # derived → base
    for i, c in enumerate(chain):
        with api.frame(f"{c.name}::~{c.name}", c.file, c.line + 1):
            # The compiler re-points the vptr so the base destructor
            # sees its own class — the §4.2.1 write.  The most-derived
            # destructor entry needs no rewrite (the vptr already points
            # at it); every *base* entry does.
            if i > 0:
                api.store(obj.header_addr, f"vtbl:{c.name}")
            dtor = c.methods.get("~")
            if dtor is not None:
                dtor(api, obj)
    allocator.deallocate(api, obj.addr, obj.cls.size)
