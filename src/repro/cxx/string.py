"""Reference-counted copy-on-write string (the Figure 8/9 machinery).

GNU libstdc++ 3.x implemented ``std::string`` with a shared
representation (``_Rep``): copying a string just bumps a reference
counter on the source representation.  Thread safety of the counter is
achieved with bus-locked (``LOCK``-prefixed) atomic arithmetic — but the
*checks* of the counter (is the rep shared? is it leaked?) are plain
unlocked reads.  That exact combination is the paper's Figure 8: copying
a string that another thread also copies makes Helgrind's original
bus-lock model report ``_M_grab`` as a possible data race (Figure 9),
because the plain reads empty the candidate set of the counter word.

Representation layout (one guest block, tag ``string.rep``)::

    [0] refcount        (atomic; plain reads + LOCKed RMWs)
    [1] length
    [2] capacity
    [3] data            (the character payload, one word)

A :class:`CowString` *handle* is the ``std::string`` object itself: a
single pointer-sized value.  Handles are host objects because the paper
never depends on where the handle lives, only on what happens to the
rep; when a handle is a field of a guest object, store
:attr:`CowString.rep` in that field and rewrap with
:meth:`CowString.from_rep`.

Every operation runs under the libstdc++ frame names that appear in
Figure 9 (``_M_grab``, ``_M_dispose``, ``basic_string::basic_string``),
so reports and suppression files line up with the paper's output.
"""

from __future__ import annotations

from repro.oracle import GroundTruth, WarningCategory

__all__ = ["CowString"]

_OFF_REFCOUNT = 0
_OFF_LENGTH = 1
_OFF_CAPACITY = 2
_OFF_DATA = 3
_REP_SIZE = 4

_FILE = "basic_string.h"


class CowString:
    """A handle to a shared string representation in guest memory."""

    __slots__ = ("rep", "allocator", "truth")

    def __init__(self, rep: int, allocator, truth: GroundTruth | None) -> None:
        self.rep = rep
        self.allocator = allocator
        self.truth = truth

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls, api, text: str, allocator, *, truth: GroundTruth | None = None
    ) -> "CowString":
        """``std::string s("text")`` — fresh rep with refcount 1."""
        with api.frame("basic_string::basic_string", _FILE, 104):
            rep = allocator.allocate(api, _REP_SIZE, tag="string.rep")
            api.store(rep + _OFF_REFCOUNT, 1)
            api.store(rep + _OFF_LENGTH, len(text))
            api.store(rep + _OFF_CAPACITY, max(len(text), 8))
            api.store(rep + _OFF_DATA, text)
        if truth is not None:
            # Oracle: the refcount word is synchronised by the bus lock;
            # any warning on it is the §4.2.2 hardware-lock FP.
            truth.claim(
                rep + _OFF_REFCOUNT,
                1,
                WarningCategory.FP_HW_LOCK,
                note="std::string reference counter (Fig 8)",
            )
        return cls(rep, allocator, truth)

    @classmethod
    def from_rep(cls, rep: int, allocator, truth: GroundTruth | None = None) -> "CowString":
        """Rewrap a rep pointer loaded from a guest object field."""
        return cls(rep, allocator, truth)

    # ------------------------------------------------------------------
    # The Figure 8 operations
    # ------------------------------------------------------------------

    def copy(self, api) -> "CowString":
        """``std::string t = s`` — ``_M_grab``: share the rep.

        The plain (un-``LOCK``ed) read checks whether the rep is
        shareable; the increment itself carries the ``LOCK`` prefix.
        This pairing is what distinguishes the original and corrected
        bus-lock models.
        """
        with api.frame("basic_string::basic_string", _FILE, 210):
            with api.frame("_M_grab", _FILE, 183):
                shareable = api.load(self.rep + _OFF_REFCOUNT)  # plain read
                if shareable >= 0:
                    api.atomic_add(self.rep + _OFF_REFCOUNT, 1)  # LOCK add
        return CowString(self.rep, self.allocator, self.truth)

    def dispose(self, api) -> None:
        """``~basic_string`` — ``_M_dispose``: drop one reference."""
        with api.frame("_M_dispose", _FILE, 236):
            old = api.atomic_add(self.rep + _OFF_REFCOUNT, -1)  # LOCK sub
            if old == 1:
                self.allocator.deallocate(api, self.rep, _REP_SIZE)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def value(self, api) -> str:
        """Read the character payload (``c_str()``-style)."""
        with api.frame("basic_string::data", _FILE, 301):
            api.load(self.rep + _OFF_LENGTH)
            return api.load(self.rep + _OFF_DATA)

    def length(self, api) -> int:
        with api.frame("basic_string::size", _FILE, 290):
            return api.load(self.rep + _OFF_LENGTH)

    def refcount(self, api) -> int:
        """Diagnostic plain read of the counter (tests only)."""
        return api.load(self.rep + _OFF_REFCOUNT)

    def mutate(self, api, text: str) -> "CowString":
        """``s = "new"`` — copy-on-write.

        A shared rep is unshared first (``_M_mutate``): allocate a fresh
        rep, drop a reference on the old one.  Returns the handle to
        write back (it may be ``self``).
        """
        with api.frame("_M_mutate", _FILE, 252):
            shared = api.load(self.rep + _OFF_REFCOUNT) > 1  # plain read
            if shared:
                fresh = CowString.create(
                    api, text, self.allocator, truth=self.truth
                )
                self.dispose(api)
                return fresh
            api.store(self.rep + _OFF_LENGTH, len(text))
            api.store(self.rep + _OFF_DATA, text)
            return self

    def __repr__(self) -> str:
        return f"CowString(rep={self.rep:#x})"
