"""Race- and deadlock-detection engines (the paper's core contribution).

The central class is :class:`HelgrindDetector`, configured by
:class:`HelgrindConfig` into the paper's three evaluation rows plus the
ablation and extension variants:

=============================  =====================================================
``HelgrindConfig.original()``  Helgrind as shipped (mutex-model bus lock)
``HelgrindConfig.hwlc()``      + corrected hardware bus-lock semantics (§3.1)
``HelgrindConfig.hwlc_dr()``   + automatic destructor annotation honoured (§3.1)
``HelgrindConfig.extended()``  + queue/semaphore happens-before (future work, §5)
``HelgrindConfig.raw_eraser()``  §2.3.2's basic algorithm (no states/segments)
``HelgrindConfig.eraser_states()``  Figure 1 states, no thread segments
=============================  =====================================================

Baselines: :class:`DjitDetector` (vector-clock happens-before, §2.2) and
:class:`HybridDetector` (lock-set nominator × happens-before confirmer,
the MultiRace/[12] family).  :class:`LockGraphDetector` reports lock-
order inversions.  All detectors are plain VM hooks; they also work
post-mortem over recorded traces (:func:`repro.runtime.trace.replay`).
"""

from repro.detectors.classify import (
    ClassifiedReport,
    ClassifiedWarning,
    classify_report,
)
from repro.detectors.deadlock import LockGraphDetector
from repro.detectors.dispatch import EventDispatcher, combine_handlers, handles
from repro.detectors.djit import DjitDetector
from repro.detectors.highlevel import HighLevelRaceDetector, ViewInconsistency
from repro.detectors.helgrind import (
    BUS_LOCK_ID,
    BusLockModel,
    HelgrindConfig,
    HelgrindDetector,
)
from repro.detectors.hybrid import HybridDetector
from repro.detectors.racetrack import RaceTrackDetector
from repro.detectors.atomizer import AtomizerDetector
from repro.detectors.lockset import LocksetMachine, ShadowWord, WordState
from repro.detectors.parallel import (
    ShardedReplayResult,
    merge_reports,
    replay_trace_sharded,
)
from repro.detectors.predict import PredictiveDetector
from repro.detectors.report import (
    Finding,
    Report,
    Warning_,
    WarningKind,
    validate_report_json,
)
from repro.detectors.segments import Segment, SegmentGraph
from repro.detectors.suppressions import SuppressionEntry, Suppressions
from repro.detectors.vectorclock import VectorClock

__all__ = [
    "BUS_LOCK_ID",
    "BusLockModel",
    "ClassifiedReport",
    "ClassifiedWarning",
    "DjitDetector",
    "EventDispatcher",
    "combine_handlers",
    "handles",
    "HelgrindConfig",
    "HelgrindDetector",
    "HighLevelRaceDetector",
    "ViewInconsistency",
    "HybridDetector",
    "LockGraphDetector",
    "RaceTrackDetector",
    "AtomizerDetector",
    "LocksetMachine",
    "Finding",
    "PredictiveDetector",
    "Report",
    "Segment",
    "SegmentGraph",
    "ShadowWord",
    "ShardedReplayResult",
    "SuppressionEntry",
    "Suppressions",
    "VectorClock",
    "Warning_",
    "WarningKind",
    "WordState",
    "classify_report",
    "merge_reports",
    "validate_report_json",
    "replay_trace_sharded",
]
