"""Atomizer-style dynamic atomicity checking (the paper's reference [4]).

§2.1 of the paper points out that race-freedom is too weak a property —
a structure can tear even when every access is locked — and cites
Flanagan & Freund's *Atomizer* as the dynamic answer: check that blocks
the programmer intends to be atomic are **reducible** in Lipton's sense.

Lipton reduction, as Atomizer applies it:

* a lock *acquire* is a **right-mover** (commutes later),
* a lock *release* is a **left-mover** (commutes earlier),
* an access to a consistently-protected variable is a **both-mover**,
* an access to a potentially-racy variable is a **non-mover**.

A block is atomic if its event sequence matches ``R* N? L*`` — right
movers, at most one non-mover commit point, then left movers.  The
checker runs a two-phase state machine per open region (``PRE`` until
the commit point, ``POST`` after): a right-mover or a second non-mover
in the ``POST`` phase is an atomicity violation — the block can be
interleaved observably.

Variable raciness is decided the way Atomizer decides it: by running
the Eraser lock-set algorithm alongside (here: a full
:class:`~repro.detectors.helgrind.HelgrindDetector` with the corrected
bus-lock model, reused as the oracle for "is this access protected?").

Guest programs declare intent with ``api.atomic_region(name)``; the
SIP proxy's §2.1-style torn-record bug is the canonical catch (see
``tests/detectors/test_atomizer.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detectors.dispatch import EventDispatcher
from repro.detectors.helgrind import HelgrindConfig, HelgrindDetector
from repro.detectors.report import Report, Warning_
from repro.runtime.events import (
    CallStack,
    ClientRequest,
    Event,
    LockAcquire,
    LockRelease,
    MemoryAccess,
)

__all__ = ["AtomizerDetector", "ATOMICITY_VIOLATION"]

ATOMICITY_VIOLATION = "atomicity-violation"


@dataclass(slots=True)
class _Region:
    """One open atomic region of one thread."""

    stack: CallStack
    #: False = PRE-commit (right movers welcome); True = POST-commit.
    post: bool = False
    violated: bool = False


class AtomizerDetector(EventDispatcher):
    """Reduction-based atomicity checker (register on a VM or replay).

    Only code inside ``api.atomic_region(...)`` blocks is checked;
    everything else streams through to the embedded raciness oracle.
    """

    #: ``detector`` label value in the telemetry layer.
    telemetry_name = "atomizer"

    def __init__(self, *, oracle_config: HelgrindConfig | None = None) -> None:
        self.report = Report()
        #: Eraser oracle deciding which accesses are both-movers.  Its
        #: own report is ignored; only the shadow machine is consulted.
        self._oracle = HelgrindDetector(
            oracle_config or HelgrindConfig.hwlc_dr().with_(name="atomizer-oracle")
        )
        #: tid -> stack of open regions (outermost first).
        self._regions: dict[int, list[_Region]] = {}
        self.regions_checked = 0
        #: Per-instance route cache (event type -> composed handler).
        self._routes: dict[type, object] = {}

    # ------------------------------------------------------------------

    def handler_for(self, event_type):
        """Dispatch-table ABI.  The four event types Lipton reduction
        classifies get a pre-oracle phase; everything else the oracle
        subscribes to streams straight through.  The classification
        always runs *before* the oracle mutates its shadow state."""
        try:
            return self._routes[event_type]
        except KeyError:
            pass
        own = {
            ClientRequest: self._on_client_request,
            LockAcquire: self._on_lock_acquire,
            LockRelease: self._on_lock_release,
            MemoryAccess: self._on_access,
        }.get(event_type)
        fn = own if own is not None else self._oracle.handler_for(event_type)
        self._routes[event_type] = fn
        return fn

    @property
    def machine(self):
        """Shadow lock-set machine of the raciness oracle (telemetry
        layer enables state-transition tracking through this)."""
        return self._oracle.machine

    def telemetry_summary(self) -> dict[str, float]:
        """Size gauges for ``repro_detector_state`` (telemetry layer)."""
        open_now = sum(len(stack) for stack in self._regions.values())
        return {
            "regions_checked": self.regions_checked,
            "regions_open": open_now,
            "oracle_tracked_words": self._oracle.machine.tracked_words,
        }

    def _on_client_request(self, event: ClientRequest, vm) -> None:
        if event.request == "atomic_begin":
            self._regions.setdefault(event.tid, []).append(_Region(stack=event.stack))
            self.regions_checked += 1
            return
        if event.request == "atomic_end":
            open_regions = self._regions.get(event.tid)
            if open_regions:
                open_regions.pop()
            return
        self._oracle._on_client_request(event, vm)

    def _on_lock_acquire(self, event: LockAcquire, vm) -> None:
        open_regions = self._regions.get(event.tid)
        if open_regions:
            self._apply(event, open_regions, mover="right")
        self._oracle._on_lock_acquire(event, vm)

    def _on_lock_release(self, event: LockRelease, vm) -> None:
        open_regions = self._regions.get(event.tid)
        if open_regions:
            self._apply(event, open_regions, mover="left")
        self._oracle._on_lock_release(event, vm)

    def _on_access(self, event: MemoryAccess, vm) -> None:
        # Classify *before* the oracle mutates its shadow state.
        open_regions = self._regions.get(event.tid)
        if open_regions:
            mover = "both" if self._protected(event) else "non"
            self._apply(event, open_regions, mover=mover)
        self._oracle._on_access(event, vm)

    # ------------------------------------------------------------------

    def _protected(self, event: MemoryAccess) -> bool:
        """Both-mover test: would this access keep a non-empty candidate
        set under the Eraser oracle?  (Private/exclusive data is trivially
        protected.)"""
        from repro.detectors.lockset import WordState

        machine = self._oracle.machine
        word = machine.word(event.addr)
        if word.state in (WordState.NEW, WordState.EXCLUSIVE):
            return True  # thread-local (so far): both-mover
        held = self._oracle._held_for(event.tid)
        locks_any, locks_write = self._oracle._effective_sets(held, event)
        effective = locks_write if event.is_write else locks_any
        current = word.lockset if word.lockset is not None else effective
        return bool(current & effective)

    def _apply(self, event: Event, open_regions: list[_Region], *, mover: str) -> None:
        for region in open_regions:
            if region.violated:
                continue
            if mover == "both":
                continue
            if mover == "right":
                if region.post:
                    self._violate(
                        region,
                        event,
                        "lock acquired after a left-mover — the block can "
                        "be interleaved between the two critical sections",
                    )
                continue
            if mover == "left":
                region.post = True
                continue
            # non-mover: the commit point.
            if region.post:
                self._violate(
                    region,
                    event,
                    "second commit point (unprotected access after the "
                    "block already committed)",
                )
            else:
                region.post = True

    def _violate(self, region: _Region, event: Event, why: str) -> None:
        region.violated = True
        name = region.stack[0].function if region.stack else "<region>"
        self.report.add(
            Warning_(
                kind=ATOMICITY_VIOLATION,
                message=f"Atomicity violation in {name}",
                tid=event.tid,
                step=event.step,
                stack=event.stack,
                addr=getattr(event, "addr", None),
                details={
                    "Reduction": why,
                    "Declared at": str(region.stack[0]) if region.stack else "?",
                },
            )
        )
