"""Triage of detector warnings against the ground-truth oracle.

The paper's evaluation hinges on *classifying* reported locations: the
Figure 5 bar chart splits every test case's warnings into false
positives from the hardware-lock misinterpretation, false positives from
destructor writes, and "correctly reported data races".  The authors did
this by hand over hundreds of warnings (§4: "After inspecting individual
warnings...").  Our guest code registers its intent in a
:class:`repro.oracle.GroundTruth` as it runs, and this module performs
the join.

Classification rules, in order:

1. If the oracle has a claim covering the warning's address, that claim
   wins (the common case — string refcounts, object headers, injected
   bugs and queue-transferred buffers are all claimed by the code that
   creates them).
2. Otherwise, a warning whose innermost frame is a destructor
   (``~Class``-style name) is attributed to the destructor category —
   the same stack-shape heuristic a human triager uses.
3. Otherwise it is UNKNOWN, which experiments treat as a failure of the
   experiment's coverage, not of the detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detectors.report import Report, Warning_
from repro.oracle import GroundTruth, WarningCategory

__all__ = ["ClassifiedWarning", "ClassifiedReport", "classify_report"]


@dataclass(slots=True)
class ClassifiedWarning:
    """A warning joined with its oracle verdict."""

    warning: Warning_
    category: WarningCategory
    note: str = ""
    bug_id: str = ""


@dataclass(slots=True)
class ClassifiedReport:
    """Per-category decomposition of one detector report.

    ``counts`` uses the Figure 6 metric (distinct locations).
    """

    items: list[ClassifiedWarning] = field(default_factory=list)

    @property
    def counts(self) -> dict[WarningCategory, int]:
        out: dict[WarningCategory, int] = {}
        for item in self.items:
            out[item.category] = out.get(item.category, 0) + 1
        return out

    def count(self, category: WarningCategory) -> int:
        return self.counts.get(category, 0)

    @property
    def total(self) -> int:
        return len(self.items)

    @property
    def false_positives(self) -> int:
        return sum(1 for i in self.items if i.category.is_false_positive)

    @property
    def true_races(self) -> int:
        return self.count(WarningCategory.TRUE_RACE)

    def of(self, category: WarningCategory) -> list[ClassifiedWarning]:
        return [i for i in self.items if i.category == category]

    def bug_ids_found(self) -> set[str]:
        """Injected bug ids with at least one reported location (E9)."""
        return {i.bug_id for i in self.items if i.bug_id}

    def format_summary(self) -> str:
        lines = [f"{self.total} locations:"]
        for category, n in sorted(self.counts.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {category.value:24s} {n}")
        return "\n".join(lines)


def classify_report(report: Report, truth: GroundTruth) -> ClassifiedReport:
    """Join every warning in ``report`` against the oracle."""
    out = ClassifiedReport()
    for warning in report:
        out.items.append(_classify_one(warning, truth))
    return out


def _classify_one(warning: Warning_, truth: GroundTruth) -> ClassifiedWarning:
    if warning.addr is not None:
        entry = truth.entry_for(warning.addr)
        if entry is not None:
            return ClassifiedWarning(
                warning, entry.category, entry.note, entry.bug_id
            )
    site = warning.site
    if site is not None and _in_destructor(warning):
        return ClassifiedWarning(
            warning,
            WarningCategory.FP_DESTRUCTOR,
            "stack-shape heuristic: access inside a destructor frame",
        )
    return ClassifiedWarning(warning, WarningCategory.UNKNOWN)


def _in_destructor(warning: Warning_) -> bool:
    """C++ destructor frames render as ``Class::~Class`` or ``~Class``."""
    return any("~" in frame.function for frame in warning.stack[:2])
