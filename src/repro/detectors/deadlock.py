"""Deadlock detection: lock-order graphs and lock-timeout watchdogs.

The paper uses two mechanisms (§3.3):

* "the race-checker also does dead-lock detection" — Helgrind watches
  the *lock acquisition order*: if thread 1 ever takes B while holding A
  and thread 2 takes A while holding B, the program can deadlock under
  an unlucky schedule even if this run survived.
  :class:`LockGraphDetector` implements that: a directed graph with an
  edge ``a → b`` whenever some thread acquired ``b`` while holding
  ``a``; a cycle is a *potential deadlock* and is reported once per
  distinct cycle.

* "Deadlocks on Mutex locks are detected by the application using a
  timeout while trying to acquire a lock inside the lock-function" —
  the application-level scheme the proxy used before adopting the tool
  (and whose bookkeeping contained the paper's very first reported data
  race, §4.1!).  That application-side mechanism lives in
  :mod:`repro.sip.bugs`; this module is the tool side.

Actual wedged states (no runnable thread) are detected by the VM itself
and raised as :class:`repro.errors.DeadlockError` — see
:meth:`repro.runtime.vm.VM._scheduler_loop`.
"""

from __future__ import annotations

from repro.detectors.dispatch import EventDispatcher, handles
from repro.detectors.report import Report, Warning_, WarningKind
from repro.runtime.events import LockAcquire, LockRelease

__all__ = ["LockGraphDetector", "canonical_cycle", "cycle_gate", "find_cycle"]


def canonical_cycle(cycle: list[int]) -> tuple[int, ...]:
    """Canonical rotation: smallest lock id first, so A→B→A and B→A→B
    deduplicate to the same key."""
    pivot = cycle.index(min(cycle))
    return tuple(cycle[pivot:] + cycle[:pivot])


def find_cycle(
    edges: dict[int, dict[int, object]], start: int, target: int
) -> list[int] | None:
    """DFS over ``edges``: is ``target`` reachable from ``start``?

    If so, an edge ``target → start`` just closed a cycle; the returned
    path is the cycle's node list (``start`` … ``target``).  Shared by
    the on-the-fly lock-order detector and the predictive tier's
    cross-thread lock graph (:mod:`repro.detectors.predict`).
    """
    stack = [(start, [start])]
    seen = {start}
    while stack:
        node, path = stack.pop()
        if node == target:
            return path
        for succ in edges.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, path + [succ]))
    return None


def cycle_gate(
    edges: dict[int, dict[int, list]], canon: tuple[int, ...]
) -> frozenset[int] | None:
    """The gate-lock test over a canonical cycle.

    Edge witnesses store their accumulated guard set at index 2 (the
    intersection of everything else held across every traversal).  The
    return value is the non-empty set of locks guarding *every* edge of
    the cycle — the gates that serialise the acquisition paths and make
    the inversion benign — or ``None`` when no such lock exists (or an
    edge is unwitnessed, in which case we must not excuse the cycle).
    """
    ring = canon + (canon[0],)
    common: frozenset[int] | None = None
    for prior, then in zip(ring, ring[1:]):
        witness = edges.get(prior, {}).get(then)
        if witness is None:
            return None  # incomplete information: do not excuse
        guards = witness[2]
        common = guards if common is None else (common & guards)
        if not common:
            return None
    return common


class LockGraphDetector(EventDispatcher):
    """Lock-order (lock hierarchy) cycle detector.

    Edges carry the stack of the acquisition that created them so that
    reports show *where* each direction of the inversion happens.

    Subscribes only to lock events (dispatch-table ABI), so running it
    alongside a race detector adds zero cost on the memory-access
    fire-hose.
    """

    #: ``detector`` label value in the telemetry layer.
    telemetry_name = "deadlock"

    def __init__(self, *, gate_lock_filter: bool = True) -> None:
        self.report = Report()
        #: Gate-lock refinement: an order inversion in which every edge
        #: was acquired while some common *third* lock was held cannot
        #: deadlock — the gate serialises the two acquisition paths.
        #: Helgrind and its descendants apply the same filter to avoid
        #: flooding users with benign hierarchy violations.
        self.gate_lock_filter = gate_lock_filter
        self._held: dict[int, list[int]] = {}
        #: adjacency: lock -> {later-acquired lock: witness info}; the
        #: witness is (tid, stack, guards) where ``guards`` accumulates
        #: the intersection of everything else held across *every*
        #: acquisition that exercised this edge.
        self._edges: dict[int, dict[int, list]] = {}
        self._reported_cycles: set[tuple[int, ...]] = set()
        #: Cycles observed but excused by a gate lock (statistics).
        self.gated_cycles = 0

    # ------------------------------------------------------------------

    @handles(LockRelease)
    def _on_release(self, event: LockRelease, vm=None) -> None:
        held = self._held.get(event.tid)
        if held is not None and event.lock_id in held:
            held.remove(event.lock_id)

    @handles(LockAcquire)
    def _on_acquire(self, event: LockAcquire, vm=None) -> None:
        held = self._held.setdefault(event.tid, [])
        for prior in held:
            if prior == event.lock_id:
                continue
            guards = frozenset(held) - {prior, event.lock_id}
            edges = self._edges.setdefault(prior, {})
            witness = edges.get(event.lock_id)
            if witness is None:
                edges[event.lock_id] = [event.tid, event.stack, guards]
                cycle = self._find_cycle(event.lock_id, prior)
                if cycle is not None:
                    self._consider_cycle(cycle, event)
            else:
                # Another exercise of a known edge: only locks held on
                # *every* traversal can serve as the gate.
                witness[2] = witness[2] & guards
        held.append(event.lock_id)

    # ------------------------------------------------------------------

    def _find_cycle(self, start: int, target: int) -> list[int] | None:
        return find_cycle(self._edges, start, target)

    def _consider_cycle(self, cycle: list[int], event: LockAcquire) -> None:
        canon = canonical_cycle(cycle)
        if canon in self._reported_cycles:
            return
        if self.gate_lock_filter and self._gated(canon):
            self.gated_cycles += 1
            return
        self._reported_cycles.add(canon)
        names = " -> ".join(f"lock{l}" for l in canon + (canon[0],))
        details = {
            "Cycle": names,
            "Note": "threads acquiring these locks in both orders "
            "can deadlock under an unlucky schedule",
        }
        # Witness each edge of the cycle: which thread acquired the
        # successor while holding the predecessor, and where.
        ring = canon + (canon[0],)
        for prior, then in zip(ring, ring[1:]):
            witness = self._edges.get(prior, {}).get(then)
            if witness is not None:
                tid, stack, _guards = witness
                where = str(stack[0]) if stack else "<no symbols>"
                details[f"Edge lock{prior} -> lock{then}"] = (
                    f"thread {tid} at {where}"
                )
        self.report.add(
            Warning_(
                kind=WarningKind.LOCK_ORDER,
                message=f"Lock order inversion: cycle {names}",
                tid=event.tid,
                step=event.step,
                stack=event.stack,
                addr=None,
                details=details,
            )
        )

    def _gated(self, canon: tuple[int, ...]) -> bool:
        """True if one lock guarded every edge of the cycle."""
        return cycle_gate(self._edges, canon) is not None

    # ------------------------------------------------------------------

    @property
    def cycles_found(self) -> int:
        return len(self._reported_cycles)

    def telemetry_summary(self) -> dict[str, float]:
        """Size gauges for ``repro_detector_state`` (telemetry layer)."""
        return {
            "graph_nodes": len(self._edges),
            "graph_edges": sum(len(succ) for succ in self._edges.values()),
            "cycles_reported": len(self._reported_cycles),
            "cycles_gated": self.gated_cycles,
        }

    def held_by(self, tid: int) -> list[int]:
        """Current acquisition stack of ``tid`` (for tests)."""
        return list(self._held.get(tid, ()))
