"""Per-event-type handler dispatch — the detectors' fast-path ABI.

The original detector ABI is a single ``handle(event, vm)`` method that
every event is pushed through; each detector then runs an ``isinstance``
cascade (~15 branches in :class:`~repro.detectors.helgrind
.HelgrindDetector`) to find the code that cares.  With millions of
events per run (§4.5 measures a 20-30× slowdown under analysis) those
branches *are* the hot path.

The dispatch-table ABI replaces the cascade with registration:

* A detector subclasses :class:`EventDispatcher` and marks its handler
  methods with :func:`handles`::

      class MyDetector(EventDispatcher):
          @handles(MemoryAccess)
          def _on_access(self, event, vm): ...

          @handles(LockAcquire, LockRelease)
          def _on_lock(self, event, vm): ...

* The VM asks each registered hook ``handler_for(event_type)`` the
  first time it emits an event of that type and caches the resulting
  tuple of bound methods (:meth:`repro.runtime.vm.VM._build_routes`).
  A ``None`` answer means *this detector never wants this event type*
  — the VM skips it entirely, so e.g. a pure lock-order detector costs
  nothing on the memory-access fire-hose.

* ``handle(event, vm)`` is still provided (routed through the same
  table) so trace replay (:func:`repro.runtime.trace.replay`), tests
  and composition keep working unchanged; hooks that only define
  ``handle`` (e.g. :class:`~repro.runtime.trace.TraceRecorder`) are
  subscribed to every event type, preserving the original ABI.

Event types are *final* (every event is a direct, ``frozen`` subclass
of :class:`~repro.runtime.events.Event`), so exact-type routing on
``type(event)`` is equivalent to the ``isinstance`` chains it replaces.

Detectors whose interest depends on run-time configuration (e.g.
Helgrind's ``queue_hb`` switch) or that wrap inner engines (hybrid,
RaceTrack, Atomizer) override :meth:`EventDispatcher.handler_for`;
:func:`combine_handlers` builds the fan-out closures they need.
"""

from __future__ import annotations

from typing import Callable, ClassVar

__all__ = ["handles", "EventDispatcher", "combine_handlers"]

#: Signature of a bound event handler: ``fn(event, vm) -> None``.
Handler = Callable[[object, object], None]

#: Distinct-from-None sentinel for the per-instance ``handle`` cache
#: ("not resolved yet" vs "resolved to not-interested").
_UNRESOLVED = object()


def handles(*event_types: type):
    """Mark a method as the handler for the given event types.

    Stacking and multi-type registration are both supported; the
    containing class must inherit :class:`EventDispatcher` for the
    registration to take effect.
    """

    def decorate(fn):
        registered = getattr(fn, "_handles_event_types", ())
        fn._handles_event_types = registered + tuple(event_types)
        return fn

    return decorate


def combine_handlers(*handlers: Handler | None) -> Handler | None:
    """Compose handlers into one ``fn(event, vm)`` (``None``s dropped).

    Used by composite detectors to chain their own bookkeeping with an
    inner engine's handler for the same event type.  Returns ``None``
    when nothing is interested (the VM then skips the type), the single
    handler unwrapped when only one is (no indirection on the hot
    path), or a fan-out closure otherwise.
    """
    fns = tuple(fn for fn in handlers if fn is not None)
    if not fns:
        return None
    if len(fns) == 1:
        return fns[0]

    def fanout(event, vm, _fns=fns) -> None:
        for fn in _fns:
            fn(event, vm)

    return fanout


class EventDispatcher:
    """Mixin implementing the dispatch-table detector ABI.

    Subclasses register handlers with :func:`handles`; the mixin derives
    a per-*class* ``{event type: method name}`` table (inherited
    handlers included, subclass overrides win) and exposes it through
    :meth:`handler_for` / :meth:`handle`.
    """

    #: event type -> method name, computed per class at definition time.
    _DISPATCH_NAMES: ClassVar[dict[type, str]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        table: dict[type, str] = {}
        for base in reversed(cls.__mro__):
            for name, member in vars(base).items():
                for etype in getattr(member, "_handles_event_types", ()):
                    table[etype] = name
        cls._DISPATCH_NAMES = table

    def handler_for(self, event_type: type) -> Handler | None:
        """The bound handler for ``event_type`` (``None`` = not interested).

        The VM calls this once per event type per run and caches the
        answer, so overriding it (for config-dependent subscriptions or
        inner-engine composition) adds no per-event cost.
        """
        name = self._DISPATCH_NAMES.get(event_type)
        if name is None:
            return None
        return getattr(self, name)

    def handle(self, event, vm) -> None:
        """Legacy single-entry ABI, routed through the dispatch table.

        Kept for trace replay, tests, and feeding detectors by hand;
        the VM itself routes via :meth:`handler_for`.  Resolution is
        cached per instance so post-mortem replay pays one dict hit per
        event, the same as the VM's own route cache — subscriptions are
        configuration-static, so caching is safe.
        """
        try:
            cache = self._handle_routes
        except AttributeError:
            cache = self._handle_routes = {}
        etype = event.__class__
        fn = cache.get(etype, _UNRESOLVED)
        if fn is _UNRESOLVED:
            fn = self.handler_for(etype)
            cache[etype] = fn
        if fn is not None:
            fn(event, vm)

    def route_cache_info(self) -> dict[str, int]:
        """Legacy-ABI route cache introspection (telemetry/tests).

        ``resolved`` counts event types that went through
        :meth:`handler_for` via :meth:`handle`; ``subscribed`` counts
        how many of those resolved to an actual handler.
        """
        cache = getattr(self, "_handle_routes", {})
        return {
            "resolved": len(cache),
            "subscribed": sum(1 for fn in cache.values() if fn is not None),
        }
