"""The DJIT happens-before race detector (the paper's §2.2 baseline).

DJIT [Itzkovitz, Schuster & Zeev-Ben-Mordehai, 1999] checks Lamport's
happens-before relation between accesses using per-thread vector clocks
("vector time frames") and per-location access logging.  Compared with
the lock-set approach:

* it reports only *apparent* races — pairs of accesses genuinely
  unordered in the observed execution — so it has (near) zero false
  positives on the Figure 11 thread-pool pattern, but
* it "detects data races on a subset of shared locations that are
  reported by the lock-set approach and misses some real data races"
  (§2.2): a racy location whose accesses *happened* to be ordered by an
  unrelated synchronisation in this run stays silent.

Experiment E11 demonstrates exactly this containment against
:class:`~repro.detectors.helgrind.HelgrindDetector`.

Synchronisation vocabulary: locks (release publishes, acquire absorbs),
thread create/join, queue put/get, semaphore post/wait, barriers, and —
faithful to the hybrid detector the paper cites [12], together with its
caveat — condition-variable signal/wait (switchable, default on; §2.2
notes the relation "is not strong enough to impose the assumed order",
which is precisely the kind of missed-race this baseline exhibits).
Like the original DJIT, only the *first* apparent race per location is
reported.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.detectors.dispatch import EventDispatcher, handles
from repro.detectors.report import Report, Warning_, WarningKind
from repro.detectors.vectorclock import VectorClock
from repro.runtime.events import (
    BarrierWait,
    ClientRequest,
    CondSignal,
    CondWait,
    LockAcquire,
    LockRelease,
    MemAlloc,
    MemFree,
    MemoryAccess,
    QueueGet,
    QueuePut,
    SemPost,
    SemWait,
    ThreadCreate,
    ThreadFinish,
    ThreadJoin,
)
from repro._util.intervals import IntervalSet
from repro.detectors.lockset import transition_cache_default

__all__ = ["DjitDetector"]


@dataclass(slots=True)
class _LocationLog:
    """Per-word access log: last write epoch + reads since that write."""

    write_tid: int = -1
    write_clk: int = -1
    write_locked: bool = False
    write_stack: tuple = ()
    #: tid -> (clock, bus_locked) of that thread's latest read since the
    #: last write.
    reads: dict[int, tuple[int, bool]] = field(default_factory=dict)
    reported: bool = False


class DjitDetector(EventDispatcher):
    """Vector-clock happens-before detector (register on a VM or replay).

    Uses the dispatch-table ABI (:mod:`repro.detectors.dispatch`): the
    VM routes each event type straight to its handler, and condvar
    events are not subscribed at all when ``cond_hb`` is off.
    """

    #: ``detector`` label value in the telemetry layer.
    telemetry_name = "djit"

    def __init__(
        self,
        *,
        cond_hb: bool = True,
        atomic_aware: bool = True,
        elide: bool | None = None,
    ) -> None:
        self.report = Report()
        self.cond_hb = cond_hb
        #: Modern (C11/TSan) semantics: two bus-locked accesses never
        #: race with each other (an atomic counter is synchronisation,
        #: not data).  The original DJIT predates this notion; set False
        #: for the classic behaviour, where unordered atomic increments
        #: are reported like any conflicting accesses.
        self.atomic_aware = atomic_aware
        self._clocks: dict[int, VectorClock] = {}
        self._lock_vc: dict[int, VectorClock] = {}
        self._queue_vc: dict[tuple[int, int], VectorClock] = {}
        #: FIFO of post clocks per semaphore (deque: O(1) ``popleft``).
        self._sem_vc: dict[int, deque[VectorClock]] = {}
        self._cond_vc: dict[int, VectorClock] = {}
        #: (barrier_id, generation) -> join of all arrival clocks.
        self._barrier_vc: dict[tuple[int, int], VectorClock] = {}
        self._final_vc: dict[int, VectorClock] = {}
        self._log: dict[int, _LocationLog] = {}
        self._benign = IntervalSet()
        #: Same-access elision (Helgrind-style): the one access the
        #: filter would absorb, ``(tid, addr, is_write, bus_locked)``.
        #: An identical immediate repeat re-derives the same epoch log
        #: entry from the same vector clock, so it is a no-op — but only
        #: while the filter always holds the *immediately preceding*
        #: log-touching access (every sync/lifecycle handler clears it;
        #: every non-warning access re-arms it with itself).  ``elide``
        #: follows the process-wide transition-cache default, so the
        #: ``--no-transition-cache`` escape hatch restores the fully
        #: vanilla per-event path here too.
        self._last_access: tuple | None = None
        self._elided = 0
        self._elide_ok = (
            elide if elide is not None else transition_cache_default()
        )

    # ------------------------------------------------------------------

    def _clock(self, tid: int) -> VectorClock:
        vc = self._clocks.get(tid)
        if vc is None:
            vc = VectorClock({tid: 1})
            self._clocks[tid] = vc
        return vc

    def _release_into(self, store: dict, key, tid: int) -> None:
        """Publish ``tid``'s clock into ``store[key]`` and tick."""
        vc = self._clock(tid)
        slot = store.get(key)
        if slot is None:
            store[key] = vc.copy()
        else:
            slot.join(vc)
        vc.tick(tid)

    def _acquire_from(self, store: dict, key, tid: int) -> None:
        slot = store.get(key)
        if slot is not None:
            self._clock(tid).join(slot)

    # ------------------------------------------------------------------

    def handler_for(self, event_type):
        """Dispatch-table ABI; condvar events gated on ``cond_hb``."""
        if event_type in (CondSignal, CondWait) and not self.cond_hb:
            return None
        return super().handler_for(event_type)

    @handles(LockRelease)
    def _on_lock_release(self, event: LockRelease, vm) -> None:
        self._last_access = None
        self._release_into(self._lock_vc, event.lock_id, event.tid)

    @handles(LockAcquire)
    def _on_lock_acquire(self, event: LockAcquire, vm) -> None:
        self._last_access = None
        self._acquire_from(self._lock_vc, event.lock_id, event.tid)

    @handles(ThreadCreate)
    def _on_thread_create(self, event: ThreadCreate, vm) -> None:
        self._last_access = None
        parent = self._clock(event.tid)
        child = self._clock(event.child_tid)
        child.join(parent)
        parent.tick(event.tid)

    @handles(ThreadFinish)
    def _on_thread_finish(self, event: ThreadFinish, vm) -> None:
        self._last_access = None
        self._final_vc[event.tid] = self._clock(event.tid).copy()

    @handles(ThreadJoin)
    def _on_thread_join(self, event: ThreadJoin, vm) -> None:
        self._last_access = None
        final = self._final_vc.get(event.joined_tid)
        if final is not None:
            self._clock(event.tid).join(final)

    @handles(QueuePut)
    def _on_queue_put(self, event: QueuePut, vm) -> None:
        self._last_access = None
        self._release_into(self._queue_vc, (event.queue_id, event.msg_id), event.tid)

    @handles(QueueGet)
    def _on_queue_get(self, event: QueueGet, vm) -> None:
        self._last_access = None
        slot = self._queue_vc.pop((event.queue_id, event.msg_id), None)
        if slot is not None:
            self._clock(event.tid).join(slot)

    @handles(SemPost)
    def _on_sem_post(self, event: SemPost, vm) -> None:
        self._last_access = None
        vc = self._clock(event.tid)
        tokens = self._sem_vc.get(event.sem_id)
        if tokens is None:
            tokens = deque()
            self._sem_vc[event.sem_id] = tokens
        tokens.append(vc.copy())
        vc.tick(event.tid)

    @handles(SemWait)
    def _on_sem_wait(self, event: SemWait, vm) -> None:
        self._last_access = None
        tokens = self._sem_vc.get(event.sem_id)
        if tokens:
            self._clock(event.tid).join(tokens.popleft())

    @handles(CondSignal)
    def _on_cond_signal(self, event: CondSignal, vm) -> None:
        self._last_access = None
        self._release_into(self._cond_vc, event.cond_id, event.tid)

    @handles(CondWait)
    def _on_cond_wait(self, event: CondWait, vm) -> None:
        self._last_access = None
        if event.phase == "leave":
            self._acquire_from(self._cond_vc, event.cond_id, event.tid)

    @handles(MemAlloc)
    def _on_alloc(self, event: MemAlloc, vm) -> None:
        self._last_access = None
        # Fresh allocation: prior accesses at these addresses (there
        # are none at VM level, but replayed traces may recycle) are
        # unrelated to the new object.
        for a in range(event.addr, event.addr + event.size):
            self._log.pop(a, None)

    @handles(MemFree)
    def _on_free(self, event: MemFree, vm) -> None:
        self._last_access = None
        for a in range(event.addr, event.addr + event.size):
            self._log.pop(a, None)

    @handles(ClientRequest)
    def _on_client_request(self, event: ClientRequest, vm=None) -> None:
        self._last_access = None
        if event.request == "benign_race":
            self._benign.add(event.addr, event.addr + event.size)
        elif event.request == "hg_clean":
            for a in range(event.addr, event.addr + event.size):
                self._log.pop(a, None)
        # hg_destruct is a lock-set concept; DJIT needs no help here.

    @handles(BarrierWait)
    def _on_barrier(self, event: BarrierWait, vm=None) -> None:
        """Every arrival of a generation happens-before every departure.

        Arrivals publish their clock into the generation's slot and
        tick; departures absorb the fully-joined slot (all parties have
        arrived by the time anyone leaves, so the slot is complete).
        """
        self._last_access = None
        key = (event.barrier_id, event.generation)
        if event.phase == "arrive":
            self._release_into(self._barrier_vc, key, event.tid)
        else:
            self._acquire_from(self._barrier_vc, key, event.tid)

    # ------------------------------------------------------------------

    @handles(MemoryAccess)
    def _on_access(self, event: MemoryAccess, vm) -> None:
        last = self._last_access
        if (
            last is not None
            and last[1] == event.addr
            and last[0] == event.tid
            and last[2] == event.is_write
            and last[3] == event.bus_locked
        ):
            self._elided += 1
            return
        if event.addr in self._benign:
            return
        log = self._log.get(event.addr)
        if log is None:
            log = _LocationLog()
            self._log[event.addr] = log
        if log.reported:
            return
        vc = self._clock(event.tid)
        tid = event.tid
        locked = event.bus_locked

        def pair_races(other_locked: bool) -> bool:
            """Atomic-atomic pairs never race under atomic_aware."""
            return not (self.atomic_aware and locked and other_locked)

        def racy_with_write() -> bool:
            return (
                log.write_tid >= 0
                and log.write_tid != tid
                and pair_races(log.write_locked)
                and not vc.covers(log.write_tid, log.write_clk)
            )

        if event.is_write:
            race = racy_with_write() or any(
                rt != tid and pair_races(rl) and not vc.covers(rt, rc)
                for rt, (rc, rl) in log.reads.items()
            )
            if race:
                log.reported = True
                self._warn(event, vm)
                self._last_access = None
                return
            log.write_tid = tid
            log.write_clk = vc.get(tid)
            log.write_locked = locked
            log.write_stack = event.stack
            log.reads.clear()
        else:
            if racy_with_write():
                log.reported = True
                self._warn(event, vm)
                self._last_access = None
                return
            log.reads[tid] = (vc.get(tid), locked)
        if self._elide_ok:
            self._last_access = (tid, event.addr, event.is_write, locked)

    def telemetry_summary(self) -> dict[str, float]:
        """Size gauges for ``repro_detector_state`` (telemetry layer)."""
        return {
            "thread_clocks": len(self._clocks),
            "lock_clocks": len(self._lock_vc),
            "logged_words": len(self._log),
            "logged_reads": sum(len(log.reads) for log in self._log.values()),
        }

    def _warn(self, event: MemoryAccess, vm) -> None:
        verb = "writing" if event.is_write else "reading"
        details = {"Relation": "accesses not ordered by happens-before"}
        if vm is not None:
            block = vm.memory.find_block(event.addr)
            if block is not None:
                details["Address"] = block.describe(event.addr)
        self.report.add(
            Warning_(
                kind=WarningKind.DATA_RACE,
                message=f"Apparent data race {verb} variable",
                tid=event.tid,
                step=event.step,
                stack=event.stack,
                addr=event.addr,
                details=details,
            )
        )
