"""The Helgrind-style data-race detector with the paper's improvements.

:class:`HelgrindDetector` is the complete on-the-fly checker: the Eraser
lock-set machine (:mod:`repro.detectors.lockset`), thread segments
(:mod:`repro.detectors.segments`), and — selected by
:class:`HelgrindConfig` — the paper's two contributions plus its
future-work extension:

**Hardware bus-lock model (HWLC, §3.1 / §4.2.2).**
The x86 ``LOCK`` prefix is modelled as a virtual lock injected into the
effective lock-set of individual accesses:

* ``BusLockModel.MUTEX`` — the *original*, incorrect Helgrind model: the
  virtual lock is held only during ``LOCK``-prefixed accesses.  Plain
  reads of an atomically-updated word therefore drain its candidate set
  and produce the Figure 8/9 false positive.
* ``BusLockModel.RWLOCK`` — the paper's correction: "a read-write lock
  being held for reading in every read access and locked for writing,
  when the lock prefix is used".  Every plain read holds the bus lock in
  read mode; ``LOCK``-prefixed accesses hold it in write mode; plain
  writes do not hold it at all.  Atomic counters stop warning, while
  genuinely unprotected writes still do (their write-mode set is empty).

**Destructor annotation (DR, §3.1 / §4.2.1).**
When ``honor_destruct`` is set, a ``VALGRIND_HG_DESTRUCT`` client request
(emitted by instrumented ``delete`` sites, Figure 4) moves the object's
words back to EXCLUSIVE(current segment), so the header writes performed
by the chain of base-class destructors no longer warn — while any touch
by *another* thread during destruction is still caught.

**Higher-level synchronisation (extended config, §4.4 / §5).**
``queue_hb``/``cond_hb`` teach the segment graph about message-queue
put/get, semaphore post/wait and condvar signal/wait pairs, closing the
Figure 11 thread-pool false-positive class the paper leaves as future
work.  (``cond_hb`` is off even in the extended config's documentation
examples unless asked for: §2.2 explains why the signal/wait relation is
not generally sound to treat as ordering.)
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, replace

from repro.detectors.dispatch import EventDispatcher, handles
from repro.detectors.lockset import (
    EMPTY_ID,
    LOCKSETS,
    LocksetMachine,
    LocksetOutcome,
    WordState,
    transition_cache_default,
)
from repro.detectors.lockset import (  # the batched pump inlines the machine
    _EXCLUSIVE,
    _KEEP_OWNER,
    _LOW,
    _LS_BITS,
    _LS_MASK,
    _LS_SHIFT,
    _OWNER_SHIFT,
    _PAGE_BITS,
    _PAGE_MASK,
    _RACY,
    _SHARED,
    _SHARED_MOD,
    _ST_MASK,
    _STATE_OF_CODE,
)
from repro.detectors.report import Report, Warning_, WarningKind
from repro.detectors.segments import SegmentGraph
from repro._util.intervals import IntervalSet
from repro.runtime.events import (
    AccessKind,
    ClientRequest,
    CondSignal,
    CondWait,
    LockAcquire,
    LockMode,
    LockRelease,
    MemAlloc,
    MemFree,
    MemoryAccess,
    QueueGet,
    QueuePut,
    SemPost,
    SemWait,
    ThreadCreate,
    ThreadFinish,
    ThreadJoin,
)

__all__ = ["BusLockModel", "HelgrindConfig", "HelgrindDetector", "BUS_LOCK_ID"]

#: Reserved lock id for the virtual hardware bus lock.
BUS_LOCK_ID = -1


class BusLockModel(enum.Enum):
    """How the ``LOCK`` prefix is interpreted (the HWLC switch)."""

    #: Original Helgrind: a mutex held only during LOCKed accesses.
    MUTEX = "mutex"
    #: The paper's correction: an implicit read-write lock.
    RWLOCK = "rwlock"


@dataclass(frozen=True, slots=True)
class HelgrindConfig:
    """Detector configuration — one row selector of the paper's Figure 6.

    The three evaluation configurations::

        HelgrindConfig.original()   # as-shipped Helgrind
        HelgrindConfig.hwlc()       # + corrected hardware bus lock
        HelgrindConfig.hwlc_dr()    # + destructor annotation

    plus the ablation and extension configurations used by E10/E5.
    """

    name: str = "original"
    bus_lock_model: BusLockModel = BusLockModel.MUTEX
    honor_destruct: bool = False
    #: Figure 1 state machine (ablation D1).
    use_states: bool = True
    #: VisualThreads segment ownership transfer (ablation D2).
    segment_transfer: bool = True
    #: Treat queue put/get and sem post/wait as segment edges (§5).
    queue_hb: bool = False
    #: Treat condvar signal/wait as segment edges (unsound in general).
    cond_hb: bool = False
    #: One report per racy word (Eraser's literal rule) vs Helgrind's
    #: keep-reporting behaviour, where the report layer deduplicates by
    #: call stack and one racy word can surface at many locations.
    once_per_word: bool = False
    #: Record each word's previous access so warnings can show both
    #: sides of the conflict (later Helgrind's --history-level=full).
    #: Costs one stack reference per shadow word; off by default.
    access_history: bool = False
    #: Memoized shadow-transition cache + redundant-access elision +
    #: batched block replay (docs/PERFORMANCE.md layer 6).  ``None`` =
    #: follow the process default (the ``--no-transition-cache`` escape
    #: hatch); ``True``/``False`` force it for this detector.  Reports
    #: are byte-identical either way — the flag exists to *prove* that.
    transition_cache: bool | None = None

    # -- the paper's three evaluation configurations -------------------

    @classmethod
    def original(cls) -> "HelgrindConfig":
        """Helgrind as shipped: mutex bus lock, no annotations."""
        return cls(name="original")

    @classmethod
    def hwlc(cls) -> "HelgrindConfig":
        """HWLC: corrected (rw-lock) hardware bus-lock semantics."""
        return cls(name="hwlc", bus_lock_model=BusLockModel.RWLOCK)

    @classmethod
    def hwlc_dr(cls) -> "HelgrindConfig":
        """HWLC+DR: corrected bus lock + destructor annotations honoured."""
        return cls(
            name="hwlc+dr",
            bus_lock_model=BusLockModel.RWLOCK,
            honor_destruct=True,
        )

    # -- ablations & extensions ----------------------------------------

    @classmethod
    def raw_eraser(cls) -> "HelgrindConfig":
        """§2.3.2's basic algorithm: no states, no segments."""
        return cls(name="raw-eraser", use_states=False, segment_transfer=False)

    @classmethod
    def eraser_states(cls) -> "HelgrindConfig":
        """Figure 1 states but per-thread ownership (no segments)."""
        return cls(name="eraser-states", segment_transfer=False)

    @classmethod
    def extended(cls) -> "HelgrindConfig":
        """HWLC+DR plus queue/semaphore happens-before (future work, §5)."""
        return cls(
            name="extended",
            bus_lock_model=BusLockModel.RWLOCK,
            honor_destruct=True,
            queue_hb=True,
        )

    def with_(self, **changes) -> "HelgrindConfig":
        """A modified copy (convenience for experiments)."""
        return replace(self, **changes)


class _HeldLocks:
    """Per-thread lock holdings with precomputed effective set variants.

    The canonical representation is four interned
    :data:`~repro.detectors.lockset.LOCKSETS` ids (``*_id``) that the
    hot path hands straight to the state machine — comparing and
    intersecting small ints instead of sets (Eraser's own optimisation).
    Lock acquire/release walks the ids forward through the table's
    memoized :meth:`~repro.detectors.lockset.LocksetTable.with_lock` /
    ``without_lock`` operations (steady state: a few dict hits, no set
    is ever built), so the per *memory access* path (hot) is
    allocation-free and the per *lock* path (rare) nearly so.  The
    frozenset views (``any_``, ``write``, ...) materialise on demand
    for report rendering and off-path callers.
    """

    __slots__ = (
        "modes",
        "any_id",
        "write_id",
        "any_bus_id",
        "write_bus_id",
    )

    def __init__(self) -> None:
        self.modes: dict[int, LockMode] = {}
        self.any_id = EMPTY_ID
        self.write_id = EMPTY_ID
        bus_only = LOCKSETS.with_lock(EMPTY_ID, BUS_LOCK_ID)
        self.any_bus_id = bus_only
        self.write_bus_id = bus_only

    def acquire(self, lock_id: int, mode: LockMode) -> None:
        prev = self.modes.get(lock_id)
        self.modes[lock_id] = mode
        table = LOCKSETS
        self.any_id = table.with_lock(self.any_id, lock_id)
        if mode is LockMode.EXCLUSIVE or mode is LockMode.WRITE:
            self.write_id = table.with_lock(self.write_id, lock_id)
        elif prev is not None:
            # Re-acquired in a weaker mode: drop any write-set membership.
            self.write_id = table.without_lock(self.write_id, lock_id)
        self.any_bus_id = table.with_lock(self.any_id, BUS_LOCK_ID)
        self.write_bus_id = table.with_lock(self.write_id, BUS_LOCK_ID)

    def release(self, lock_id: int) -> None:
        self.modes.pop(lock_id, None)
        table = LOCKSETS
        self.any_id = table.without_lock(self.any_id, lock_id)
        self.write_id = table.without_lock(self.write_id, lock_id)
        self.any_bus_id = table.with_lock(self.any_id, BUS_LOCK_ID)
        self.write_bus_id = table.with_lock(self.write_id, BUS_LOCK_ID)

    def __getstate__(self) -> dict:
        """The ``*_id`` fields index the process-global
        :data:`~repro.detectors.lockset.LOCKSETS` table; pickle the
        member sets themselves and re-intern on restore so a checkpoint
        survives a server restart."""
        return {
            "modes": self.modes,
            "any": LOCKSETS.members(self.any_id),
            "write": LOCKSETS.members(self.write_id),
        }

    def __setstate__(self, state: dict) -> None:
        self.modes = state["modes"]
        self.any_id = LOCKSETS.id_of(state["any"])
        self.write_id = LOCKSETS.id_of(state["write"])
        self.any_bus_id = LOCKSETS.with_lock(self.any_id, BUS_LOCK_ID)
        self.write_bus_id = LOCKSETS.with_lock(self.write_id, BUS_LOCK_ID)

    # Frozenset views (off the hot path: reports, tests, atomizer).

    @property
    def any_(self) -> frozenset[int]:
        return LOCKSETS.members(self.any_id)

    @property
    def write(self) -> frozenset[int]:
        return LOCKSETS.members(self.write_id)

    @property
    def any_bus(self) -> frozenset[int]:
        return LOCKSETS.members(self.any_bus_id)

    @property
    def write_bus(self) -> frozenset[int]:
        return LOCKSETS.members(self.write_bus_id)


class _BulkEvent:
    """Minimal :class:`MemoryAccess` stand-in materialised only for the
    rare racing row of a batched block (:meth:`HelgrindDetector.bulk_access`
    hands it to ``_report_race``, which reads exactly these fields)."""

    __slots__ = ("step", "tid", "stack", "addr", "is_write")


class HelgrindDetector(EventDispatcher):
    """On-the-fly data-race detector (register on a VM or feed a trace).

    After a run, results are in :attr:`report`; the candidate-set shadow
    memory and the segment graph remain inspectable for tests and
    experiments.

    Events are routed through the dispatch-table ABI
    (:mod:`repro.detectors.dispatch`): the VM calls the per-type handler
    directly, so no ``isinstance`` cascade runs per event, and event
    types the configuration does not subscribe to (queue/semaphore
    tokens without ``queue_hb``, condvar tokens without ``cond_hb``,
    ``BarrierWait`` always) are skipped before the detector is entered.
    """

    #: Short stable name used by the telemetry layer as the
    #: ``detector`` label value (:mod:`repro.telemetry.probe`).
    telemetry_name = "helgrind"

    def __init__(self, config: HelgrindConfig | None = None, *, suppressions=None) -> None:
        self.config = config or HelgrindConfig.original()
        cache = self.config.transition_cache
        if cache is None:
            cache = transition_cache_default()
        self.segments = SegmentGraph()
        self.machine = LocksetMachine(
            self.segments,
            use_states=self.config.use_states,
            segment_transfer=self.config.segment_transfer,
            once_per_word=self.config.once_per_word,
            transition_cache=cache,
        )
        self.machine.access_history = self.config.access_history
        self.report = Report(suppressions)
        self._held: dict[int, _HeldLocks] = {}
        self._benign = IntervalSet()
        #: queue messages in flight: (queue_id, msg_id) -> clock token.
        self._queue_tokens: dict[tuple[int, int], dict[int, int]] = {}
        #: semaphore post tokens, FIFO per semaphore (a deque: ``popleft``
        #: is O(1) where a list's ``pop(0)`` is O(n)).
        self._sem_tokens: dict[int, deque[dict[int, int]]] = {}
        #: last signal token per condvar.
        self._cond_tokens: dict[int, dict[int, int]] = {}
        #: lock names for report rendering (learned from events lazily).
        self._access_checks = 0
        #: Helgrind-style same-access elision: the one access the filter
        #: would absorb, as ``(tid, addr, kind, bus_locked)``.  Armed
        #: only after a no-outcome access with no history/tracking side
        #: channels, and cleared by *every* non-access handler (locks,
        #: segments, alloc/free, client requests all invalidate the
        #: "identical immediate repeat is a no-op" proof).
        self._last_access: tuple | None = None
        self._elided = 0
        self._elide_ok = (
            cache and not self.config.access_history
        )
        # Bind the specialised access handler for the configured bus-lock
        # model once (instance attribute wins the dispatch lookup), so
        # the per-access path does not re-branch on configuration and
        # pays one bound-method call instead of four.
        if self.config.bus_lock_model is BusLockModel.RWLOCK:
            self._on_access = self._on_access_rwlock
        else:
            self._on_access = self._on_access_mutex

    # ------------------------------------------------------------------
    # VM hook (dispatch-table ABI; BarrierWait intentionally has no
    # handler — the lock-set algorithm ignores barriers)
    # ------------------------------------------------------------------

    def handler_for(self, event_type):
        """Dispatch-table ABI, gated by configuration.

        Queue/semaphore and condvar events are only subscribed when the
        corresponding happens-before extension is enabled, so the common
        configurations never even see them.
        """
        if event_type in (QueuePut, QueueGet, SemPost, SemWait):
            if not self.config.queue_hb:
                return None
        elif event_type in (CondSignal, CondWait):
            if not self.config.cond_hb:
                return None
        return super().handler_for(event_type)

    @handles(LockAcquire)
    def _on_lock_acquire(self, event: LockAcquire, vm) -> None:
        self._last_access = None
        self._held_for(event.tid).acquire(event.lock_id, event.mode)

    @handles(LockRelease)
    def _on_lock_release(self, event: LockRelease, vm) -> None:
        self._last_access = None
        self._held_for(event.tid).release(event.lock_id)

    @handles(MemAlloc)
    def _on_alloc(self, event: MemAlloc, vm) -> None:
        self._last_access = None
        self.machine.on_alloc(event.addr, event.size)

    @handles(MemFree)
    def _on_free(self, event: MemFree, vm) -> None:
        self._last_access = None
        self.machine.on_free(event.addr, event.size)

    @handles(ThreadCreate)
    def _on_thread_create(self, event: ThreadCreate, vm) -> None:
        self._last_access = None
        self.segments.on_create(event.tid, event.child_tid)

    @handles(ThreadFinish)
    def _on_thread_finish(self, event: ThreadFinish, vm) -> None:
        self._last_access = None
        self.segments.on_finish(event.tid)

    @handles(ThreadJoin)
    def _on_thread_join(self, event: ThreadJoin, vm) -> None:
        self._last_access = None
        self.segments.on_join(event.tid, event.joined_tid)

    @handles(QueuePut)
    def _on_queue_put(self, event: QueuePut, vm) -> None:
        self._last_access = None
        self._queue_tokens[(event.queue_id, event.msg_id)] = self.segments.post(
            event.tid
        )

    @handles(QueueGet)
    def _on_queue_get(self, event: QueueGet, vm) -> None:
        self._last_access = None
        token = self._queue_tokens.pop((event.queue_id, event.msg_id), None)
        if token is not None:
            self.segments.receive(event.tid, token)

    @handles(SemPost)
    def _on_sem_post(self, event: SemPost, vm) -> None:
        self._last_access = None
        tokens = self._sem_tokens.get(event.sem_id)
        if tokens is None:
            tokens = deque()
            self._sem_tokens[event.sem_id] = tokens
        tokens.append(self.segments.post(event.tid))

    @handles(SemWait)
    def _on_sem_wait(self, event: SemWait, vm) -> None:
        self._last_access = None
        tokens = self._sem_tokens.get(event.sem_id)
        if tokens:
            self.segments.receive(event.tid, tokens.popleft())

    @handles(CondSignal)
    def _on_cond_signal(self, event: CondSignal, vm) -> None:
        self._last_access = None
        self._cond_tokens[event.cond_id] = self.segments.post(event.tid)

    @handles(CondWait)
    def _on_cond_wait(self, event: CondWait, vm) -> None:
        self._last_access = None
        if event.phase == "leave":
            token = self._cond_tokens.get(event.cond_id)
            if token is not None:
                self.segments.receive(event.tid, token)

    # ------------------------------------------------------------------
    # Memory accesses (the hot path)
    # ------------------------------------------------------------------

    @handles(MemoryAccess)
    def _on_access(self, event: MemoryAccess, vm) -> None:
        """Generic (reference) access handler.

        ``__init__`` shadows this with one of the specialised variants
        below; this body stays as the readable specification and serves
        any subclass or hand-built instance that removes the shadow.
        """
        if event.addr in self._benign:
            return
        self._access_checks += 1
        held = self._held_for(event.tid)
        any_id, write_id = self._effective_ids(held, event)
        machine = self.machine
        outcome = machine.access_check(
            event.addr,
            event.tid,
            event.kind is AccessKind.WRITE,
            any_id,
            write_id,
        )
        if outcome is not None:
            self._report_race(event, outcome, vm)
        if machine.access_history:
            word = machine.word(event.addr)
            prev = word.last_access
            if prev is not None and prev[0] != event.tid:
                word.last_other = prev
            word.last_access = (event.tid, event.is_write, event.stack)

    def _on_access_rwlock(self, event: MemoryAccess, vm) -> None:
        """RWLOCK-model hot path: :meth:`_on_access` with the benign
        check, :meth:`_held_for` and :meth:`_effective_ids` inlined —
        one bound-method call per access instead of four.  An access
        identical to the immediately preceding one (same thread, word,
        direction, bus prefix, nothing in between) is a state no-op and
        is absorbed before the machine is entered."""
        last = self._last_access
        if (
            last is not None
            and last[1] == event.addr
            and last[0] == event.tid
            and last[2] is event.kind
            and last[3] == event.bus_locked
        ):
            self._access_checks += 1
            self._elided += 1
            return
        benign = self._benign
        if benign and event.addr in benign:
            return
        self._access_checks += 1
        held = self._held.get(event.tid)
        if held is None:
            held = _HeldLocks()
            self._held[event.tid] = held
        is_write = event.kind is AccessKind.WRITE
        if event.bus_locked:
            any_id = held.any_bus_id  # LOCK prefix: write mode
            write_id = held.write_bus_id
        elif is_write:
            any_id = held.any_id  # plain write: not held
            write_id = held.write_id
        else:
            any_id = held.any_bus_id  # every plain read: read mode
            write_id = held.write_id
        machine = self.machine
        outcome = machine.access_check(
            event.addr, event.tid, is_write, any_id, write_id
        )
        if outcome is not None:
            self._report_race(event, outcome, vm)
            self._last_access = None
        elif self._elide_ok and machine.transition_counts is None:
            self._last_access = (
                event.tid, event.addr, event.kind, event.bus_locked
            )
        if machine.access_history:
            word = machine.word(event.addr)
            prev = word.last_access
            if prev is not None and prev[0] != event.tid:
                word.last_other = prev
            word.last_access = (event.tid, is_write, event.stack)

    def _on_access_mutex(self, event: MemoryAccess, vm) -> None:
        """MUTEX-model (original Helgrind) hot path; see
        :meth:`_on_access_rwlock`."""
        last = self._last_access
        if (
            last is not None
            and last[1] == event.addr
            and last[0] == event.tid
            and last[2] is event.kind
            and last[3] == event.bus_locked
        ):
            self._access_checks += 1
            self._elided += 1
            return
        benign = self._benign
        if benign and event.addr in benign:
            return
        self._access_checks += 1
        held = self._held.get(event.tid)
        if held is None:
            held = _HeldLocks()
            self._held[event.tid] = held
        if event.bus_locked:
            any_id = held.any_bus_id
            write_id = held.write_bus_id
        else:
            any_id = held.any_id
            write_id = held.write_id
        machine = self.machine
        is_write = event.kind is AccessKind.WRITE
        outcome = machine.access_check(
            event.addr, event.tid, is_write, any_id, write_id
        )
        if outcome is not None:
            self._report_race(event, outcome, vm)
            self._last_access = None
        elif self._elide_ok and machine.transition_counts is None:
            self._last_access = (
                event.tid, event.addr, event.kind, event.bus_locked
            )
        if machine.access_history:
            word = machine.word(event.addr)
            prev = word.last_access
            if prev is not None and prev[0] != event.tid:
                word.last_other = prev
            word.last_access = (event.tid, is_write, event.stack)

    # ------------------------------------------------------------------
    # Batched block replay (docs/PERFORMANCE.md layer 6)
    # ------------------------------------------------------------------

    def bulk_access_ready(self) -> bool:
        """May :func:`repro.runtime.codec.replay_blocks` hand whole
        decoded ``MemoryAccess`` blocks to :meth:`bulk_access`?

        Static gate, checked once when the dispatch table is built:
        bulk replay inlines this exact class's access semantics, so a
        subclass, a cache-disabled machine, the no-states ablation or
        access-history mode all fall back to the per-event handlers.
        """
        machine = self.machine
        return (
            type(self) is HelgrindDetector
            and machine.transition_cache
            and machine.use_states
            and not machine.access_history
        )

    def bulk_access(self, block, s, base, stacks, vm) -> bool:
        """Analyse one decoded ``MemoryAccess`` block in a tight loop.

        ``block`` is the raw row bytes, ``s`` the row struct, ``base``
        the SEQ_STEP base (``None`` = rows carry their own step).
        Returns ``False`` — caller must fall back to the per-event
        loop — when dynamic state forbids batching (benign ranges
        registered, transition tracking enabled mid-run).

        The loop binds every table to a local and handles the steady
        states inline: run-length elision of identical adjacent rows,
        EXCLUSIVE hits by the current owner, RACY words, and memoized
        SHARED/SHARED_MOD transitions.  Everything else (NEW, ownership
        transfer, memo misses) takes the machine's normal
        ``access_check``, so the state evolution is exactly the
        sequential one.  Within one block there are no lock, segment or
        client-request events (blocks are single-type), so per-thread
        held-set ids and owner tokens are loop constants, cached by
        ``(tid, kind, bus)`` / ``tid``.
        """
        machine = self.machine
        memo = machine._memo
        if memo is None or machine.transition_counts is not None or self._benign:
            return False
        pages = machine._pages
        seg_ids = machine._seg_ids
        segments = machine.segments
        segment_transfer = machine.segment_transfer
        access_check = machine.access_check
        rwlock = self.config.bus_lock_model is BusLockModel.RWLOCK
        held_map = self._held
        report_race = self._report_race
        ids_cache: dict[int, tuple[int, int]] = {}
        owner_cache: dict[int, int] = {}
        if base is None:
            ti, si, ai, ki, bi = 1, 2, 3, 4, 5
        else:
            ti, si, ai, ki, bi = 0, 1, 2, 3, 4
        # Run-length elision state: the previous row's key fields, armed
        # only while the previous outcome was "no race, no side effect".
        p_tid = p_addr = p_kind = p_bus = -1
        armed = False
        elided = 0
        hits = 0
        i = -1
        for row in s.iter_unpack(block):
            i += 1
            tid = row[ti]
            addr = row[ai]
            kind = row[ki]
            bus = row[bi]
            if armed and addr == p_addr and tid == p_tid \
                    and kind == p_kind and bus == p_bus:
                elided += 1
                continue
            ik = (tid << 2) | (kind << 1) | bus
            pair = ids_cache.get(ik)
            if pair is None:
                held = held_map.get(tid)
                if held is None:
                    held = _HeldLocks()
                    held_map[tid] = held
                if rwlock:
                    if bus:
                        pair = (held.any_bus_id, held.write_bus_id)
                    elif kind:
                        pair = (held.any_id, held.write_id)
                    else:
                        pair = (held.any_bus_id, held.write_id)
                elif bus:
                    pair = (held.any_bus_id, held.write_bus_id)
                else:
                    pair = (held.any_id, held.write_id)
                ids_cache[ik] = pair
            outcome = None
            page = pages.get(addr >> _PAGE_BITS)
            if page is None:
                # Pristine page: let the machine materialise it.
                outcome = access_check(addr, tid, kind == 1, pair[0], pair[1])
            else:
                slot = addr & _PAGE_MASK
                packed = page[slot]
                code = packed & _ST_MASK
                if code == _EXCLUSIVE:
                    owner = owner_cache.get(tid)
                    if owner is None:
                        if segment_transfer:
                            owner = seg_ids.get(tid)
                            if owner is None:
                                owner = segments.current(tid).seg_id
                        else:
                            owner = tid
                        owner_cache[tid] = owner
                    if (packed >> _OWNER_SHIFT) - 1 != owner:
                        outcome = access_check(
                            addr, tid, kind == 1, pair[0], pair[1]
                        )
                elif code == _SHARED_MOD or code == _SHARED:
                    held_id = pair[1] if kind else pair[0]
                    low = packed & _LOW
                    value = memo.get(
                        (((low << 1) | (kind == 1)) << _LS_BITS) | held_id
                    )
                    if value is not None:
                        hits += 1
                        new_low = value >> 1
                        if new_low != low:
                            page[slot] = (packed & _KEEP_OWNER) | new_low
                        if value & 1:
                            outcome = LocksetOutcome(
                                True,
                                _STATE_OF_CODE[code],
                                ((low >> _LS_SHIFT) & _LS_MASK) - 1,
                                ((new_low >> _LS_SHIFT) & _LS_MASK) - 1,
                            )
                    else:
                        outcome = access_check(
                            addr, tid, kind == 1, pair[0], pair[1]
                        )
                elif code != _RACY:  # NEW on a materialised page
                    outcome = access_check(
                        addr, tid, kind == 1, pair[0], pair[1]
                    )
            if outcome is None:
                p_tid = tid
                p_addr = addr
                p_kind = kind
                p_bus = bus
                armed = True
                continue
            armed = False
            ev = _BulkEvent()
            ev.step = row[0] if base is None else base + i
            ev.tid = tid
            ev.stack = stacks[row[si]]
            ev.addr = addr
            ev.is_write = kind == 1
            report_race(ev, outcome, vm)
        self._access_checks += i + 1
        self._elided += elided
        machine._memo_hits += hits
        self._last_access = None
        return True

    def _effective_sets(
        self, held: _HeldLocks, event: MemoryAccess
    ) -> tuple[frozenset[int], frozenset[int]]:
        """Inject the virtual bus lock according to the configured model."""
        model = self.config.bus_lock_model
        if model is BusLockModel.MUTEX:
            if event.bus_locked:
                return held.any_bus, held.write_bus
            return held.any_, held.write
        # RWLOCK (the HWLC correction):
        if event.bus_locked:
            return held.any_bus, held.write_bus  # LOCK prefix: write mode
        if not event.is_write:
            return held.any_bus, held.write  # every plain read: read mode
        return held.any_, held.write  # plain write: not held

    def _effective_ids(self, held: _HeldLocks, event: MemoryAccess) -> tuple[int, int]:
        """Interned-id twin of :meth:`_effective_sets` (the hot path)."""
        if self.config.bus_lock_model is BusLockModel.MUTEX:
            if event.bus_locked:
                return held.any_bus_id, held.write_bus_id
            return held.any_id, held.write_id
        # RWLOCK (the HWLC correction):
        if event.bus_locked:
            return held.any_bus_id, held.write_bus_id  # LOCK prefix: write mode
        if event.kind is not AccessKind.WRITE:
            return held.any_bus_id, held.write_id  # every plain read: read mode
        return held.any_id, held.write_id  # plain write: not held

    def _report_race(self, event: MemoryAccess, outcome, vm) -> None:
        verb = "writing" if event.is_write else "reading"
        details = {
            "Previous state": _describe_state(
                outcome.prev_state, outcome.prev_lockset
            ),
        }
        if self.config.access_history:
            word = self.machine.word(event.addr)
            history = word.last_access
            if history is None or history[0] == event.tid:
                history = word.last_other
            if history is not None and history[0] != event.tid:
                h_tid, h_write, h_stack = history
                verb_h = "write" if h_write else "read"
                where = str(h_stack[0]) if h_stack else "<no symbols>"
                details["Conflicts with"] = (
                    f"previous {verb_h} by thread {h_tid} at {where}"
                )
        if vm is not None:
            block = vm.memory.find_block(event.addr)
            if block is not None:
                details["Address"] = block.describe(event.addr)
        warning = Warning_(
            kind=WarningKind.DATA_RACE,
            message=f"Possible data race {verb} variable",
            tid=event.tid,
            step=event.step,
            stack=event.stack,
            addr=event.addr,
            details=details,
        )
        self.report.add(warning)

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------

    @handles(ClientRequest)
    def _on_client_request(self, event: ClientRequest, vm=None) -> None:
        self._last_access = None
        if event.request == "hg_destruct":
            if self.config.honor_destruct:
                owner = (
                    self.segments.current(event.tid).seg_id
                    if self.config.segment_transfer
                    else event.tid
                )
                self.machine.make_exclusive(event.addr, event.size, owner)
        elif event.request == "hg_clean":
            self.machine.on_alloc(event.addr, event.size)  # forget state
        elif event.request == "benign_race":
            self._benign.add(event.addr, event.addr + event.size)
        # Unknown requests are ignored (forward compatibility, like
        # Valgrind's handling of unrecognised client requests).

    # ------------------------------------------------------------------

    def _held_for(self, tid: int) -> _HeldLocks:
        held = self._held.get(tid)
        if held is None:
            held = _HeldLocks()
            self._held[tid] = held
        return held

    @property
    def access_checks(self) -> int:
        """Number of memory accesses inspected (performance metric)."""
        return self._access_checks

    def locks_held(self, tid: int) -> frozenset[int]:
        """Current lock-set of ``tid`` (any mode) — for tests."""
        return self._held_for(tid).any_

    def finalize(self) -> None:
        """End-of-stream hook, idempotent.

        The on-the-fly tiers are complete after their last event, so
        this is a no-op; the predictive tier
        (:class:`repro.detectors.predict.PredictiveDetector`) overrides
        it to run its offline post-pass and emit predicted findings.
        Callers that may hold either kind of detector (the CLI, the
        harness, the service, sharded replay) call it unconditionally
        once the event stream is known to be finished.
        """

    def predict_stats(self) -> dict[str, int]:
        """Counters behind the ``repro_predict_*`` telemetry families.

        The on-the-fly tiers predict nothing — all zeros — but still
        publish the families so the schema's required-family check and
        dashboards hold for every configuration, not just
        ``predictive`` (same always-emit convention as the other
        counters in :mod:`repro.telemetry.probe`).
        """
        return {
            "edges": 0,
            "cycles_checked": 0,
            "predictions": 0,
            "feasibility_rejections": 0,
        }

    def telemetry_summary(self) -> dict[str, float]:
        """Size/work gauges harvested by :mod:`repro.telemetry.probe`.

        Keys become the ``stat`` label of ``repro_detector_state``;
        values are end-of-run magnitudes (not rates).
        """
        summary = {
            "access_checks": self._access_checks,
            "tracked_words": self.machine.tracked_words,
            "segments": self.segments.segment_count,
            "threads_seen": len(self._held),
            "queue_tokens_inflight": len(self._queue_tokens),
        }
        for key, value in self.machine.shadow_stats().items():
            summary[f"shadow_{key}"] = value
        return summary


def _describe_state(state: WordState, lockset: frozenset[int] | None) -> str:
    """Figure-9 style "Previous state" line ("shared RO, no locks")."""
    names = {
        WordState.NEW: "new",
        WordState.EXCLUSIVE: "exclusive",
        WordState.SHARED: "shared RO",
        WordState.SHARED_MODIFIED: "shared modified",
        WordState.RACY: "racy",
    }
    text = names[state]
    if state in (WordState.SHARED, WordState.SHARED_MODIFIED):
        if not lockset:
            text += ", no locks"
        else:
            shown = sorted("BUS" if l == BUS_LOCK_ID else f"lock{l}" for l in lockset)
            text += ", lockset {" + ", ".join(shown) + "}"
    return text
