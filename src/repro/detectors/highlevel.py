"""High-level data races — the paper's §2.1 limitation, made executable.

§2.1 ends with a caveat about *every* access-level definition of a data
race: a structure can reach an inconsistent state "even if every single
access to a shared location is protected by proper synchronization",
because the lock is released between two updates that belong together.
The motivating example is a (date-of-birth, age) record with two
individually-locked setters.  The paper points to Artho, Havelund &
Biere's *high-level data races* [1] for this class; this module
implements their **view consistency** criterion as a detector, so the
repository can demonstrate the §2.1 example being caught by something —
and being invisible to the lock-set algorithm, as the paper says.

The criterion
-------------
* A **view** is the set of shared locations a thread accesses within one
  critical section of a given lock (nested sections contribute to every
  lock currently held).
* A thread's **maximal views** under a lock are the ⊆-maximal elements
  of its view set.
* Two threads are *view-consistent* w.r.t. a lock iff for every maximal
  view ``m`` of one thread, the intersections of ``m`` with the other
  thread's views form a **chain** (are totally ordered by ⊆).

Intuition: if thread A treats {dob, age} as one atomic unit (one view)
while thread B updates {dob} and {age} in separate sections, B's
intersections {dob} and {age} with A's maximal view are incomparable —
B can interleave between them and A can observe a torn record.

Like the original, this is a *heuristic*: view inconsistency flags a
potential atomicity violation, not a guaranteed failure, and consistent
views do not prove atomicity.  Detection is post-hoc — call
:meth:`HighLevelRaceDetector.finalize` after the run (views only become
comparable once both threads' sections have been observed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.detectors.dispatch import EventDispatcher, handles
from repro.detectors.report import Report, Warning_
from repro.runtime.events import (
    CallStack,
    LockAcquire,
    LockRelease,
    MemoryAccess,
)

__all__ = ["HighLevelRaceDetector", "ViewInconsistency"]

#: Warning kind for view-consistency violations.
HIGH_LEVEL_RACE = "high-level-data-race"


@dataclass(slots=True)
class _OpenSection:
    """A critical section in progress: accumulates accessed addresses."""

    lock_id: int
    addrs: set[int] = field(default_factory=set)
    stack: CallStack = ()


@dataclass(frozen=True, slots=True)
class ViewInconsistency:
    """One violation: ``tid_a``'s maximal view vs ``tid_b``'s views."""

    lock_id: int
    tid_a: int
    maximal_view: frozenset[int]
    tid_b: int
    overlap_1: frozenset[int]
    overlap_2: frozenset[int]

    def describe(self) -> str:
        def fmt(s: frozenset[int]) -> str:
            return "{" + ", ".join(f"{a:#x}" for a in sorted(s)) + "}"

        return (
            f"thread {self.tid_a} treats {fmt(self.maximal_view)} as one unit "
            f"under lock{self.lock_id}, but thread {self.tid_b} accesses the "
            f"incomparable pieces {fmt(self.overlap_1)} and {fmt(self.overlap_2)} "
            "in separate critical sections"
        )


class HighLevelRaceDetector(EventDispatcher):
    """View-consistency checker (Artho/Havelund/Biere, cited in §2.1).

    Register on a VM like any detector; call :meth:`finalize` after the
    run to perform the pairwise consistency analysis and populate
    :attr:`report`.  Subscribes (dispatch-table ABI) only to memory
    accesses and lock events.
    """

    #: ``detector`` label value in the telemetry layer.
    telemetry_name = "highlevel"

    def __init__(self, *, track_reads: bool = True) -> None:
        self.report = Report()
        self.track_reads = track_reads
        #: (tid, lock_id) -> list of completed views (with a witness stack).
        self._views: dict[tuple[int, int], list[tuple[frozenset[int], CallStack]]] = {}
        #: tid -> stack of open critical sections (innermost last).
        self._open: dict[int, list[_OpenSection]] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    @handles(MemoryAccess)
    def _on_access(self, event: MemoryAccess, vm=None) -> None:
        if event.is_write or self.track_reads:
            for section in self._open.get(event.tid, ()):
                section.addrs.add(event.addr)

    @handles(LockAcquire)
    def _on_lock_acquire(self, event: LockAcquire, vm=None) -> None:
        self._open.setdefault(event.tid, []).append(
            _OpenSection(event.lock_id, stack=event.stack)
        )

    @handles(LockRelease)
    def _on_lock_release(self, event: LockRelease, vm=None) -> None:
        self._close_section(event.tid, event.lock_id)

    def _close_section(self, tid: int, lock_id: int) -> None:
        sections = self._open.get(tid)
        if not sections:
            return
        # Locks are usually released LIFO, but the guest may not; find
        # the innermost matching section.
        for i in range(len(sections) - 1, -1, -1):
            if sections[i].lock_id == lock_id:
                section = sections.pop(i)
                if section.addrs:
                    self._views.setdefault((tid, lock_id), []).append(
                        (frozenset(section.addrs), section.stack)
                    )
                return

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def finalize(self) -> Report:
        """Run the pairwise view-consistency check; idempotent."""
        if self._finalized:
            return self.report
        self._finalized = True
        for inconsistency, stack in self._find_inconsistencies():
            self.report.add(
                Warning_(
                    kind=HIGH_LEVEL_RACE,
                    message=f"Potential high-level data race on lock{inconsistency.lock_id}",
                    tid=inconsistency.tid_b,
                    step=0,
                    stack=stack,
                    addr=min(inconsistency.maximal_view) if inconsistency.maximal_view else None,
                    details={
                        "Views": inconsistency.describe(),
                        "Criterion": "view consistency (Artho et al. [1], via paper §2.1)",
                    },
                )
            )
        return self.report

    def _find_inconsistencies(self):
        by_lock: dict[int, dict[int, list[tuple[frozenset[int], CallStack]]]] = {}
        for (tid, lock_id), views in self._views.items():
            by_lock.setdefault(lock_id, {})[tid] = views
        for lock_id, per_thread in sorted(by_lock.items()):
            for tid_a, tid_b in combinations(sorted(per_thread), 2):
                yield from self._check_pair(lock_id, tid_a, tid_b, per_thread)
                yield from self._check_pair(lock_id, tid_b, tid_a, per_thread)

    def _check_pair(self, lock_id: int, tid_a: int, tid_b: int, per_thread):
        """Check tid_a's maximal views against tid_b's view set."""
        views_a = [v for v, _ in per_thread[tid_a]]
        views_b = per_thread[tid_b]
        for maximal in _maximal_views(views_a):
            overlaps: list[tuple[frozenset[int], CallStack]] = []
            for view_b, stack_b in views_b:
                overlap = maximal & view_b
                if overlap:
                    overlaps.append((overlap, stack_b))
            for (o1, _s1), (o2, s2) in combinations(overlaps, 2):
                if not (o1 <= o2 or o2 <= o1):
                    yield (
                        ViewInconsistency(
                            lock_id=lock_id,
                            tid_a=tid_a,
                            maximal_view=maximal,
                            tid_b=tid_b,
                            overlap_1=o1,
                            overlap_2=o2,
                        ),
                        s2,
                    )

    # ------------------------------------------------------------------

    def telemetry_summary(self) -> dict[str, float]:
        """Size gauges for ``repro_detector_state`` (telemetry layer)."""
        return {
            "views_recorded": sum(len(v) for v in self._views.values()),
            "view_keys": len(self._views),
            "sections_open": sum(len(s) for s in self._open.values()),
            "finalized": 1 if self._finalized else 0,
        }

    def views_of(self, tid: int, lock_id: int) -> list[frozenset[int]]:
        """The completed views of one thread under one lock (tests)."""
        return [v for v, _ in self._views.get((tid, lock_id), [])]


def _maximal_views(views: list[frozenset[int]]) -> list[frozenset[int]]:
    """The ⊆-maximal elements, deduplicated."""
    unique = set(views)
    return [v for v in unique if not any(v < other for other in unique)]
