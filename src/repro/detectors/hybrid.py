"""Hybrid lock-set × happens-before race detection (§2.2's [12,13]).

MultiRace and the O'Callahan/Choi hybrid combine the two algorithm
families: the lock-set rule nominates *suspicious* accesses (locking
discipline violated), and the happens-before relation then confirms or
vetoes them (were the conflicting accesses actually concurrent?).  The
result keeps most of lock-set's schedule-independence while discarding
the ownership-transfer false positives that pure lock-set produces on
Figure 11-style hand-offs.

Implementation: a :class:`~repro.detectors.lockset.LocksetMachine` (with
the Figure 1 states and segment transfer) runs as the nominator.  In
parallel a DJIT-style vector-clock layer timestamps the last conflicting
access per word; a lock-set violation is reported only when the current
access is *concurrent* with that previous access.

The vocabulary of synchronisation visible to the happens-before layer is
configurable exactly as in :class:`~repro.detectors.djit.DjitDetector`;
by default it sees locks, threads, queues, semaphores and barriers (not
condition variables, honouring the §2.2 soundness caveat).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detectors.dispatch import EventDispatcher, combine_handlers
from repro.detectors.djit import DjitDetector
from repro.detectors.helgrind import BusLockModel, HelgrindConfig, HelgrindDetector
from repro.detectors.lockset import WordState
from repro.detectors.report import Report, Warning_, WarningKind
from repro.runtime.events import MemoryAccess

__all__ = ["HybridDetector"]


@dataclass(slots=True)
class _LastConflict:
    """Per-word epoch of the most recent write and reads (for the veto)."""

    write_tid: int = -1
    write_clk: int = -1
    write_locked: bool = False
    reads: dict[int, tuple[int, bool]] = field(default_factory=dict)


class HybridDetector(EventDispatcher):
    """Lock-set nominator + happens-before confirmer.

    Composes a silent :class:`HelgrindDetector` (the nominator — its own
    report is ignored) with a silent :class:`DjitDetector` used purely
    for its vector clocks.  Only nominations whose conflicting accesses
    are concurrent reach :attr:`report`.
    """

    #: ``detector`` label value in the telemetry layer.
    telemetry_name = "hybrid"

    def __init__(
        self,
        config: HelgrindConfig | None = None,
        *,
        cond_hb: bool = False,
    ) -> None:
        self.config = config or HelgrindConfig(
            name="hybrid", bus_lock_model=BusLockModel.RWLOCK, honor_destruct=True
        )
        self._lockset = HelgrindDetector(self.config)
        self._hb = DjitDetector(cond_hb=cond_hb)
        self.report = Report()
        self._last: dict[int, _LastConflict] = {}
        #: Nominations vetoed because the accesses were ordered.
        self.vetoed = 0
        #: Per-instance route cache (event type -> composed handler).
        self._routes: dict[type, object] = {}

    def handler_for(self, event_type):
        """Dispatch-table ABI: accesses are handled here; every other
        event type fans out to whichever inner engines subscribe to it
        (the composition the old ``isinstance`` gate expressed)."""
        try:
            return self._routes[event_type]
        except KeyError:
            pass
        if event_type is MemoryAccess:
            fn = self._on_access
        else:
            # Non-access events drive both engines' shadow state.
            fn = combine_handlers(
                self._lockset.handler_for(event_type),
                self._hb.handler_for(event_type),
            )
        self._routes[event_type] = fn
        return fn

    @property
    def machine(self):
        """Shadow lock-set machine of the nominator (telemetry layer
        enables state-transition tracking through this)."""
        return self._lockset.machine

    def telemetry_summary(self) -> dict[str, float]:
        """Size gauges for ``repro_detector_state`` (telemetry layer)."""
        return {
            "nominations_vetoed": self.vetoed,
            "tracked_words": self._lockset.machine.tracked_words,
            "hb_thread_clocks": len(self._hb._clocks),
            "pending_conflicts": len(self._last),
        }

    # ------------------------------------------------------------------

    def _on_access(self, event: MemoryAccess, vm) -> None:
        # 1. Lock-set nomination (run the machine directly so we can see
        #    the outcome rather than the detector's report).  Interned
        #    lock-set ids keep this as cheap as the plain detector.
        held = self._lockset._held_for(event.tid)
        locks_any, locks_write = self._lockset._effective_ids(held, event)
        outcome = self._lockset.machine.access(
            event.addr,
            event.tid,
            is_write=event.is_write,
            locks_any=locks_any,
            locks_write=locks_write,
        )

        # 2. Happens-before bookkeeping (epoch of last conflicting access).
        vc = self._hb._clock(event.tid)
        last = self._last.get(event.addr)
        if last is None:
            last = _LastConflict()
            self._last[event.addr] = last

        locked = event.bus_locked

        def pair_races(other_locked: bool) -> bool:
            # Atomic-atomic pairs are synchronisation, not data.
            return not (locked and other_locked)

        concurrent = False
        if outcome.race:
            if event.is_write:
                concurrent = (
                    last.write_tid >= 0
                    and last.write_tid != event.tid
                    and pair_races(last.write_locked)
                    and not vc.covers(last.write_tid, last.write_clk)
                ) or any(
                    rt != event.tid and pair_races(rl) and not vc.covers(rt, rc)
                    for rt, (rc, rl) in last.reads.items()
                )
            else:
                concurrent = (
                    last.write_tid >= 0
                    and last.write_tid != event.tid
                    and pair_races(last.write_locked)
                    and not vc.covers(last.write_tid, last.write_clk)
                )
            if concurrent:
                self._warn(event, vm)
            else:
                self.vetoed += 1
                # Un-latch the word: the nominator parks a word in RACY
                # after its first empty intersection, but a vetoed
                # nomination is *not* a report — later accesses to the
                # same word must be able to nominate again (they may be
                # genuinely concurrent next time).
                word = self._lockset.machine.word(event.addr)
                word.state = WordState.SHARED_MODIFIED

        # 3. Update the epoch log.
        if event.is_write:
            last.write_tid = event.tid
            last.write_clk = vc.get(event.tid)
            last.write_locked = locked
            last.reads.clear()
        else:
            last.reads[event.tid] = (vc.get(event.tid), locked)

    def _warn(self, event: MemoryAccess, vm) -> None:
        verb = "writing" if event.is_write else "reading"
        details = {
            "Confirmed": "lock-set empty and accesses concurrent",
        }
        if vm is not None:
            block = vm.memory.find_block(event.addr)
            if block is not None:
                details["Address"] = block.describe(event.addr)
        self.report.add(
            Warning_(
                kind=WarningKind.DATA_RACE,
                message=f"Confirmed data race {verb} variable",
                tid=event.tid,
                step=event.step,
                stack=event.stack,
                addr=event.addr,
                details=details,
            )
        )
