"""The Eraser candidate-lock-set algorithm with the Figure 1 state machine.

This module implements the per-word shadow state of the paper's §2.3.2:

* The raw Eraser rule — ``C(v) := C(v) ∩ locks_held(t)``, warn on empty —
  refined with read/write lock modes (reads check locks held in *any*
  mode, writes check locks held in *write* mode),
* the Figure 1 state machine (NEW → EXCLUSIVE → SHARED / SHARED-MODIFIED)
  that forgives single-owner initialisation and read-only sharing, and
* the VisualThreads thread-segment transfer rule (§2.3.2 "Thread
  Segments"): EXCLUSIVE data touched by a *later* (happens-after)
  segment changes owner instead of going shared.

Both refinements are individually switchable so experiment E10 can
ablate them (``use_states`` / ``segment_transfer``).

The class is policy-free about what "locks are held" means: callers pass
the effective lock-sets per access, which is where the paper's hardware
bus-lock modelling (HWLC) plugs in — see
:class:`repro.detectors.helgrind.HelgrindDetector`.

Shadow-memory representation
----------------------------
Valgrind keeps shadow state in a two-level map: an address's high bits
select a *SecMap* page, the low bits an entry inside it, and untouched
pages all alias one distinguished read-only page so idle address space
costs nothing.  This module does the same in Python terms:

* :class:`LocksetMachine` stores shadow words in ``_pages``, a dict from
  page index (``addr >> _PAGE_BITS``) to a flat ``list`` of
  :data:`_PAGE_SIZE` **packed ints**.  A missing page *is* the
  distinguished all-NEW page; the first store to it copies a zero page
  in (copy-on-write, counted in ``page_copies``).
* Each shadow word is one int packing ``(state, lockset_id, owner)``:
  state code in bits 0–2, ``lockset_id + 1`` in bits 3–30 (28 bits,
  guarded in :meth:`LocksetTable.id_of`), ``owner + 1`` from bit 31 up
  (owner ids are unbounded segment ids; Python's long ints absorb
  them).  ``packed == 0`` ⇔ a pristine NEW word, so zero pages encode
  "never touched" exactly.
* State transitions are integer arithmetic — mask, or, shift — instead
  of attribute mutation on per-word heap objects, and whole-block
  transitions (:meth:`on_alloc` / :meth:`on_free` /
  :meth:`make_exclusive`, the paper's §3.1 ``VALGRIND_HG_DESTRUCT``
  reset) run in O(pages): full pages are dropped or filled wholesale,
  only the two boundary pages are edited word-by-word.

:class:`ShadowWord` survives as a *view* object for off-hot-path
callers (reports, the hybrid detector's un-latching, tests): it reads
and writes the packed word behind familiar ``.state`` / ``.lockset``
attributes.
"""

from __future__ import annotations

import enum

from repro.detectors.segments import SegmentGraph

__all__ = [
    "WordState",
    "ShadowWord",
    "LocksetMachine",
    "LocksetOutcome",
    "LocksetTable",
    "LOCKSETS",
    "EMPTY_ID",
    "NO_LOCKSET",
    "PAGE_SIZE",
    "set_transition_cache_default",
    "transition_cache_default",
]


class WordState(enum.Enum):
    """Figure 1's states for one shadow word."""

    NEW = "new"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"            # read-only sharing ("shared RO")
    SHARED_MODIFIED = "shared-modified"
    #: A race was already reported here; stop tracking to avoid
    #: cascading duplicate reports (Helgrind does the same).
    RACY = "racy"


# ----------------------------------------------------------------------
# Packed shadow-word layout (see module docstring)
# ----------------------------------------------------------------------

#: Page size in words; 2**10 matches Valgrind's order of magnitude for
#: SecMap granularity while keeping a copied page (a 1024-slot list of
#: small ints) cheap to materialise.
_PAGE_BITS = 10
_PAGE_SIZE = 1 << _PAGE_BITS
_PAGE_MASK = _PAGE_SIZE - 1
#: Public alias (docs, tests, benchmarks).
PAGE_SIZE = _PAGE_SIZE

# Field layout of one packed shadow word.
_ST_MASK = 0b111
_LS_SHIFT = 3
_LS_BITS = 28
_LS_MASK = (1 << _LS_BITS) - 1
_LS_FIELD = _LS_MASK << _LS_SHIFT
_OWNER_SHIFT = _LS_SHIFT + _LS_BITS  # == 31
#: Keep only the low (state + lockset) fields.
_LOW = (1 << _OWNER_SHIFT) - 1
#: Keep everything *except* state + lockset (i.e. the owner bits).
_KEEP_OWNER = ~(_ST_MASK | _LS_FIELD)
#: Largest lockset id that fits the 28-bit field (ids are stored +1).
_LS_ID_LIMIT = _LS_MASK - 1

# State codes (three bits).  NEW must be 0 so that packed == 0 is a
# pristine word.
_NEW = 0
_EXCLUSIVE = 1
_SHARED = 2
_SHARED_MOD = 3
_RACY = 4

_STATE_OF_CODE = (
    WordState.NEW,
    WordState.EXCLUSIVE,
    WordState.SHARED,
    WordState.SHARED_MODIFIED,
    WordState.RACY,
)
_CODE_OF_STATE = {state: code for code, state in enumerate(_STATE_OF_CODE)}

#: The distinguished all-NEW page.  Never mutated; ``_ZERO_PAGE[:]`` is
#: the copy-on-write copy, ``_ZERO_PAGE[lo:hi]`` the range-reset source.
_ZERO_PAGE = [0] * _PAGE_SIZE

#: Transition-memo capacity.  The key space a real guest exercises is
#: tiny (distinct ``(word low bits, is_write, held-set id)`` triples),
#: so the cap only guards pathological id churn; on overflow the table
#: is cleared wholesale (an *eviction* in the telemetry) rather than
#: tracked per-entry.
_MEMO_CAP = 65536

#: Process default for :class:`LocksetMachine`'s ``transition_cache``
#: (the ``--no-transition-cache`` escape hatch flips it before any
#: detector is built; worker processes forked afterwards inherit it).
_TRANSITION_CACHE_DEFAULT = True


def set_transition_cache_default(enabled: bool) -> None:
    """Flip the process-wide transition-cache default.

    Detectors built afterwards (with ``transition_cache=None``) follow
    it; the CLI's ``--no-transition-cache`` sets it before building
    anything, so every machine in the run — including ones constructed
    deep inside the harness or in forked worker processes — runs the
    uncached reference path.
    """
    global _TRANSITION_CACHE_DEFAULT
    _TRANSITION_CACHE_DEFAULT = bool(enabled)


def transition_cache_default() -> bool:
    """The current process-wide transition-cache default."""
    return _TRANSITION_CACHE_DEFAULT


class LocksetTable:
    """Interning of lock-sets as small integer ids (Eraser's "lockset
    indexes" optimisation).

    Eraser observed that a program only ever materialises a small number
    of *distinct* lock-sets, so it represents each candidate set C(v) by
    a small integer index into a table of sets and memoizes pairwise
    intersections — the per-access work drops from a set intersection to
    a dictionary lookup on a pair of ints.  We reproduce that here:

    * :meth:`id_of` interns a frozenset and returns its id (stable for
      the lifetime of the process; the empty set is always
      :data:`EMPTY_ID` ``== 0``, so "is the candidate set empty?" is an
      integer comparison).
    * :meth:`intersect` intersects two ids with a symmetric memo cache,
      computing the underlying ``frozenset &`` at most once per
      unordered id pair.

    The table is append-only and process-wide (:data:`LOCKSETS`), like
    Valgrind's ExeContext table: guest programs hold a bounded number of
    distinct lock combinations while the access stream is unbounded.
    Ids double as the 28-bit lockset field of packed shadow words, so
    :meth:`id_of` guards the field width (a program would need ~268M
    distinct lock-sets to hit it).
    """

    __slots__ = (
        "_sets", "_ids", "_isect", "_with", "_without",
        "_intern_hits", "_intern_misses", "_isect_hits", "_isect_misses",
        "_with_hits", "_with_misses", "_wo_hits", "_wo_misses",
    )

    #: Memo operations tallied by :meth:`stats`.
    _OPS = ("intern", "intersect", "with", "without")

    def __init__(self) -> None:
        empty: frozenset[int] = frozenset()
        #: id → members, append-only.
        self._sets: list[frozenset[int]] = [empty]
        #: members → id.
        self._ids: dict[frozenset[int], int] = {empty: 0}
        #: memoized intersections keyed by (min_id, max_id).
        self._isect: dict[tuple[int, int], int] = {}
        #: memoized single-lock add/remove keyed by (set_id, lock_id) —
        #: the lock acquire/release path updates held-set ids through
        #: these without ever materialising a frozenset.
        self._with: dict[tuple[int, int], int] = {}
        self._without: dict[tuple[int, int], int] = {}
        #: Per-operation memo effectiveness.  Plain int *slots*, not a
        #: dict: these bump on the per-access hot path, and a slotted
        #: attribute add is the cheapest counter Python has.  Read by
        #: the telemetry layer via :meth:`stats`; ``intersect`` hits
        #: include the ``a == b`` / empty-set shortcuts — they answer
        #: without touching a frozenset, which is what the hit rate is
        #: measuring.
        self._intern_hits = 0
        self._intern_misses = 0
        self._isect_hits = 0
        self._isect_misses = 0
        self._with_hits = 0
        self._with_misses = 0
        self._wo_hits = 0
        self._wo_misses = 0

    def id_of(self, locks) -> int:
        """Intern ``locks`` (any iterable of lock ids) and return its id."""
        s = locks if type(locks) is frozenset else frozenset(locks)
        sid = self._ids.get(s)
        if sid is None:
            sid = len(self._sets)
            if sid > _LS_ID_LIMIT:  # pragma: no cover - 268M distinct sets
                raise OverflowError(
                    "lock-set table exceeded the packed shadow-word field "
                    f"({_LS_BITS} bits, {_LS_ID_LIMIT + 1} ids)"
                )
            self._sets.append(s)
            self._ids[s] = sid
            self._intern_misses += 1
        else:
            self._intern_hits += 1
        return sid

    def members(self, sid: int) -> frozenset[int]:
        """The frozenset a lock-set id stands for."""
        return self._sets[sid]

    def dump(self) -> list[frozenset[int]]:
        """Every interned set, in id order.

        Checkpoints embed this so lock-set ids can be re-interned in
        another process (ids are positions in *this* process's table
        and mean nothing elsewhere).
        """
        return self._sets[:]

    def intersect(self, a: int, b: int) -> int:
        """Id of ``members(a) & members(b)`` (memoized, symmetric)."""
        if a == b:
            self._isect_hits += 1
            return a
        if a == EMPTY_ID or b == EMPTY_ID:
            self._isect_hits += 1
            return EMPTY_ID
        key = (a, b) if a < b else (b, a)
        cached = self._isect.get(key)
        if cached is None:
            self._isect_misses += 1
            cached = self.id_of(self._sets[a] & self._sets[b])
            self._isect[key] = cached
        else:
            self._isect_hits += 1
        return cached

    def with_lock(self, sid: int, lock_id: int) -> int:
        """Id of ``members(sid) | {lock_id}`` (memoized).

        One dict hit in the steady state — lock acquisition walks the
        held-set id forward without building a set.
        """
        key = (sid, lock_id)
        cached = self._with.get(key)
        if cached is None:
            self._with_misses += 1
            members = self._sets[sid]
            cached = sid if lock_id in members else self.id_of(members | {lock_id})
            self._with[key] = cached
        else:
            self._with_hits += 1
        return cached

    def without_lock(self, sid: int, lock_id: int) -> int:
        """Id of ``members(sid) - {lock_id}`` (memoized)."""
        key = (sid, lock_id)
        cached = self._without.get(key)
        if cached is None:
            self._wo_misses += 1
            members = self._sets[sid]
            cached = self.id_of(members - {lock_id}) if lock_id in members else sid
            self._without[key] = cached
        else:
            self._wo_hits += 1
        return cached

    def stats(self) -> dict[str, int]:
        """Interning/memo effectiveness (telemetry input).

        Keys: ``size`` plus ``{op}_hits`` / ``{op}_misses`` for each of
        ``intern``, ``intersect``, ``with``, ``without``.
        """
        return {
            "size": len(self._sets),
            "intern_hits": self._intern_hits,
            "intern_misses": self._intern_misses,
            "intersect_hits": self._isect_hits,
            "intersect_misses": self._isect_misses,
            "with_hits": self._with_hits,
            "with_misses": self._with_misses,
            "without_hits": self._wo_hits,
            "without_misses": self._wo_misses,
        }

    def __len__(self) -> int:
        """Number of distinct lock-sets interned so far."""
        return len(self._sets)

    @property
    def intersections_memoized(self) -> int:
        """Size of the intersection memo (introspection for tests)."""
        return len(self._isect)


#: Id of the empty lock-set — ``lockset_id == EMPTY_ID`` ⇔ "no common lock".
EMPTY_ID = 0

#: Sentinel id for "candidate set not initialised yet" (Eraser's delayed
#: lock-set initialisation; distinct from *empty*).
NO_LOCKSET = -1

#: The process-wide lock-set table (one per process, like ExeContexts).
LOCKSETS = LocksetTable()


class ShadowWord:
    """A mutable *view* of one packed shadow word.

    ``owner`` is a thread-segment id while EXCLUSIVE (or a thread id
    when segment transfer is disabled — the ablated configuration).
    ``lockset_id`` is the *interned id* of the candidate set C(v) in
    :data:`LOCKSETS`; :data:`NO_LOCKSET` until initialised, which
    implements Eraser's *delayed lock-set initialisation* — the root of
    the §4.3 false negatives.  The :attr:`lockset` property materialises
    the frozenset for callers off the hot path.  ``last_access`` is the
    optional conflict history ``(tid, was_write, stack)`` maintained
    when the machine runs with ``access_history``.

    The view holds ``(machine, addr)`` and translates attribute access
    into packed-int reads/writes, so off-hot-path callers (the hybrid
    detector's RACY un-latching, report rendering, tests) keep the
    object API while the hot path never allocates one of these.
    """

    __slots__ = ("_machine", "_addr")

    def __init__(self, machine: "LocksetMachine", addr: int) -> None:
        self._machine = machine
        self._addr = addr

    # -- packed fields -------------------------------------------------

    @property
    def state(self) -> WordState:
        return _STATE_OF_CODE[self._machine._peek(self._addr) & _ST_MASK]

    @state.setter
    def state(self, value: WordState) -> None:
        machine = self._machine
        packed = machine._peek(self._addr)
        machine._poke(self._addr, (packed & ~_ST_MASK) | _CODE_OF_STATE[value])

    @property
    def owner(self) -> int:
        return (self._machine._peek(self._addr) >> _OWNER_SHIFT) - 1

    @owner.setter
    def owner(self, value: int) -> None:
        machine = self._machine
        packed = machine._peek(self._addr)
        machine._poke(self._addr, (packed & _LOW) | ((value + 1) << _OWNER_SHIFT))

    @property
    def lockset_id(self) -> int:
        return ((self._machine._peek(self._addr) >> _LS_SHIFT) & _LS_MASK) - 1

    @lockset_id.setter
    def lockset_id(self, value: int) -> None:
        machine = self._machine
        packed = machine._peek(self._addr)
        machine._poke(
            self._addr, (packed & ~_LS_FIELD) | ((value + 1) << _LS_SHIFT)
        )

    @property
    def lockset(self) -> frozenset[int] | None:
        """The candidate set as a frozenset (``None`` = uninitialised)."""
        sid = self.lockset_id
        return None if sid == NO_LOCKSET else LOCKSETS.members(sid)

    @lockset.setter
    def lockset(self, value: frozenset[int] | None) -> None:
        self.lockset_id = NO_LOCKSET if value is None else LOCKSETS.id_of(value)

    # -- access history (side table; only populated when the machine
    # -- runs with ``access_history``) ---------------------------------

    @property
    def last_access(self) -> tuple | None:
        entry = self._machine._history.get(self._addr)
        return entry[0] if entry is not None else None

    @last_access.setter
    def last_access(self, value: tuple | None) -> None:
        self._machine._history_entry(self._addr)[0] = value

    @property
    def last_other(self) -> tuple | None:
        """The most recent access by a thread *other* than
        ``last_access``'s, so a warning can always show the other side
        of the conflict even when the racing thread's own accesses are
        the freshest."""
        entry = self._machine._history.get(self._addr)
        return entry[1] if entry is not None else None

    @last_other.setter
    def last_other(self, value: tuple | None) -> None:
        self._machine._history_entry(self._addr)[1] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShadowWord(state={self.state.value!r}, owner={self.owner}, "
            f"lockset={self.lockset!r})"
        )


class LocksetOutcome:
    """Result of feeding one access through the machine.

    Stores interned lock-set ids; the :attr:`prev_lockset` /
    :attr:`lockset` properties materialise frozensets lazily, so the hot
    path (which only reads :attr:`race`) never touches a set object.
    """

    __slots__ = ("race", "prev_state", "prev_lockset_id", "lockset_id")

    def __init__(
        self,
        race: bool,
        prev_state: WordState,
        prev_lockset_id: int,
        lockset_id: int,
    ) -> None:
        #: True if this access makes the candidate set empty in a state
        #: where Eraser reports ("issue warning").
        self.race = race
        #: State before the access (for the "Previous state:" report line).
        self.prev_state = prev_state
        #: Interned id of the candidate set before the access.
        self.prev_lockset_id = prev_lockset_id
        #: Interned id of the candidate set after the access.
        self.lockset_id = lockset_id

    @property
    def prev_lockset(self) -> frozenset[int] | None:
        """Candidate lock-set before the access (None = uninitialised)."""
        sid = self.prev_lockset_id
        return None if sid == NO_LOCKSET else LOCKSETS.members(sid)

    @property
    def lockset(self) -> frozenset[int] | None:
        """Candidate lock-set after the access."""
        sid = self.lockset_id
        return None if sid == NO_LOCKSET else LOCKSETS.members(sid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocksetOutcome(race={self.race}, prev_state={self.prev_state.value!r}, "
            f"prev_lockset={self.prev_lockset!r}, lockset={self.lockset!r})"
        )


class LocksetMachine:
    """Shadow-memory state machine over guest words (paged + packed).

    Parameters
    ----------
    segments:
        The thread-segment graph used for EXCLUSIVE ownership transfer.
    use_states:
        Figure 1 machine on/off.  Off = the "basic algorithm" of §2.3.2:
        the candidate set is initialised at the *first* access and every
        empty intersection warns — many more false positives (E10).
    segment_transfer:
        VisualThreads rule on/off.  Off = ownership is per *thread*;
        any second thread moves the word to a shared state.
    """

    def __init__(
        self,
        segments: SegmentGraph,
        *,
        use_states: bool = True,
        segment_transfer: bool = True,
        once_per_word: bool = True,
        transition_cache: bool | None = None,
    ) -> None:
        self.segments = segments
        #: Direct reference to the graph's tid → seg_id mirror: the
        #: owner lookup on the access hot path is one dict ``get``
        #: (falling back to :meth:`SegmentGraph.current` only for a
        #: thread the graph has never seen).
        self._seg_ids = segments.current_ids
        self.use_states = use_states
        self.segment_transfer = segment_transfer
        #: True = Eraser's "report the next write access that results in
        #: an empty lock-set" (one report per word, then RACY).  False =
        #: Helgrind's behaviour on a large application: every
        #: empty-lock-set access keeps reporting, and the report layer
        #: deduplicates by call stack — this is what lets one racy word
        #: produce warnings at many distinct program locations, the way
        #: the paper's location counts reach the hundreds.
        self.once_per_word = once_per_word
        #: Keep the last access (tid, was_write, stack) per word so that
        #: warnings can show the *other* side of the conflict, the way
        #: later Helgrind versions do with --history-level.  Off by
        #: default: it stores a stack per shadow word.
        self.access_history = False
        #: Two-level shadow map: page index → list of packed words.
        #: A *missing* page is the shared all-NEW page.
        self._pages: dict[int, list[int]] = {}
        #: addr → ``[last_access, last_other]`` (only when history is on).
        self._history: dict[int, list] = {}
        # Shadow-engine counters (read by :meth:`shadow_stats`).
        self._page_copies = 0
        self._range_ops = 0
        self._range_pages = 0
        #: ``(prev WordState, new WordState) -> count`` when transition
        #: tracking is on (the telemetry layer's Figure-5-style matrix);
        #: ``None`` — and zero per-access cost — otherwise.
        self.transition_counts: dict[tuple[WordState, WordState], int] | None = None
        if transition_cache is None:
            transition_cache = _TRANSITION_CACHE_DEFAULT
        #: Memoized SHARED/SHARED_MOD transition function (see
        #: :meth:`access_check`).  ``None`` = caching disabled — the
        #: machine then runs the branch cascade verbatim.  The EXCLUSIVE
        #: and NEW paths are never memoized: their result depends on the
        #: owner token and the segment graph's happens-before relation,
        #: which the key cannot capture soundly.
        self.transition_cache = transition_cache
        self._memo: dict[int, int] | None = {} if transition_cache else None
        self._memo_hits = 0
        self._memo_misses = 0
        self._memo_evictions = 0

    # ------------------------------------------------------------------
    # Pickling (session checkpoints)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Packed words embed :data:`LOCKSETS` ids — positions in the
        *process-global* table.  Ship the id → members mapping alongside
        so another process can re-intern and remap on restore.  The
        transition memo is dropped (its keys and values embed this
        process's lockset ids); a restored machine just re-warms it."""
        state = self.__dict__.copy()
        state["_lockset_dump"] = LOCKSETS.dump()
        if state.get("_memo") is not None:
            state["_memo"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        dumped = state.pop("_lockset_dump")
        self.__dict__.update(state)
        remap = [LOCKSETS.id_of(s) for s in dumped]
        if remap == list(range(len(remap))):
            return  # same-process restore (or fresh table): ids unchanged
        for page in self._pages.values():
            for i, packed in enumerate(page):
                field = (packed >> _LS_SHIFT) & _LS_MASK
                if field:  # 0 = NO_LOCKSET (uninitialised candidate set)
                    new_id = remap[field - 1]
                    page[i] = (packed & ~_LS_FIELD) | ((new_id + 1) << _LS_SHIFT)

    # ------------------------------------------------------------------
    # Shard merge (intra-trace parallel replay)
    # ------------------------------------------------------------------

    def dump_pages(self) -> dict:
        """Portable dump of the packed shadow pages.

        Packed words embed :data:`LOCKSETS` ids, which are positions in
        this *process's* append-only table; the dump ships the id →
        members mapping alongside (exactly like pickling does) so
        :meth:`merge_pages` in another process can re-intern and remap.
        """
        return {
            "locksets": LOCKSETS.dump(),
            "pages": {pi: list(page) for pi, page in self._pages.items()},
        }

    def merge_pages(self, dump: dict) -> None:
        """Graft another machine's dumped pages into this one.

        The sharded replay driver's merge: each shard owns a disjoint
        set of shadow pages (the partition is *by* page), so merging is
        page-dict union plus a lockset-id remap through this process's
        :data:`LOCKSETS` table.  Overlapping pages mean the caller's
        partition was not a partition — refused loudly rather than
        silently last-writer-wins.
        """
        remap = [LOCKSETS.id_of(s) for s in dump["locksets"]]
        identity = remap == list(range(len(remap)))
        for pi, page in dump["pages"].items():
            if pi in self._pages:
                raise ValueError(
                    f"shadow page {pi} present in two shards; "
                    "shard pages must be disjoint"
                )
            if identity:
                self._pages[pi] = list(page)
                continue
            out = list(page)
            for i, packed in enumerate(out):
                field = (packed >> _LS_SHIFT) & _LS_MASK
                if field:
                    new_id = remap[field - 1]
                    out[i] = (packed & ~_LS_FIELD) | ((new_id + 1) << _LS_SHIFT)
            self._pages[pi] = out

    # ------------------------------------------------------------------
    # Packed-word plumbing (used by the ShadowWord view; the access
    # paths inline the same logic)
    # ------------------------------------------------------------------

    def _peek(self, addr: int) -> int:
        """Packed word at ``addr`` without materialising a page."""
        page = self._pages.get(addr >> _PAGE_BITS)
        return page[addr & _PAGE_MASK] if page is not None else 0

    def _poke(self, addr: int, packed: int) -> None:
        """Store a packed word (copy-on-write page materialisation)."""
        pages = self._pages
        pi = addr >> _PAGE_BITS
        page = pages.get(pi)
        if page is None:
            if packed == 0:
                return  # storing NEW into the all-NEW page: no-op
            page = _ZERO_PAGE[:]
            pages[pi] = page
            self._page_copies += 1
        page[addr & _PAGE_MASK] = packed

    def _history_entry(self, addr: int) -> list:
        entry = self._history.get(addr)
        if entry is None:
            entry = [None, None]
            self._history[addr] = entry
        return entry

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def enable_transition_tracking(self) -> None:
        """Start recording the state-transition matrix.

        Implemented by shadowing :meth:`access` *and*
        :meth:`access_check` with counting wrappers *on this instance*,
        so the untracked machine keeps the fast path untouched (no
        per-access ``if``).  Both entry points must be shadowed: the
        Helgrind hot path goes through :meth:`access_check`.
        """
        if self.transition_counts is None:
            self.transition_counts = {}
            self.access = self._traced_access  # instance attr wins lookup
            self.access_check = self._traced_access_check

    def _traced_access(
        self, addr: int, tid: int, is_write: bool, locks_any, locks_write
    ) -> "LocksetOutcome":
        outcome = LocksetMachine.access(
            self, addr, tid, is_write=is_write,
            locks_any=locks_any, locks_write=locks_write,
        )
        new_state = _STATE_OF_CODE[self._peek(addr) & _ST_MASK]
        key = (outcome.prev_state, new_state)
        counts = self.transition_counts
        counts[key] = counts.get(key, 0) + 1
        return outcome

    def _traced_access_check(
        self, addr: int, tid: int, is_write: bool, locks_any, locks_write
    ) -> "LocksetOutcome | None":
        # Peek-count-peek around the *real* hot path rather than routing
        # through :meth:`access`, so instrumented runs keep the memoized
        # machine (and its hit/miss counters) live.
        prev_state = _STATE_OF_CODE[self._peek(addr) & _ST_MASK]
        outcome = LocksetMachine.access_check(
            self, addr, tid, is_write, locks_any, locks_write
        )
        new_state = _STATE_OF_CODE[self._peek(addr) & _ST_MASK]
        counts = self.transition_counts
        key = (prev_state, new_state)
        counts[key] = counts.get(key, 0) + 1
        return outcome

    def state_distribution(self) -> dict[WordState, int]:
        """Tracked shadow words by current state (Figure-5 material)."""
        dist: dict[WordState, int] = {}
        for page in self._pages.values():
            for packed in page:
                if packed:
                    state = _STATE_OF_CODE[packed & _ST_MASK]
                    dist[state] = dist.get(state, 0) + 1
        return dist

    def shadow_stats(self) -> dict[str, int]:
        """Paged-engine counters (telemetry input).

        ``pages`` is the number of materialised (copied) pages alive
        now; ``page_copies`` the total copy-on-write materialisations;
        ``range_ops`` / ``range_pages`` tally the O(pages) block
        transitions (alloc/free/``HG_DESTRUCT``) and how many pages
        they visited.
        """
        return {
            "pages": len(self._pages),
            "page_copies": self._page_copies,
            "range_ops": self._range_ops,
            "range_pages": self._range_pages,
        }

    def transition_cache_stats(self) -> dict[str, int]:
        """Transition-memo counters (telemetry input).

        ``hits``/``misses`` count :meth:`access_check` SHARED/SHARED_MOD
        steps answered from / inserted into the memo; ``evictions``
        counts whole-table clears on overflow (see ``_MEMO_CAP``).
        ``size`` is the live entry count.  All zero when the cache is
        disabled.
        """
        return {
            "hits": self._memo_hits,
            "misses": self._memo_misses,
            "evictions": self._memo_evictions,
            "size": len(self._memo) if self._memo is not None else 0,
        }

    # ------------------------------------------------------------------
    # Shadow-memory lifecycle (range transitions, O(pages))
    # ------------------------------------------------------------------

    def _range_reset(self, addr: int, size: int) -> None:
        """Return ``[addr, addr+size)`` to NEW in O(pages touched).

        Fully covered pages revert to the shared all-NEW page by being
        *dropped* from the map (one dict pop); the at-most-two boundary
        pages get a slice assignment of zeros.
        """
        if size <= 0:
            return
        self._range_ops += 1
        pages = self._pages
        end = addr + size
        first_pi = addr >> _PAGE_BITS
        last_pi = (end - 1) >> _PAGE_BITS
        self._range_pages += last_pi - first_pi + 1
        for pi in range(first_pi, last_pi + 1):
            p_start = pi << _PAGE_BITS
            lo = addr - p_start if addr > p_start else 0
            hi = end - p_start if end - p_start < _PAGE_SIZE else _PAGE_SIZE
            if lo == 0 and hi == _PAGE_SIZE:
                pages.pop(pi, None)
            else:
                page = pages.get(pi)
                if page is not None:
                    page[lo:hi] = _ZERO_PAGE[lo:hi]
        if self._history:
            hist = self._history
            for a in [a for a in hist if addr <= a < end]:
                del hist[a]

    def on_alloc(self, addr: int, size: int) -> None:
        """Fresh allocation: all words (re)enter NEW."""
        self._range_reset(addr, size)

    def on_free(self, addr: int, size: int) -> None:
        """Freed at VM level: stop tracking (memcheck's jurisdiction)."""
        self._range_reset(addr, size)

    def make_exclusive(self, addr: int, size: int, owner: int) -> None:
        """Force words to EXCLUSIVE(owner) — the HG_DESTRUCT semantics.

        "mark deleted memory for the race detection as exclusively owned
        by the running thread. That way, accesses by other threads during
        destruction are still detected." (§3.1)

        O(pages): fully covered pages are *replaced* wholesale with a
        constant-filled page; boundary pages get a slice assignment.
        """
        if size <= 0:
            return
        self._range_ops += 1
        packed = _EXCLUSIVE | ((owner + 1) << _OWNER_SHIFT)
        pages = self._pages
        end = addr + size
        first_pi = addr >> _PAGE_BITS
        last_pi = (end - 1) >> _PAGE_BITS
        self._range_pages += last_pi - first_pi + 1
        for pi in range(first_pi, last_pi + 1):
            p_start = pi << _PAGE_BITS
            lo = addr - p_start if addr > p_start else 0
            hi = end - p_start if end - p_start < _PAGE_SIZE else _PAGE_SIZE
            if lo == 0 and hi == _PAGE_SIZE:
                if pi not in pages:
                    self._page_copies += 1
                pages[pi] = [packed] * _PAGE_SIZE
            else:
                page = pages.get(pi)
                if page is None:
                    page = _ZERO_PAGE[:]
                    pages[pi] = page
                    self._page_copies += 1
                page[lo:hi] = [packed] * (hi - lo)

    def word(self, addr: int) -> ShadowWord:
        """A view of the shadow word at ``addr`` (NEW until touched)."""
        return ShadowWord(self, addr)

    def state_of(self, addr: int) -> WordState:
        page = self._pages.get(addr >> _PAGE_BITS)
        if page is None:
            return WordState.NEW
        return _STATE_OF_CODE[page[addr & _PAGE_MASK] & _ST_MASK]

    # ------------------------------------------------------------------
    # The access rule
    # ------------------------------------------------------------------

    def access(
        self,
        addr: int,
        tid: int,
        is_write: bool,
        locks_any,
        locks_write,
    ) -> LocksetOutcome:
        """Feed one access through the machine.

        ``locks_any`` / ``locks_write`` are the *effective* lock-sets of
        the accessing thread for this access — including any virtual
        locks the caller's hardware model injects (the bus lock).  They
        may be passed either as frozensets (the original API, kept for
        tests and off-path callers) or as interned :data:`LOCKSETS` ids
        (the hot path: :class:`~repro.detectors.helgrind.HelgrindDetector`
        precomputes the ids per lock event, so the per-access cost is
        integer compares plus one memoized table lookup).
        """
        # Normalise to interned ids (ints pass through untouched).
        if type(locks_any) is not int:
            locks_any = LOCKSETS.id_of(locks_any)
        if type(locks_write) is not int:
            locks_write = LOCKSETS.id_of(locks_write)

        pages = self._pages
        pi = addr >> _PAGE_BITS
        page = pages.get(pi)
        if page is None:
            page = _ZERO_PAGE[:]
            pages[pi] = page
            self._page_copies += 1
        slot = addr & _PAGE_MASK
        packed = page[slot]
        code = packed & _ST_MASK
        prev_id = ((packed >> _LS_SHIFT) & _LS_MASK) - 1

        if not self.use_states:
            return self._raw_access(
                page, slot, packed, code, prev_id, is_write, locks_any, locks_write
            )

        if code == _RACY:
            return LocksetOutcome(False, WordState.RACY, prev_id, prev_id)

        if self.segment_transfer:
            owner = self._seg_ids.get(tid)
            if owner is None:
                owner = self.segments.current(tid).seg_id
        else:
            owner = tid

        if code == _NEW:
            # First touch: exclusively owned by the toucher (Fig 1).
            page[slot] = (
                (packed & _LS_FIELD) | _EXCLUSIVE | ((owner + 1) << _OWNER_SHIFT)
            )
            return LocksetOutcome(False, WordState.NEW, NO_LOCKSET, NO_LOCKSET)

        if code == _EXCLUSIVE:
            cur_owner = (packed >> _OWNER_SHIFT) - 1
            if cur_owner == owner or self._transfers(cur_owner, tid, owner):
                page[slot] = (packed & _LOW) | ((owner + 1) << _OWNER_SHIFT)
                return LocksetOutcome(
                    False, WordState.EXCLUSIVE, NO_LOCKSET, NO_LOCKSET
                )
            # Second (unordered) owner: initialise the candidate set with
            # the locks held *now* — Eraser's delayed initialisation.
            if is_write:
                new_id = locks_write
                race = new_id == EMPTY_ID
                new_code = (
                    _RACY if race and self.once_per_word else _SHARED_MOD
                )
            else:
                new_id = locks_any
                race = False
                new_code = _SHARED
            page[slot] = (
                (packed & _KEEP_OWNER) | new_code | ((new_id + 1) << _LS_SHIFT)
            )
            return LocksetOutcome(race, WordState.EXCLUSIVE, prev_id, new_id)

        if code == _SHARED:
            if is_write:
                new_id = LOCKSETS.intersect(prev_id, locks_write)
                race = new_id == EMPTY_ID
                new_code = (
                    _RACY if race and self.once_per_word else _SHARED_MOD
                )
            else:
                new_id = LOCKSETS.intersect(prev_id, locks_any)
                race = False  # read-only sharing never warns
                new_code = _SHARED
            page[slot] = (
                (packed & _KEEP_OWNER) | new_code | ((new_id + 1) << _LS_SHIFT)
            )
            return LocksetOutcome(race, WordState.SHARED, prev_id, new_id)

        # SHARED_MODIFIED: both reads and writes refine and may warn.
        new_id = LOCKSETS.intersect(
            prev_id, locks_write if is_write else locks_any
        )
        race = new_id == EMPTY_ID
        new_code = _RACY if race and self.once_per_word else _SHARED_MOD
        page[slot] = (
            (packed & _KEEP_OWNER) | new_code | ((new_id + 1) << _LS_SHIFT)
        )
        return LocksetOutcome(race, WordState.SHARED_MODIFIED, prev_id, new_id)

    def access_check(
        self,
        addr: int,
        tid: int,
        is_write: bool,
        locks_any: int,
        locks_write: int,
    ) -> LocksetOutcome | None:
        """Hot-path twin of :meth:`access`: ``None`` unless it races.

        Identical state semantics, but the overwhelmingly common
        non-race outcome allocates nothing — no :class:`LocksetOutcome`
        per access.  ``locks_any`` / ``locks_write`` must already be
        interned ids (the Helgrind detector precomputes them).
        """
        if not self.use_states:
            outcome = LocksetMachine.access(
                self, addr, tid, is_write=is_write,
                locks_any=locks_any, locks_write=locks_write,
            )
            return outcome if outcome.race else None

        pages = self._pages
        pi = addr >> _PAGE_BITS
        page = pages.get(pi)
        if page is None:
            page = _ZERO_PAGE[:]
            pages[pi] = page
            self._page_copies += 1
        slot = addr & _PAGE_MASK
        packed = page[slot]
        code = packed & _ST_MASK

        if code == _EXCLUSIVE:
            if self.segment_transfer:
                owner = self._seg_ids.get(tid)
                if owner is None:
                    owner = self.segments.current(tid).seg_id
            else:
                owner = tid
            cur_owner = (packed >> _OWNER_SHIFT) - 1
            if cur_owner == owner:
                return None
            if self._transfers(cur_owner, tid, owner):
                page[slot] = (packed & _LOW) | ((owner + 1) << _OWNER_SHIFT)
                return None
            if is_write:
                new_id = locks_write
                if new_id == EMPTY_ID:
                    new_code = _RACY if self.once_per_word else _SHARED_MOD
                    page[slot] = (packed & _KEEP_OWNER) | new_code | (
                        (new_id + 1) << _LS_SHIFT
                    )
                    prev_id = ((packed >> _LS_SHIFT) & _LS_MASK) - 1
                    return LocksetOutcome(
                        True, WordState.EXCLUSIVE, prev_id, new_id
                    )
                new_code = _SHARED_MOD
            else:
                new_id = locks_any
                new_code = _SHARED
            page[slot] = (
                (packed & _KEEP_OWNER) | new_code | ((new_id + 1) << _LS_SHIFT)
            )
            return None

        if code == _SHARED_MOD or code == _SHARED:
            # The SHARED/SHARED_MOD step is a *pure* function of the
            # word's low bits (state + candidate-set id), the access
            # direction and the effective held-set id: lockset ids are
            # interned in the append-only process-global LOCKSETS table
            # and intersection is deterministic, so a memoized result
            # never needs invalidation.  Key and value are single ints
            # (key: low | is_write | held; value: new_low | race bit).
            held = locks_write if is_write else locks_any
            low = packed & _LOW
            memo = self._memo
            if memo is not None:
                key = (((low << 1) | is_write) << _LS_BITS) | held
                value = memo.get(key)
                if value is not None:
                    self._memo_hits += 1
                    new_low = value >> 1
                    if new_low != low:
                        page[slot] = (packed & _KEEP_OWNER) | new_low
                    if value & 1:
                        return LocksetOutcome(
                            True,
                            _STATE_OF_CODE[code],
                            ((low >> _LS_SHIFT) & _LS_MASK) - 1,
                            ((new_low >> _LS_SHIFT) & _LS_MASK) - 1,
                        )
                    return None
            prev_id = ((low >> _LS_SHIFT) & _LS_MASK) - 1
            new_id = LOCKSETS.intersect(prev_id, held)
            if code == _SHARED and not is_write:
                race = False
                new_code = _SHARED  # read-only sharing never warns
            else:
                race = new_id == EMPTY_ID
                new_code = _RACY if race and self.once_per_word else _SHARED_MOD
            new_low = new_code | ((new_id + 1) << _LS_SHIFT)
            if new_low != low:
                page[slot] = (packed & _KEEP_OWNER) | new_low
            if memo is not None:
                if len(memo) >= _MEMO_CAP:
                    memo.clear()
                    self._memo_evictions += 1
                self._memo_misses += 1
                memo[key] = (new_low << 1) | race
            if race:
                return LocksetOutcome(True, _STATE_OF_CODE[code], prev_id, new_id)
            return None

        if code == _NEW:
            if self.segment_transfer:
                owner = self._seg_ids.get(tid)
                if owner is None:
                    owner = self.segments.current(tid).seg_id
            else:
                owner = tid
            page[slot] = (
                (packed & _LS_FIELD) | _EXCLUSIVE | ((owner + 1) << _OWNER_SHIFT)
            )
            return None

        return None  # RACY: stopped tracking

    def _raw_access(
        self, page, slot, packed, code, prev_id, is_write, locks_any, locks_write
    ) -> LocksetOutcome:
        """§2.3.2's basic algorithm: no states, immediate checking."""
        if code == _RACY:
            return LocksetOutcome(False, WordState.RACY, prev_id, prev_id)
        held = locks_write if is_write else locks_any
        new_id = held if prev_id == NO_LOCKSET else LOCKSETS.intersect(prev_id, held)
        race = new_id == EMPTY_ID
        if race and self.once_per_word:
            new_code = _RACY
        else:
            new_code = _SHARED_MOD if is_write else _SHARED
        page[slot] = (
            (packed & _KEEP_OWNER) | new_code | ((new_id + 1) << _LS_SHIFT)
        )
        return LocksetOutcome(race, _STATE_OF_CODE[code], prev_id, new_id)

    # ------------------------------------------------------------------

    def _owner_token(self, tid: int) -> int:
        if self.segment_transfer:
            return self.segments.current(tid).seg_id
        return tid

    def _transfers(self, cur_owner: int, tid: int, owner: int) -> bool:
        """Does this access keep the word EXCLUSIVE (new owner token)?

        With segment transfer, a later segment of the owning thread, or
        any segment the owner happens-before, takes over ownership (the
        VisualThreads rule).  Callers have already excluded the
        ``cur_owner == owner`` fast case.
        """
        if not self.segment_transfer:
            return False
        owner_seg = self.segments.segment(cur_owner)
        if owner_seg.tid == tid:
            return True  # same thread, later segment: trivially ordered
        return self.segments.happens_before(cur_owner, owner)

    @property
    def tracked_words(self) -> int:
        """Number of shadow words not in the pristine NEW state."""
        return sum(
            _PAGE_SIZE - page.count(0) for page in self._pages.values()
        )
