"""The Eraser candidate-lock-set algorithm with the Figure 1 state machine.

This module implements the per-word shadow state of the paper's §2.3.2:

* The raw Eraser rule — ``C(v) := C(v) ∩ locks_held(t)``, warn on empty —
  refined with read/write lock modes (reads check locks held in *any*
  mode, writes check locks held in *write* mode),
* the Figure 1 state machine (NEW → EXCLUSIVE → SHARED / SHARED-MODIFIED)
  that forgives single-owner initialisation and read-only sharing, and
* the VisualThreads thread-segment transfer rule (§2.3.2 "Thread
  Segments"): EXCLUSIVE data touched by a *later* (happens-after)
  segment changes owner instead of going shared.

Both refinements are individually switchable so experiment E10 can
ablate them (``use_states`` / ``segment_transfer``).

The class is policy-free about what "locks are held" means: callers pass
the effective lock-sets per access, which is where the paper's hardware
bus-lock modelling (HWLC) plugs in — see
:class:`repro.detectors.helgrind.HelgrindDetector`.
"""

from __future__ import annotations

import enum

from repro.detectors.segments import SegmentGraph

__all__ = [
    "WordState",
    "ShadowWord",
    "LocksetMachine",
    "LocksetOutcome",
    "LocksetTable",
    "LOCKSETS",
    "EMPTY_ID",
    "NO_LOCKSET",
]


class WordState(enum.Enum):
    """Figure 1's states for one shadow word."""

    NEW = "new"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"            # read-only sharing ("shared RO")
    SHARED_MODIFIED = "shared-modified"
    #: A race was already reported here; stop tracking to avoid
    #: cascading duplicate reports (Helgrind does the same).
    RACY = "racy"


class LocksetTable:
    """Interning of lock-sets as small integer ids (Eraser's "lockset
    indexes" optimisation).

    Eraser observed that a program only ever materialises a small number
    of *distinct* lock-sets, so it represents each candidate set C(v) by
    a small integer index into a table of sets and memoizes pairwise
    intersections — the per-access work drops from a set intersection to
    a dictionary lookup on a pair of ints.  We reproduce that here:

    * :meth:`id_of` interns a frozenset and returns its id (stable for
      the lifetime of the process; the empty set is always
      :data:`EMPTY_ID` ``== 0``, so "is the candidate set empty?" is an
      integer comparison).
    * :meth:`intersect` intersects two ids with a symmetric memo cache,
      computing the underlying ``frozenset &`` at most once per
      unordered id pair.

    The table is append-only and process-wide (:data:`LOCKSETS`), like
    Valgrind's ExeContext table: guest programs hold a bounded number of
    distinct lock combinations while the access stream is unbounded.
    """

    __slots__ = (
        "_sets", "_ids", "_isect", "_with", "_without",
        "_intern_hits", "_intern_misses", "_isect_hits", "_isect_misses",
        "_with_hits", "_with_misses", "_wo_hits", "_wo_misses",
    )

    #: Memo operations tallied by :meth:`stats`.
    _OPS = ("intern", "intersect", "with", "without")

    def __init__(self) -> None:
        empty: frozenset[int] = frozenset()
        #: id → members, append-only.
        self._sets: list[frozenset[int]] = [empty]
        #: members → id.
        self._ids: dict[frozenset[int], int] = {empty: 0}
        #: memoized intersections keyed by (min_id, max_id).
        self._isect: dict[tuple[int, int], int] = {}
        #: memoized single-lock add/remove keyed by (set_id, lock_id) —
        #: the lock acquire/release path updates held-set ids through
        #: these without ever materialising a frozenset.
        self._with: dict[tuple[int, int], int] = {}
        self._without: dict[tuple[int, int], int] = {}
        #: Per-operation memo effectiveness.  Plain int *slots*, not a
        #: dict: these bump on the per-access hot path, and a slotted
        #: attribute add is the cheapest counter Python has.  Read by
        #: the telemetry layer via :meth:`stats`; ``intersect`` hits
        #: include the ``a == b`` / empty-set shortcuts — they answer
        #: without touching a frozenset, which is what the hit rate is
        #: measuring.
        self._intern_hits = 0
        self._intern_misses = 0
        self._isect_hits = 0
        self._isect_misses = 0
        self._with_hits = 0
        self._with_misses = 0
        self._wo_hits = 0
        self._wo_misses = 0

    def id_of(self, locks) -> int:
        """Intern ``locks`` (any iterable of lock ids) and return its id."""
        s = locks if type(locks) is frozenset else frozenset(locks)
        sid = self._ids.get(s)
        if sid is None:
            sid = len(self._sets)
            self._sets.append(s)
            self._ids[s] = sid
            self._intern_misses += 1
        else:
            self._intern_hits += 1
        return sid

    def members(self, sid: int) -> frozenset[int]:
        """The frozenset a lock-set id stands for."""
        return self._sets[sid]

    def intersect(self, a: int, b: int) -> int:
        """Id of ``members(a) & members(b)`` (memoized, symmetric)."""
        if a == b:
            self._isect_hits += 1
            return a
        if a == EMPTY_ID or b == EMPTY_ID:
            self._isect_hits += 1
            return EMPTY_ID
        key = (a, b) if a < b else (b, a)
        cached = self._isect.get(key)
        if cached is None:
            self._isect_misses += 1
            cached = self.id_of(self._sets[a] & self._sets[b])
            self._isect[key] = cached
        else:
            self._isect_hits += 1
        return cached

    def with_lock(self, sid: int, lock_id: int) -> int:
        """Id of ``members(sid) | {lock_id}`` (memoized).

        One dict hit in the steady state — lock acquisition walks the
        held-set id forward without building a set.
        """
        key = (sid, lock_id)
        cached = self._with.get(key)
        if cached is None:
            self._with_misses += 1
            members = self._sets[sid]
            cached = sid if lock_id in members else self.id_of(members | {lock_id})
            self._with[key] = cached
        else:
            self._with_hits += 1
        return cached

    def without_lock(self, sid: int, lock_id: int) -> int:
        """Id of ``members(sid) - {lock_id}`` (memoized)."""
        key = (sid, lock_id)
        cached = self._without.get(key)
        if cached is None:
            self._wo_misses += 1
            members = self._sets[sid]
            cached = self.id_of(members - {lock_id}) if lock_id in members else sid
            self._without[key] = cached
        else:
            self._wo_hits += 1
        return cached

    def stats(self) -> dict[str, int]:
        """Interning/memo effectiveness (telemetry input).

        Keys: ``size`` plus ``{op}_hits`` / ``{op}_misses`` for each of
        ``intern``, ``intersect``, ``with``, ``without``.
        """
        return {
            "size": len(self._sets),
            "intern_hits": self._intern_hits,
            "intern_misses": self._intern_misses,
            "intersect_hits": self._isect_hits,
            "intersect_misses": self._isect_misses,
            "with_hits": self._with_hits,
            "with_misses": self._with_misses,
            "without_hits": self._wo_hits,
            "without_misses": self._wo_misses,
        }

    def __len__(self) -> int:
        """Number of distinct lock-sets interned so far."""
        return len(self._sets)

    @property
    def intersections_memoized(self) -> int:
        """Size of the intersection memo (introspection for tests)."""
        return len(self._isect)


#: Id of the empty lock-set — ``lockset_id == EMPTY_ID`` ⇔ "no common lock".
EMPTY_ID = 0

#: Sentinel id for "candidate set not initialised yet" (Eraser's delayed
#: lock-set initialisation; distinct from *empty*).
NO_LOCKSET = -1

#: The process-wide lock-set table (one per process, like ExeContexts).
LOCKSETS = LocksetTable()


class ShadowWord:
    """Per-word shadow state.

    ``owner`` is a thread-segment id while EXCLUSIVE (or a thread id
    when segment transfer is disabled — the ablated configuration).
    ``lockset_id`` is the *interned id* of the candidate set C(v) in
    :data:`LOCKSETS`; :data:`NO_LOCKSET` until initialised, which
    implements Eraser's *delayed lock-set initialisation* — the root of
    the §4.3 false negatives.  The :attr:`lockset` property materialises
    the frozenset for callers off the hot path.  ``last_access`` is the
    optional conflict history ``(tid, was_write, stack)`` maintained
    when the machine runs with ``access_history``.
    """

    __slots__ = ("state", "owner", "lockset_id", "last_access", "last_other")

    def __init__(
        self,
        state: WordState = WordState.NEW,
        owner: int = -1,
        lockset_id: int = NO_LOCKSET,
    ) -> None:
        self.state = state
        self.owner = owner
        self.lockset_id = lockset_id
        self.last_access: tuple | None = None
        #: The most recent access by a thread *other* than
        #: ``last_access``'s, so a warning can always show the other side
        #: of the conflict even when the racing thread's own accesses are
        #: the freshest.
        self.last_other: tuple | None = None

    @property
    def lockset(self) -> frozenset[int] | None:
        """The candidate set as a frozenset (``None`` = uninitialised)."""
        sid = self.lockset_id
        return None if sid == NO_LOCKSET else LOCKSETS.members(sid)

    @lockset.setter
    def lockset(self, value: frozenset[int] | None) -> None:
        self.lockset_id = NO_LOCKSET if value is None else LOCKSETS.id_of(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShadowWord(state={self.state.value!r}, owner={self.owner}, "
            f"lockset={self.lockset!r})"
        )


class LocksetOutcome:
    """Result of feeding one access through the machine.

    Stores interned lock-set ids; the :attr:`prev_lockset` /
    :attr:`lockset` properties materialise frozensets lazily, so the hot
    path (which only reads :attr:`race`) never touches a set object.
    """

    __slots__ = ("race", "prev_state", "prev_lockset_id", "lockset_id")

    def __init__(
        self,
        race: bool,
        prev_state: WordState,
        prev_lockset_id: int,
        lockset_id: int,
    ) -> None:
        #: True if this access makes the candidate set empty in a state
        #: where Eraser reports ("issue warning").
        self.race = race
        #: State before the access (for the "Previous state:" report line).
        self.prev_state = prev_state
        #: Interned id of the candidate set before the access.
        self.prev_lockset_id = prev_lockset_id
        #: Interned id of the candidate set after the access.
        self.lockset_id = lockset_id

    @property
    def prev_lockset(self) -> frozenset[int] | None:
        """Candidate lock-set before the access (None = uninitialised)."""
        sid = self.prev_lockset_id
        return None if sid == NO_LOCKSET else LOCKSETS.members(sid)

    @property
    def lockset(self) -> frozenset[int] | None:
        """Candidate lock-set after the access."""
        sid = self.lockset_id
        return None if sid == NO_LOCKSET else LOCKSETS.members(sid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocksetOutcome(race={self.race}, prev_state={self.prev_state.value!r}, "
            f"prev_lockset={self.prev_lockset!r}, lockset={self.lockset!r})"
        )


class LocksetMachine:
    """Shadow-memory state machine over guest words.

    Parameters
    ----------
    segments:
        The thread-segment graph used for EXCLUSIVE ownership transfer.
    use_states:
        Figure 1 machine on/off.  Off = the "basic algorithm" of §2.3.2:
        the candidate set is initialised at the *first* access and every
        empty intersection warns — many more false positives (E10).
    segment_transfer:
        VisualThreads rule on/off.  Off = ownership is per *thread*;
        any second thread moves the word to a shared state.
    """

    def __init__(
        self,
        segments: SegmentGraph,
        *,
        use_states: bool = True,
        segment_transfer: bool = True,
        once_per_word: bool = True,
    ) -> None:
        self.segments = segments
        self.use_states = use_states
        self.segment_transfer = segment_transfer
        #: True = Eraser's "report the next write access that results in
        #: an empty lock-set" (one report per word, then RACY).  False =
        #: Helgrind's behaviour on a large application: every
        #: empty-lock-set access keeps reporting, and the report layer
        #: deduplicates by call stack — this is what lets one racy word
        #: produce warnings at many distinct program locations, the way
        #: the paper's location counts reach the hundreds.
        self.once_per_word = once_per_word
        #: Keep the last access (tid, was_write, stack) per word so that
        #: warnings can show the *other* side of the conflict, the way
        #: later Helgrind versions do with --history-level.  Off by
        #: default: it stores a stack per shadow word.
        self.access_history = False
        self._words: dict[int, ShadowWord] = {}
        #: ``(prev WordState, new WordState) -> count`` when transition
        #: tracking is on (the telemetry layer's Figure-5-style matrix);
        #: ``None`` — and zero per-access cost — otherwise.
        self.transition_counts: dict[tuple[WordState, WordState], int] | None = None

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def enable_transition_tracking(self) -> None:
        """Start recording the state-transition matrix.

        Implemented by shadowing :meth:`access` with a counting wrapper
        *on this instance*, so the untracked machine keeps the PR-1
        fast path untouched (no per-access ``if``).
        """
        if self.transition_counts is None:
            self.transition_counts = {}
            self.access = self._traced_access  # instance attr wins lookup

    def _traced_access(
        self, addr: int, tid: int, *, is_write: bool, locks_any, locks_write
    ) -> "LocksetOutcome":
        outcome = LocksetMachine.access(
            self, addr, tid, is_write=is_write,
            locks_any=locks_any, locks_write=locks_write,
        )
        word = self._words.get(addr)
        new_state = word.state if word is not None else WordState.NEW
        key = (outcome.prev_state, new_state)
        counts = self.transition_counts
        counts[key] = counts.get(key, 0) + 1
        return outcome

    def state_distribution(self) -> dict[WordState, int]:
        """Tracked shadow words by current state (Figure-5 material)."""
        dist: dict[WordState, int] = {}
        for word in self._words.values():
            dist[word.state] = dist.get(word.state, 0) + 1
        return dist

    # ------------------------------------------------------------------
    # Shadow-memory lifecycle
    # ------------------------------------------------------------------

    def on_alloc(self, addr: int, size: int) -> None:
        """Fresh allocation: all words (re)enter NEW."""
        for a in range(addr, addr + size):
            self._words.pop(a, None)

    def on_free(self, addr: int, size: int) -> None:
        """Freed at VM level: stop tracking (memcheck's jurisdiction)."""
        for a in range(addr, addr + size):
            self._words.pop(a, None)

    def make_exclusive(self, addr: int, size: int, owner: int) -> None:
        """Force words to EXCLUSIVE(owner) — the HG_DESTRUCT semantics.

        "mark deleted memory for the race detection as exclusively owned
        by the running thread. That way, accesses by other threads during
        destruction are still detected." (§3.1)
        """
        for a in range(addr, addr + size):
            word = self._words.get(a)
            if word is None:
                word = ShadowWord()
                self._words[a] = word
            word.state = WordState.EXCLUSIVE
            word.owner = owner
            word.lockset_id = NO_LOCKSET

    def word(self, addr: int) -> ShadowWord:
        """The shadow word at ``addr`` (created in NEW on first touch)."""
        word = self._words.get(addr)
        if word is None:
            word = ShadowWord()
            self._words[addr] = word
        return word

    def state_of(self, addr: int) -> WordState:
        word = self._words.get(addr)
        return word.state if word is not None else WordState.NEW

    # ------------------------------------------------------------------
    # The access rule
    # ------------------------------------------------------------------

    def access(
        self,
        addr: int,
        tid: int,
        *,
        is_write: bool,
        locks_any,
        locks_write,
    ) -> LocksetOutcome:
        """Feed one access through the machine.

        ``locks_any`` / ``locks_write`` are the *effective* lock-sets of
        the accessing thread for this access — including any virtual
        locks the caller's hardware model injects (the bus lock).  They
        may be passed either as frozensets (the original API, kept for
        tests and off-path callers) or as interned :data:`LOCKSETS` ids
        (the hot path: :class:`~repro.detectors.helgrind.HelgrindDetector`
        precomputes the ids per lock event, so the per-access cost is
        integer compares plus one memoized table lookup).
        """
        # Normalise to interned ids (ints pass through untouched).
        if type(locks_any) is not int:
            locks_any = LOCKSETS.id_of(locks_any)
        if type(locks_write) is not int:
            locks_write = LOCKSETS.id_of(locks_write)

        word = self.word(addr)
        prev_state = word.state
        prev_id = word.lockset_id
        if not self.use_states:
            return self._raw_access(
                word, prev_state, prev_id, is_write, locks_any, locks_write
            )

        if prev_state is WordState.RACY:
            return LocksetOutcome(False, prev_state, prev_id, prev_id)

        owner = self._owner_token(tid)

        if prev_state is WordState.NEW:
            # First touch: exclusively owned by the toucher (Fig 1).
            word.state = WordState.EXCLUSIVE
            word.owner = owner
            return LocksetOutcome(False, prev_state, NO_LOCKSET, NO_LOCKSET)

        if prev_state is WordState.EXCLUSIVE:
            if self._still_exclusive(word, tid, owner):
                word.owner = owner
                return LocksetOutcome(False, prev_state, NO_LOCKSET, NO_LOCKSET)
            # Second (unordered) owner: initialise the candidate set with
            # the locks held *now* — Eraser's delayed initialisation.
            if is_write:
                word.state = WordState.SHARED_MODIFIED
                new_id = locks_write
                race = new_id == EMPTY_ID
            else:
                word.state = WordState.SHARED
                new_id = locks_any
                race = False
            word.lockset_id = new_id
            if race and self.once_per_word:
                word.state = WordState.RACY
            return LocksetOutcome(race, prev_state, prev_id, new_id)

        if prev_state is WordState.SHARED:
            if is_write:
                word.state = WordState.SHARED_MODIFIED
                new_id = LOCKSETS.intersect(prev_id, locks_write)
                race = new_id == EMPTY_ID
            else:
                new_id = LOCKSETS.intersect(prev_id, locks_any)
                race = False  # read-only sharing never warns
            word.lockset_id = new_id
            if race and self.once_per_word:
                word.state = WordState.RACY
            return LocksetOutcome(race, prev_state, prev_id, new_id)

        # SHARED_MODIFIED: both reads and writes refine and may warn.
        new_id = LOCKSETS.intersect(prev_id, locks_write if is_write else locks_any)
        word.lockset_id = new_id
        race = new_id == EMPTY_ID
        if race and self.once_per_word:
            word.state = WordState.RACY
        return LocksetOutcome(race, prev_state, prev_id, new_id)

    def _raw_access(
        self, word, prev_state, prev_id, is_write, locks_any, locks_write
    ) -> LocksetOutcome:
        """§2.3.2's basic algorithm: no states, immediate checking."""
        if prev_state is WordState.RACY:
            return LocksetOutcome(False, prev_state, prev_id, prev_id)
        held = locks_write if is_write else locks_any
        new_id = held if prev_id == NO_LOCKSET else LOCKSETS.intersect(prev_id, held)
        word.lockset_id = new_id
        word.state = WordState.SHARED_MODIFIED if is_write else WordState.SHARED
        race = new_id == EMPTY_ID
        if race and self.once_per_word:
            word.state = WordState.RACY
        return LocksetOutcome(race, prev_state, prev_id, new_id)

    # ------------------------------------------------------------------

    def _owner_token(self, tid: int) -> int:
        if self.segment_transfer:
            return self.segments.current(tid).seg_id
        return tid

    def _still_exclusive(self, word: ShadowWord, tid: int, owner: int) -> bool:
        """Does this access keep the word EXCLUSIVE?

        Same owner token always does.  With segment transfer, a later
        segment of the owning thread, or any segment the owner
        happens-before, takes over ownership (the VisualThreads rule).
        """
        if word.owner == owner:
            return True
        if not self.segment_transfer:
            return False
        owner_seg = self.segments.segment(word.owner)
        if owner_seg.tid == tid:
            return True  # same thread, later segment: trivially ordered
        return self.segments.happens_before(word.owner, owner)

    @property
    def tracked_words(self) -> int:
        return len(self._words)
