"""The Eraser candidate-lock-set algorithm with the Figure 1 state machine.

This module implements the per-word shadow state of the paper's §2.3.2:

* The raw Eraser rule — ``C(v) := C(v) ∩ locks_held(t)``, warn on empty —
  refined with read/write lock modes (reads check locks held in *any*
  mode, writes check locks held in *write* mode),
* the Figure 1 state machine (NEW → EXCLUSIVE → SHARED / SHARED-MODIFIED)
  that forgives single-owner initialisation and read-only sharing, and
* the VisualThreads thread-segment transfer rule (§2.3.2 "Thread
  Segments"): EXCLUSIVE data touched by a *later* (happens-after)
  segment changes owner instead of going shared.

Both refinements are individually switchable so experiment E10 can
ablate them (``use_states`` / ``segment_transfer``).

The class is policy-free about what "locks are held" means: callers pass
the effective lock-sets per access, which is where the paper's hardware
bus-lock modelling (HWLC) plugs in — see
:class:`repro.detectors.helgrind.HelgrindDetector`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.detectors.segments import SegmentGraph

__all__ = ["WordState", "ShadowWord", "LocksetMachine", "LocksetOutcome"]


class WordState(enum.Enum):
    """Figure 1's states for one shadow word."""

    NEW = "new"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"            # read-only sharing ("shared RO")
    SHARED_MODIFIED = "shared-modified"
    #: A race was already reported here; stop tracking to avoid
    #: cascading duplicate reports (Helgrind does the same).
    RACY = "racy"


@dataclass(slots=True)
class ShadowWord:
    """Per-word shadow state.

    ``owner`` is a thread-segment id while EXCLUSIVE (or a thread id
    when segment transfer is disabled — the ablated configuration).
    ``lockset`` is the candidate set C(v); ``None`` until initialised,
    which implements Eraser's *delayed lock-set initialisation* — the
    root of the §4.3 false negatives.  ``last_access`` is the optional
    conflict history ``(tid, was_write, stack)`` maintained when the
    machine runs with ``access_history``.
    """

    state: WordState = WordState.NEW
    owner: int = -1
    lockset: frozenset[int] | None = None
    last_access: tuple | None = None
    #: The most recent access by a thread *other* than ``last_access``'s,
    #: so a warning can always show the other side of the conflict even
    #: when the racing thread's own accesses are the freshest.
    last_other: tuple | None = None


@dataclass(slots=True)
class LocksetOutcome:
    """Result of feeding one access through the machine."""

    #: True if this access makes the candidate set empty in a state
    #: where Eraser reports ("issue warning").
    race: bool
    #: State before the access (for the "Previous state:" report line).
    prev_state: WordState
    #: Candidate lock-set before the access (None = uninitialised).
    prev_lockset: frozenset[int] | None
    #: Candidate lock-set after the access.
    lockset: frozenset[int] | None


class LocksetMachine:
    """Shadow-memory state machine over guest words.

    Parameters
    ----------
    segments:
        The thread-segment graph used for EXCLUSIVE ownership transfer.
    use_states:
        Figure 1 machine on/off.  Off = the "basic algorithm" of §2.3.2:
        the candidate set is initialised at the *first* access and every
        empty intersection warns — many more false positives (E10).
    segment_transfer:
        VisualThreads rule on/off.  Off = ownership is per *thread*;
        any second thread moves the word to a shared state.
    """

    def __init__(
        self,
        segments: SegmentGraph,
        *,
        use_states: bool = True,
        segment_transfer: bool = True,
        once_per_word: bool = True,
    ) -> None:
        self.segments = segments
        self.use_states = use_states
        self.segment_transfer = segment_transfer
        #: True = Eraser's "report the next write access that results in
        #: an empty lock-set" (one report per word, then RACY).  False =
        #: Helgrind's behaviour on a large application: every
        #: empty-lock-set access keeps reporting, and the report layer
        #: deduplicates by call stack — this is what lets one racy word
        #: produce warnings at many distinct program locations, the way
        #: the paper's location counts reach the hundreds.
        self.once_per_word = once_per_word
        #: Keep the last access (tid, was_write, stack) per word so that
        #: warnings can show the *other* side of the conflict, the way
        #: later Helgrind versions do with --history-level.  Off by
        #: default: it stores a stack per shadow word.
        self.access_history = False
        self._words: dict[int, ShadowWord] = {}

    # ------------------------------------------------------------------
    # Shadow-memory lifecycle
    # ------------------------------------------------------------------

    def on_alloc(self, addr: int, size: int) -> None:
        """Fresh allocation: all words (re)enter NEW."""
        for a in range(addr, addr + size):
            self._words.pop(a, None)

    def on_free(self, addr: int, size: int) -> None:
        """Freed at VM level: stop tracking (memcheck's jurisdiction)."""
        for a in range(addr, addr + size):
            self._words.pop(a, None)

    def make_exclusive(self, addr: int, size: int, owner: int) -> None:
        """Force words to EXCLUSIVE(owner) — the HG_DESTRUCT semantics.

        "mark deleted memory for the race detection as exclusively owned
        by the running thread. That way, accesses by other threads during
        destruction are still detected." (§3.1)
        """
        for a in range(addr, addr + size):
            word = self._words.get(a)
            if word is None:
                word = ShadowWord()
                self._words[a] = word
            word.state = WordState.EXCLUSIVE
            word.owner = owner
            word.lockset = None

    def word(self, addr: int) -> ShadowWord:
        """The shadow word at ``addr`` (created in NEW on first touch)."""
        word = self._words.get(addr)
        if word is None:
            word = ShadowWord()
            self._words[addr] = word
        return word

    def state_of(self, addr: int) -> WordState:
        word = self._words.get(addr)
        return word.state if word is not None else WordState.NEW

    # ------------------------------------------------------------------
    # The access rule
    # ------------------------------------------------------------------

    def access(
        self,
        addr: int,
        tid: int,
        *,
        is_write: bool,
        locks_any: frozenset[int],
        locks_write: frozenset[int],
    ) -> LocksetOutcome:
        """Feed one access through the machine.

        ``locks_any`` / ``locks_write`` are the *effective* lock-sets of
        the accessing thread for this access — including any virtual
        locks the caller's hardware model injects (the bus lock).
        """
        word = self.word(addr)
        prev_state = word.state
        prev_lockset = word.lockset
        if not self.use_states:
            return self._raw_access(
                word, prev_state, prev_lockset, is_write, locks_any, locks_write
            )

        owner = self._owner_token(tid)

        if word.state is WordState.RACY:
            return LocksetOutcome(False, prev_state, prev_lockset, word.lockset)

        if word.state is WordState.NEW:
            # First touch: exclusively owned by the toucher (Fig 1).
            word.state = WordState.EXCLUSIVE
            word.owner = owner
            return LocksetOutcome(False, prev_state, None, None)

        if word.state is WordState.EXCLUSIVE:
            if self._still_exclusive(word, tid, owner):
                word.owner = owner
                return LocksetOutcome(False, prev_state, None, None)
            # Second (unordered) owner: initialise the candidate set with
            # the locks held *now* — Eraser's delayed initialisation.
            if is_write:
                word.state = WordState.SHARED_MODIFIED
                word.lockset = locks_write
                race = not word.lockset
            else:
                word.state = WordState.SHARED
                word.lockset = locks_any
                race = False
            if race and self.once_per_word:
                word.state = WordState.RACY
            return LocksetOutcome(race, prev_state, prev_lockset, word.lockset)

        if word.state is WordState.SHARED:
            if is_write:
                word.state = WordState.SHARED_MODIFIED
                word.lockset = word.lockset & locks_write
                race = not word.lockset
            else:
                word.lockset = word.lockset & locks_any
                race = False  # read-only sharing never warns
            if race and self.once_per_word:
                word.state = WordState.RACY
            return LocksetOutcome(race, prev_state, prev_lockset, word.lockset)

        # SHARED_MODIFIED: both reads and writes refine and may warn.
        word.lockset = word.lockset & (locks_write if is_write else locks_any)
        race = not word.lockset
        if race and self.once_per_word:
            word.state = WordState.RACY
        return LocksetOutcome(race, prev_state, prev_lockset, word.lockset)

    def _raw_access(
        self, word, prev_state, prev_lockset, is_write, locks_any, locks_write
    ) -> LocksetOutcome:
        """§2.3.2's basic algorithm: no states, immediate checking."""
        if word.state is WordState.RACY:
            return LocksetOutcome(False, prev_state, prev_lockset, word.lockset)
        held = locks_write if is_write else locks_any
        word.lockset = held if word.lockset is None else (word.lockset & held)
        word.state = WordState.SHARED_MODIFIED if is_write else WordState.SHARED
        race = not word.lockset
        if race and self.once_per_word:
            word.state = WordState.RACY
        return LocksetOutcome(race, prev_state, prev_lockset, word.lockset)

    # ------------------------------------------------------------------

    def _owner_token(self, tid: int) -> int:
        if self.segment_transfer:
            return self.segments.current(tid).seg_id
        return tid

    def _still_exclusive(self, word: ShadowWord, tid: int, owner: int) -> bool:
        """Does this access keep the word EXCLUSIVE?

        Same owner token always does.  With segment transfer, a later
        segment of the owning thread, or any segment the owner
        happens-before, takes over ownership (the VisualThreads rule).
        """
        if word.owner == owner:
            return True
        if not self.segment_transfer:
            return False
        owner_seg = self.segments.segment(word.owner)
        if owner_seg.tid == tid:
            return True  # same thread, later segment: trivially ordered
        return self.segments.happens_before(word.owner, owner)

    @property
    def tracked_words(self) -> int:
        return len(self._words)
