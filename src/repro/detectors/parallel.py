"""Intra-trace parallel analysis: address-space sharded replay.

The analysis tier multiplies runtime ~2.5-3x over raw recording (§4.5),
and a big recorded session is otherwise analysed strictly
single-threaded.  This module splits one RPTR trace across N worker
processes *by shadow page* and merges the results deterministically —
the merged report is **byte-identical** to a sequential replay's.

Why the partition is sound
--------------------------
The lock-set machine keys every per-word shadow state by page
(``addr >> 10`` — :mod:`repro.detectors.lockset`); a word's analysis
outcome depends on

* its own access history, **in order** — preserved, because a page's
  every access lands in exactly one shard (``page % num_shards``) and
  each shard sees its accesses in original trace order;
* the accessing threads' held lock-sets — rebuilt identically in every
  shard from the replicated ``LockAcquire``/``LockRelease`` skeleton;
* the segment graph (happens-before) — rebuilt identically from the
  replicated thread-lifecycle / queue / semaphore / condvar skeleton;
* the allocator block table (report "Address" lines) and benign-race /
  destructor annotations — replicated ``MemAlloc``/``MemFree`` /
  ``ClientRequest`` events.

So each shard computes, for every access it owns, the *exact* outcome
the sequential replay would have computed — including ``once_per_word``
suppression, which is per-word and therefore page-local.  Lock-set
*ids* differ across shards (each process interns its own
:data:`~repro.detectors.lockset.LOCKSETS` table) but warnings render
lock *names*, so report text is id-independent.

The deterministic merge
-----------------------
A helgrind warning originates from exactly one ``MemoryAccess`` event,
every event has a unique step, and a sequential
:class:`~repro.detectors.report.Report` lists warnings in
first-occurrence order — i.e. ascending step.  The merge therefore:
groups shard warnings by ``location_key``, keeps the minimum-step
warning per key, sums per-key occurrence counts and the suppressed
tally, and sorts by step.  That reconstructs the sequential report
exactly, whatever order the shards finished in.  (The merge assumes
warnings come from the partitioned access events — true for every
helgrind configuration; a detector that warned from *skeleton* events
would be double-counted and must not be sharded.)

Telemetry snapshots merge through the proven
:func:`repro.telemetry.metrics.merge_snapshots`, and shadow pages merge
through :meth:`~repro.detectors.lockset.LocksetMachine.merge_pages`
(disjoint by construction; lockset ids remapped on the way in).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.runtime import codec
from repro.runtime.events import EVENT_TYPES, MemoryAccess

__all__ = [
    "PAGE_BITS",
    "shard_of_addr",
    "partition_stats",
    "merge_reports",
    "ShardOutcome",
    "ShardedReplayResult",
    "replay_trace_sharded",
]

#: Shard partition granularity — must match the lock-set machine's
#: shadow-page size so a word's whole history stays in one shard.
PAGE_BITS = codec.DEFAULT_PAGE_BITS

_ACCESS_IDX = EVENT_TYPES.index(MemoryAccess)


def shard_of_addr(
    addr: int, num_shards: int, *, page_bits: int = PAGE_BITS
) -> int:
    """The shard that owns ``addr`` — every address maps to exactly one."""
    return (addr >> page_bits) % num_shards


def partition_stats(index: dict[int, int], num_shards: int) -> dict:
    """Summarise a block index: how skippable is this trace?

    ``pure`` blocks touch one shard (every other worker seeks past them
    undecoded); ``mixed`` blocks straddle shards and are decoded by
    each toucher with the per-row page filter.
    """
    pure = sum(1 for m in index.values() if m and not (m & (m - 1)))
    return {
        "access_blocks": len(index),
        "pure_blocks": pure,
        "mixed_blocks": len(index) - pure,
        "num_shards": num_shards,
    }


def merge_reports(parts):
    """Fold per-shard :class:`~repro.detectors.report.Report` objects
    into the report a sequential replay would have produced.

    Order-independent: min-step warning per location, summed occurrence
    counts, summed suppression tally, final ordering by step (unique
    per warning — one warning per event, one step per event).

    Predicted findings (the predictive tier's ``finalize`` post-pass)
    are partitioned out and re-appended *after* every live warning,
    sorted by ``(step, kind, message)`` — the exact order
    :meth:`PredictiveDetector.finalize` emits them sequentially.
    Address-sharded race predictions are disjoint across shards (each
    shard records only its own pages' accesses) and deadlock
    predictions come from shard 0 alone (``predict_deadlocks``), so no
    cross-shard dedup beyond the location key is needed.
    """
    from repro.detectors.report import Report, WarningKind

    predicted_kinds = (WarningKind.PREDICTED_RACE, WarningKind.PREDICTED_DEADLOCK)
    best: dict[tuple, object] = {}
    occurrences: dict[tuple, int] = {}
    predicted: dict[tuple, object] = {}
    suppressed = 0
    for part in parts:
        suppressed += part.suppressed_count
        for warning in part.warnings:
            key = warning.location_key
            if warning.kind in predicted_kinds:
                held = predicted.get(key)
                if held is None or warning.step < held.step:
                    predicted[key] = warning
                continue
            occurrences[key] = occurrences.get(key, 0) + part.occurrences.get(
                key, 1
            )
            held = best.get(key)
            if held is None or warning.step < held.step:
                best[key] = warning
    merged = Report()
    merged.suppressed_count = suppressed
    for warning in sorted(best.values(), key=lambda w: w.step):
        key = warning.location_key
        merged.warnings.append(warning)
        merged._by_location[key] = warning
        merged.occurrences[key] = occurrences[key]
    for warning in sorted(
        predicted.values(), key=lambda w: (w.step, w.kind, w.message)
    ):
        merged.add(warning)
    return merged


def _page_filtered(fn, shard: int, num_shards: int, page_bits: int):
    """Wrap a ``MemoryAccess`` handler so only owned pages reach it."""

    def filtered(event, vm, _fn=fn, _s=shard, _n=num_shards, _b=page_bits):
        if (event.addr >> _b) % _n == _s:
            _fn(event, vm)

    return filtered


def _analyze_shard(payload: tuple) -> dict:
    """One worker's whole job (module-level: picklable for the pool).

    Builds a fresh detector + replay VM, derives its skip set from the
    page-aware block index, replays its shard of the trace, and returns
    only plain picklable state: the report dict, block accounting, a
    telemetry snapshot, the segment-graph signature, and (optionally)
    the dumped shadow pages.
    """
    (
        path, config_name, shard, num_shards, page_bits, collect_shadow,
        transition_cache,
    ) = payload

    import dataclasses

    from repro.api.profiles import profile
    from repro.runtime.trace import ReplayVM, build_handler_table
    from repro.telemetry.metrics import MetricsRegistry

    data = Path(path).read_bytes()
    prof = profile(config_name)
    cfg = prof.config()
    if transition_cache is not None:
        cfg = dataclasses.replace(cfg, transition_cache=transition_cache)
    detector = prof.detector(cfg)
    if hasattr(detector, "predict_deadlocks"):
        # Deadlock prediction consumes only the replicated sync/lifecycle
        # skeleton, so every shard would predict the identical cycles —
        # leave it on for shard 0 alone.
        detector.predict_deadlocks = shard == 0
    vm = ReplayVM()
    table = build_handler_table((vm, detector), vm)

    skip: set[int] | None = None
    mixed = 0
    if num_shards > 1:
        index = codec.build_block_index(data, num_shards, page_bits=page_bits)
        bit = 1 << shard
        skip = {off for off, mask in index.items() if not mask & bit}
        mixed = sum(
            1 for mask in index.values() if mask & bit and mask != bit
        )
        # Decoded access blocks can carry foreign rows only when some
        # block straddles shards; pure blocks need no per-row filter.
        if mixed:
            table[_ACCESS_IDX] = tuple(
                _page_filtered(fn, shard, num_shards, page_bits)
                for fn in table[_ACCESS_IDX]
            )

    stats = codec.ReplayStats()
    events = codec.replay_blocks(data, table, vm, skip_blocks=skip, stats=stats)
    detector.finalize()

    registry = MetricsRegistry()
    labels = {"shard": str(shard)}
    registry.counter(
        "repro_trace_blocks_decoded_total", labels,
        help="Event blocks decoded by this replay shard",
    ).inc(stats.blocks_decoded)
    registry.counter(
        "repro_trace_blocks_skipped_type_total", labels,
        help="Blocks skipped undecoded: no handler for the event type",
    ).inc(stats.blocks_skipped_type)
    registry.counter(
        "repro_trace_blocks_skipped_shard_total", labels,
        help="Blocks skipped undecoded: pages owned by other shards",
    ).inc(stats.blocks_skipped_shard)
    registry.gauge(
        "repro_trace_shard_warnings", labels,
        help="Distinct warning locations found by this shard",
    ).set(detector.report.location_count)

    shadow = None
    if collect_shadow:
        shadow = detector.machine.dump_pages()
        # Replicated MemAlloc/MemFree range-resets materialise pages in
        # *every* shard; only the owner's copy carries access-driven
        # state, and the owner saw those same resets — so ship owned
        # pages only, keeping the merge's disjointness invariant.
        shadow["pages"] = {
            pi: page
            for pi, page in shadow["pages"].items()
            if pi % num_shards == shard
        }

    return {
        "shard": shard,
        "events": events,
        "report": detector.report.to_dict(),
        "stats": {**stats.as_dict(), "mixed_blocks_decoded": mixed},
        "snapshot": registry.snapshot(),
        "segment_signature": detector.segments.signature(),
        "shadow": shadow,
    }


@dataclass
class ShardOutcome:
    """One shard's contribution, post-merge bookkeeping view."""

    shard: int
    events: int
    warnings: int
    stats: dict
    segment_signature: tuple


@dataclass
class ShardedReplayResult:
    """What :func:`replay_trace_sharded` hands back.

    ``report`` is the merged (sequential-identical) report; ``machine``
    is a fresh :class:`~repro.detectors.lockset.LocksetMachine` holding
    the union of every shard's shadow pages when ``collect_shadow`` was
    requested (``None`` otherwise).
    """

    report: object
    events: int
    num_shards: int
    shards: list[ShardOutcome] = field(default_factory=list)
    snapshot: dict | None = None
    machine: object | None = None

    @property
    def skeleton_consistent(self) -> bool:
        """Did every shard derive the same happens-before context?"""
        signatures = {s.segment_signature for s in self.shards}
        return len(signatures) <= 1


def replay_trace_sharded(
    path,
    config: str = "hwlc+dr",
    *,
    shards: int,
    max_workers: int | None = None,
    page_bits: int = PAGE_BITS,
    collect_shadow: bool = False,
    transition_cache: bool | None = None,
) -> ShardedReplayResult:
    """Analyse a binary trace across ``shards`` worker processes.

    ``config`` is a named analysis profile
    (:mod:`repro.api.profiles` — ``original`` / ``hwlc`` / ``hwlc+dr``
    / ``predictive`` / ...); workers rebuild detector and configuration
    by name, so nothing unpicklable crosses the process boundary.  ``transition_cache``
    forces the memoized transition cache on/off in every worker
    (``None`` follows each worker process's default — forked workers
    inherit :func:`~repro.detectors.lockset.set_transition_cache_default`,
    spawned ones reset to on).  ``shards=1`` runs the
    identical code path in-process (no pool, no filter, no skip set) —
    handy as the degenerate case the byte-identity gate compares
    against.  Workers are plain forked processes reassembled in shard
    order, so the result is deterministic whatever order they finish.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    path = Path(path)
    if not codec.is_binary_trace(path):
        raise ValueError(
            f"{path} is not a binary RPTR trace; sharded replay needs the "
            "block-structured codec (record with -o trace.rptr)"
        )

    payloads = [
        (
            str(path), config, shard, shards, page_bits, collect_shadow,
            transition_cache,
        )
        for shard in range(shards)
    ]
    if shards == 1:
        parts = [_analyze_shard(payloads[0])]
    else:
        workers = max_workers or min(shards, os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(_analyze_shard, payloads))

    from repro.detectors.report import Report
    from repro.telemetry.metrics import merge_snapshots

    report = merge_reports(Report.from_dict(p["report"]) for p in parts)
    result = ShardedReplayResult(
        report=report,
        events=parts[0]["events"],
        num_shards=shards,
        shards=[
            ShardOutcome(
                shard=p["shard"],
                events=p["events"],
                warnings=len(p["report"]["warnings"]),
                stats=p["stats"],
                segment_signature=p["segment_signature"],
            )
            for p in parts
        ],
        snapshot=merge_snapshots(p["snapshot"] for p in parts),
    )
    if collect_shadow:
        from repro.detectors.lockset import LocksetMachine
        from repro.detectors.segments import SegmentGraph

        machine = LocksetMachine(SegmentGraph())
        for p in parts:
            machine.merge_pages(p["shadow"])
        result.machine = machine
    return result
