"""The predictive analysis tier: cross-thread lock sets, predicted
races, and dynamic deadlock prediction.

The on-the-fly tiers (original / HWLC / HWLC+DR) only flag what the
*observed* interleaving exhibits: a word must actually reach an empty
candidate set, a lock graph must actually be traversed in both orders by
the run at hand.  Server code is full of latent bugs those runs never
reach — the acceptance pass is green, the unlucky schedule ships.  This
module adds the offline tier that predicts them:

**Cross-thread critical sections.**  A critical section does not always
end at the thread boundary: a thread that spawns a worker *while holding
a lock* extends that lock's protection into the worker until the holder
releases it, and a message posted to a queue (or a semaphore token)
carries the poster's held locks to the receiver the same way.  Each hold
is recorded once with a shared mutable *active cell*; forked threads and
queue/semaphore receivers inherit references to the holder's cells, so
"still protected" is a single flag read no matter how far the lock
context travelled.  (The idea follows the cross-thread critical-section
work of Sulzmann et al.; the fork/join case is the one the SIP proxy's
thread-per-request architecture exercises constantly.)

**Dynamic deadlock prediction.**  Lock-order edges are drawn over the
cross-thread lock sets, so an edge ``A → B`` also appears when a helper
thread acquires ``B`` while *inheriting* ``A`` from its spawner.  A
cycle in this multi-thread graph is a predicted deadlock if it is
*feasible*: at least two distinct threads participate, and no common
gate lock guards every edge (the same gate refinement as
:class:`~repro.detectors.deadlock.LockGraphDetector`, whose graph
helpers this module shares).  Infeasible cycles are counted as
``feasibility_rejections`` instead of reported.

**Predicted races.**  Every access is recorded (deduplicated per word by
``(thread, direction, cross-thread lock set, bus mode)``, keeping the
earliest) and pairs are examined at
:meth:`PredictiveDetector.finalize`: two accesses from different
threads, at least one write, *no common guard*, and concurrent segments
form a predicted race — the schedule that overlaps them exists even
though this run kept them apart.  "Guard" honours the live tier's
hardware bus-lock model: under the HWLC rw-lock semantics a
``LOCK``-prefixed access holds the bus in write mode and a plain read
holds it in read mode, so an atomic RMW paired with a plain read is
bus-guarded exactly as §4.2.2 prescribes (COW refcounts stay quiet),
while a plain write guards nothing.  Words the live detector already
reported racy are skipped (the live warning is strictly stronger).

Everything on-the-fly is inherited unchanged from
:class:`~repro.detectors.helgrind.HelgrindDetector` configured as
``hwlc+dr``; the predictions land in the same :class:`Report` under the
``predicted-data-race`` / ``predicted-deadlock`` warning kinds when
:meth:`finalize` runs (the CLI, harness, service and sharded replay all
call it at end-of-stream).
"""

from __future__ import annotations

from collections import deque

from repro.detectors.deadlock import canonical_cycle, cycle_gate, find_cycle
from repro.detectors.helgrind import (
    BusLockModel,
    HelgrindConfig,
    HelgrindDetector,
)
from repro.detectors.report import Warning_, WarningKind
from repro.runtime.events import (
    AccessKind,
    ClientRequest,
    LockAcquire,
    LockRelease,
    MemAlloc,
    MemFree,
    MemoryAccess,
    QueueGet,
    QueuePut,
    SemPost,
    SemWait,
    ThreadCreate,
)

__all__ = ["PredictiveDetector"]

#: Sentinels for the record-bounds fast path (``_forget_range``).
_NO_LO = 1 << 62
_NO_HI = -1


class PredictiveDetector(HelgrindDetector):
    """``hwlc+dr`` plus the offline prediction post-pass.

    Live behaviour (shadow states, segments, bus-lock model, destructor
    annotations, live warnings) is exactly the base detector's; the
    additional bookkeeping rides the same dispatch handlers.  Call
    :meth:`finalize` once the event stream is complete to emit the
    predicted findings; it is idempotent, and a detector that is never
    finalized simply reports the live findings only.

    ``predict_deadlocks`` exists for address-sharded replay
    (:mod:`repro.detectors.parallel`): deadlock prediction consumes only
    the replicated sync/lifecycle skeleton, so every shard would predict
    the identical cycles — the driver leaves it on for shard 0 only.
    """

    telemetry_name = "predictive"

    def __init__(
        self, config: HelgrindConfig | None = None, *, suppressions=None
    ) -> None:
        super().__init__(
            config or HelgrindConfig.hwlc_dr().with_(name="predictive"),
            suppressions=suppressions,
        )
        #: tid -> {lock_id: (step, stack, active_cell)} — own live holds.
        self._own: dict[int, dict[int, tuple]] = {}
        #: tid -> [(lock_id, step, stack, active_cell, src_tid)] —
        #: holds inherited across fork or queue/semaphore edges; the
        #: cell is *shared* with the original holder's entry, so the
        #: holder's release retires every inherited copy at once.
        self._inherited: dict[int, list[tuple]] = {}
        #: tid -> frozenset(lock ids) — memoized cross-thread lock set,
        #: cleared wholesale on every sync/lifecycle event (rare next to
        #: the access fire-hose it accelerates).
        self._ct_cache: dict[int, frozenset] = {}
        #: Multi-thread lock-order graph over cross-thread lock sets:
        #: lock -> {lock: [tid, stack, guards, step, src_tid|None]}
        #: (guards at index 2, the layout the shared
        #: :func:`~repro.detectors.deadlock.cycle_gate` helper expects).
        self._pedges: dict[int, dict[int, list]] = {}
        self._seen_cycles: set[tuple[int, ...]] = set()
        #: Predicted-deadlock warnings stashed until :meth:`finalize`.
        self._pending: list[Warning_] = []
        #: addr -> {(tid, is_write, lockset, bus): (step, stack, seg_id)}
        #: — earliest access per distinct (thread, direction,
        #: protection).  ``bus`` is the access's hardware bus-lock mode:
        #: 0 = not held, 1 = read mode (plain read under RWLOCK),
        #: 2 = write mode (``LOCK`` prefix).
        self._accesses: dict[int, dict[tuple, tuple]] = {}
        self._rwlock_bus = (
            self.config.bus_lock_model is BusLockModel.RWLOCK
        )
        self._rec_lo = _NO_LO
        self._rec_hi = _NO_HI
        #: Words the live tier already reported — a predicted race there
        #: would be strictly weaker noise.
        self._live_racy: set[int] = set()
        #: Lock contexts attached to in-flight queue messages / sem
        #: tokens (mirrors the base class's happens-before tokens, but
        #: is maintained regardless of ``queue_hb``).
        self._queue_lockctx: dict[tuple[int, int], list] = {}
        self._sem_lockctx: dict[int, deque] = {}
        self.predict_deadlocks = True
        self._finalized = False
        self._stat_edges = 0
        self._stat_cycles_checked = 0
        self._stat_predictions = 0
        self._stat_feasibility_rejections = 0
        self._vm = None
        # Chain the prediction recorder in front of whichever
        # specialised access handler the base class bound (instance
        # attribute wins the dispatch-table lookup, same trick).
        self._base_on_access = self._on_access
        self._on_access = self._on_access_predicting

    # ------------------------------------------------------------------
    # Cross-thread lock-set bookkeeping
    # ------------------------------------------------------------------

    def _active_entries(self, tid: int) -> list[tuple]:
        """Live cross-thread holds of ``tid``: ``(lock_id, step, stack,
        src_tid|None)`` — own holds first, then still-active inherited
        ones (dead inherited entries are pruned in place), deduplicated
        by lock id (an own hold shadows an inherited copy)."""
        out: list[tuple] = []
        seen: set[int] = set()
        own = self._own.get(tid)
        if own:
            for lock_id, (step, stack, _cell) in own.items():
                out.append((lock_id, step, stack, None))
                seen.add(lock_id)
        inherited = self._inherited.get(tid)
        if inherited:
            live = [entry for entry in inherited if entry[3][0]]
            if len(live) != len(inherited):
                self._inherited[tid] = live
            for lock_id, step, stack, _cell, src in live:
                if lock_id not in seen:
                    out.append((lock_id, step, stack, src))
                    seen.add(lock_id)
        return out

    def cross_thread_locks(self, tid: int) -> frozenset[int]:
        """The lock ids protecting ``tid`` right now, own + inherited."""
        cached = self._ct_cache.get(tid)
        if cached is None:
            cached = frozenset(e[0] for e in self._active_entries(tid))
            self._ct_cache[tid] = cached
        return cached

    def _context_snapshot(self, tid: int) -> list[tuple]:
        """The live holds of ``tid`` as inheritable entries
        ``(lock_id, step, stack, cell, src_tid)`` sharing the holder's
        active cells."""
        snapshot: list[tuple] = []
        seen: set[int] = set()
        own = self._own.get(tid)
        if own:
            for lock_id, (step, stack, cell) in own.items():
                snapshot.append((lock_id, step, stack, cell, tid))
                seen.add(lock_id)
        inherited = self._inherited.get(tid)
        if inherited:
            for entry in inherited:
                if entry[3][0] and entry[0] not in seen:
                    snapshot.append(entry)
                    seen.add(entry[0])
        return snapshot

    # ------------------------------------------------------------------
    # Event handlers (each defers to the base class first)
    # ------------------------------------------------------------------

    def handler_for(self, event_type):
        """Also subscribe queue/semaphore events when ``queue_hb`` is
        off: the *lock context* must ride the message either way.  The
        happens-before graph itself still honours the configuration —
        the overridden handlers only call the segment-edge bodies when
        ``queue_hb`` says so."""
        if event_type in (QueuePut, QueueGet, SemPost, SemWait):
            name = self._DISPATCH_NAMES.get(event_type)
            return getattr(self, name) if name is not None else None
        return super().handler_for(event_type)

    def _on_lock_acquire(self, event: LockAcquire, vm) -> None:
        super()._on_lock_acquire(event, vm)
        self._ct_cache.clear()
        tid, lock_id = event.tid, event.lock_id
        prior = self._active_entries(tid)
        own = self._own.setdefault(tid, {})
        old = own.get(lock_id)
        if old is not None:
            # Re-acquire: the previous hold's critical section is over
            # for anyone who inherited it.
            old[2][0] = False
        own[lock_id] = (event.step, event.stack, [True])
        held_ids = frozenset(e[0] for e in prior)
        if lock_id in held_ids:
            return  # recursive acquire draws no new edge
        for h, _h_step, _h_stack, src in prior:
            guards = held_ids - {h, lock_id}
            edges = self._pedges.setdefault(h, {})
            witness = edges.get(lock_id)
            if witness is None:
                self._stat_edges += 1
                edges[lock_id] = [tid, event.stack, guards, event.step, src]
                cycle = find_cycle(self._pedges, lock_id, h)
                if cycle is not None:
                    self._consider_predicted_cycle(cycle, event)
            else:
                # Only locks held on every traversal can gate the edge.
                witness[2] = witness[2] & guards

    def _on_lock_release(self, event: LockRelease, vm) -> None:
        super()._on_lock_release(event, vm)
        self._ct_cache.clear()
        own = self._own.get(event.tid)
        if own:
            entry = own.pop(event.lock_id, None)
            if entry is not None:
                entry[2][0] = False  # retires every inherited copy too

    def _on_thread_create(self, event: ThreadCreate, vm) -> None:
        super()._on_thread_create(event, vm)
        self._ct_cache.clear()
        snapshot = self._context_snapshot(event.tid)
        if snapshot:
            self._inherited.setdefault(event.child_tid, []).extend(snapshot)

    def _on_queue_put(self, event: QueuePut, vm) -> None:
        if self.config.queue_hb:
            super()._on_queue_put(event, vm)
        else:
            self._last_access = None
        self._queue_lockctx[(event.queue_id, event.msg_id)] = (
            self._context_snapshot(event.tid)
        )

    def _on_queue_get(self, event: QueueGet, vm) -> None:
        if self.config.queue_hb:
            super()._on_queue_get(event, vm)
        else:
            self._last_access = None
        self._ct_cache.clear()
        snapshot = self._queue_lockctx.pop(
            (event.queue_id, event.msg_id), None
        )
        if snapshot:
            self._inherited.setdefault(event.tid, []).extend(snapshot)

    def _on_sem_post(self, event: SemPost, vm) -> None:
        if self.config.queue_hb:
            super()._on_sem_post(event, vm)
        else:
            self._last_access = None
        contexts = self._sem_lockctx.get(event.sem_id)
        if contexts is None:
            contexts = deque()
            self._sem_lockctx[event.sem_id] = contexts
        contexts.append(self._context_snapshot(event.tid))

    def _on_sem_wait(self, event: SemWait, vm) -> None:
        if self.config.queue_hb:
            super()._on_sem_wait(event, vm)
        else:
            self._last_access = None
        self._ct_cache.clear()
        contexts = self._sem_lockctx.get(event.sem_id)
        if contexts:
            snapshot = contexts.popleft()
            if snapshot:
                self._inherited.setdefault(event.tid, []).extend(snapshot)

    def _on_alloc(self, event: MemAlloc, vm) -> None:
        super()._on_alloc(event, vm)
        self._forget_range(event.addr, event.size)

    def _on_free(self, event: MemFree, vm) -> None:
        super()._on_free(event, vm)
        self._forget_range(event.addr, event.size)

    def _on_client_request(self, event: ClientRequest, vm=None) -> None:
        super()._on_client_request(event, vm)
        if event.request == "hg_clean":
            self._forget_range(event.addr, event.size)

    def _forget_range(self, base: int, size: int) -> None:
        """Drop recorded accesses for a recycled address range (alloc /
        free / ``hg_clean``), mirroring the shadow machine's forget."""
        if not self._accesses:
            return
        lo, hi = base, base + size
        if hi <= self._rec_lo or lo > self._rec_hi:
            return
        if size <= 4096:
            for addr in range(lo, hi):
                self._accesses.pop(addr, None)
        else:
            for addr in [a for a in self._accesses if lo <= a < hi]:
                del self._accesses[addr]

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------

    def _on_access_predicting(self, event: MemoryAccess, vm) -> None:
        """Base hot path plus the prediction record (one dict probe per
        access in the steady state: the dedup key usually exists)."""
        self._base_on_access(event, vm)
        addr = event.addr
        if self._benign and addr in self._benign:
            return
        if self._vm is None:
            self._vm = vm
        tid = event.tid
        lockset = self._ct_cache.get(tid)
        if lockset is None:
            lockset = frozenset(e[0] for e in self._active_entries(tid))
            self._ct_cache[tid] = lockset
        is_write = event.kind is AccessKind.WRITE
        if event.bus_locked:
            bus = 2  # LOCK prefix: bus held in write mode
        elif self._rwlock_bus and not is_write:
            bus = 1  # HWLC: every plain read holds the bus in read mode
        else:
            bus = 0  # plain write (or MUTEX model plain access)
        key = (tid, is_write, lockset, bus)
        records = self._accesses.get(addr)
        if records is None:
            records = {}
            self._accesses[addr] = records
            if addr < self._rec_lo:
                self._rec_lo = addr
            if addr > self._rec_hi:
                self._rec_hi = addr
        if key not in records:
            records[key] = (
                event.step,
                event.stack,
                self.segments.current(tid).seg_id,
            )

    def _report_race(self, event, outcome, vm) -> None:
        self._live_racy.add(event.addr)
        super()._report_race(event, outcome, vm)

    # ------------------------------------------------------------------
    # Deadlock prediction
    # ------------------------------------------------------------------

    def _consider_predicted_cycle(self, cycle: list[int], event) -> None:
        canon = canonical_cycle(cycle)
        if canon in self._seen_cycles:
            return
        self._seen_cycles.add(canon)
        self._stat_cycles_checked += 1
        ring = canon + (canon[0],)
        witnesses = [
            self._pedges.get(prior, {}).get(then)
            for prior, then in zip(ring, ring[1:])
        ]
        if any(w is None for w in witnesses):
            return  # unwitnessed edge: cannot substantiate a prediction
        # Feasibility: a single thread cannot deadlock with itself, and
        # a gate lock held across every edge serialises the paths.
        if len({w[0] for w in witnesses}) < 2:
            self._stat_feasibility_rejections += 1
            return
        if cycle_gate(self._pedges, canon) is not None:
            self._stat_feasibility_rejections += 1
            return
        names = " -> ".join(f"lock{l}" for l in ring)
        details = {
            "Cycle": names,
            "Note": "predicted from cross-thread lock sets: two threads "
            "can reach these acquisitions with no common gate lock, so "
            "an unlucky schedule deadlocks even though this run did not",
        }
        for (prior, then), witness in zip(zip(ring, ring[1:]), witnesses):
            tid, stack, _guards, step, src = witness
            where = str(stack[0]) if stack else "<no symbols>"
            line = f"thread {tid} at {where} (step {step})"
            if src is not None:
                line += f", lock{prior} inherited from thread {src}"
            details[f"Edge lock{prior} -> lock{then}"] = line
        self._pending.append(
            Warning_(
                kind=WarningKind.PREDICTED_DEADLOCK,
                message=f"Predicted deadlock: lock cycle {names}",
                tid=event.tid,
                step=event.step,
                stack=event.stack,
                addr=None,
                details=details,
            )
        )

    # ------------------------------------------------------------------
    # Race prediction (the finalize post-pass)
    # ------------------------------------------------------------------

    def _render_lockset(self, lockset: frozenset[int]) -> str:
        if not lockset:
            return "no locks"
        return "{" + ", ".join(sorted(f"lock{l}" for l in lockset)) + "}"

    def _race_warning(self, addr: int, earlier: tuple, later: tuple) -> Warning_:
        e_step, e_stack, _e_seg, e_tid, e_write, e_ls, _e_bus = earlier
        l_step, l_stack, _l_seg, l_tid, l_write, l_ls, _l_bus = later
        verb = "writing" if l_write else "reading"
        where_e = str(e_stack[0]) if e_stack else "<no symbols>"
        details = {
            "Conflicts with": (
                f"{'write' if e_write else 'read'} by thread {e_tid} "
                f"at {where_e} (step {e_step})"
            ),
            "Lock sets": (
                f"earlier {self._render_lockset(e_ls)}, "
                f"later {self._render_lockset(l_ls)} (disjoint)"
            ),
            "Note": "predicted: the accesses are unordered and no common "
            "lock protects both, so a different schedule overlaps them",
        }
        if self._vm is not None:
            block = self._vm.memory.find_block(addr)
            if block is not None:
                details["Address"] = block.describe(addr)
        return Warning_(
            kind=WarningKind.PREDICTED_RACE,
            message=f"Predicted data race {verb} variable",
            tid=l_tid,
            step=l_step,
            stack=l_stack,
            addr=addr,
            details=details,
        )

    def _drop_init_phase(self, addr: int, items: list[tuple]) -> list[tuple]:
        """Exempt the allocating thread's *init phase*: its accesses
        before any other thread ever touched the word.

        The C++ constructor idiom — allocate, fill in the fields, then
        publish the pointer under a lock — is ordered by the publishing
        hand-off, but that release/acquire edge is not in the segment
        graph (segments only carry fork/join and queue/semaphore edges),
        so without this exemption every constructed-then-shared object
        would surface as a predicted race.  The exemption mirrors what
        the live tier's EXCLUSIVE warm-up forgives, but keyed to the
        *allocating* thread rather than the first accessor — which is
        exactly why a warm-up write from a thread that did not allocate
        the word (T10's latent fault) is still predicted.

        Known blind spot (documented in docs/PREDICTIVE.md): a record is
        the *earliest* access of its dedup key, so an allocator access
        that first occurred during init and recurred identically after
        sharing is dropped wholly.
        """
        vm = self._vm
        if vm is None:
            return items
        block = vm.memory.find_block(addr)
        if block is None:
            return items
        alloc_tid = block.alloc_tid
        foreign = [it for it in items if it[3] != alloc_tid]
        if not foreign:
            return items
        first_foreign = foreign[0][0]  # items are step-sorted
        return [
            it
            for it in items
            if it[3] != alloc_tid or it[0] > first_foreign
        ]

    def _predict_races(self) -> list[Warning_]:
        warnings: list[Warning_] = []
        segments = self.segments
        for addr in sorted(self._accesses):
            if addr in self._live_racy:
                continue
            records = self._accesses[addr]
            if len(records) < 2:
                continue
            # Flatten to (step, stack, seg, tid, is_write, lockset, bus),
            # earliest first, so the reported pair is deterministic.
            items = sorted(
                (step, stack, seg, tid, is_write, lockset, bus)
                for (tid, is_write, lockset, bus), (step, stack, seg)
                in records.items()
            )
            items = self._drop_init_phase(addr, items)
            found = None
            for i, a in enumerate(items):
                for b in items[i + 1:]:
                    if a[3] == b[3]:
                        continue  # same thread
                    if not (a[4] or b[4]):
                        continue  # read/read pairs cannot race
                    if a[5] & b[5]:
                        continue  # a common mutex protects both sides
                    if a[6] and b[6] and (a[6] == 2 or b[6] == 2):
                        # Both hold the virtual bus lock, at least one
                        # in write mode: the hardware guards the pair
                        # (the HWLC refcount pattern).
                        continue
                    if segments.ordered(a[2], b[2]):
                        continue  # the graph orders them in every run
                    found = (a, b)
                    break
                if found:
                    break
            if found:
                warnings.append(self._race_warning(addr, *found))
        return warnings

    # ------------------------------------------------------------------
    # The offline post-pass
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Emit the predicted findings into :attr:`report` (idempotent).

        Ordering is deterministic — ``(step, kind, message)`` — and
        matches what sharded replay's merge reconstructs from per-shard
        finalize passes, keeping sequential and sharded reports
        byte-identical.
        """
        if self._finalized:
            return
        self._finalized = True
        predicted = list(self._pending) if self.predict_deadlocks else []
        predicted.extend(self._predict_races())
        predicted.sort(key=lambda w: (w.step, w.kind, w.message))
        self._stat_predictions = len(predicted)
        for warning in predicted:
            self.report.add(warning)

    def predict_stats(self) -> dict[str, int]:
        return {
            "edges": self._stat_edges,
            "cycles_checked": self._stat_cycles_checked,
            "predictions": self._stat_predictions,
            "feasibility_rejections": self._stat_feasibility_rejections,
        }
