"""RaceTrack-style adaptive race detection (the paper's reference [16]).

Yu, Rodeheffer & Chen, *RaceTrack: efficient detection of data race
conditions via adaptive tracking* (SOSP 2005) — cited by the paper as
the state of the practice on Microsoft's CLR.  RaceTrack's insight
bridges the two families the paper contrasts in §2.2:

* Pure lock-set (Eraser) never forgets: once a location went shared its
  candidate set only shrinks, so ownership hand-offs (Figures 10/11)
  produce permanent false positives unless patched with thread segments.
* Pure happens-before (DJIT) forgets too much: it only sees the current
  interleaving.

RaceTrack keeps, per location, a **threadset** — the set of accessor
epochs ``(thread, clock)`` not yet ordered before the current access —
pruned with vector clocks on every access.  While the threadset has a
single element the location is effectively private and its lock-set is
*reset*; only while it is genuinely shared does the Eraser intersection
rule apply.  The result handles fork/join and queue hand-offs with no
segment machinery: when all previous accessors are ordered before you,
you own the location again.

This implementation is the algorithm's core (threadset pruning +
adaptive lock-set) over this repository's event vocabulary, reusing
:class:`~repro.detectors.djit.DjitDetector` as the vector-clock engine.
Simplifications relative to the SOSP paper: no adaptive granularity
escalation (we are always word-granular) and no report post-filtering
heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detectors.dispatch import EventDispatcher, combine_handlers
from repro.detectors.djit import DjitDetector
from repro.detectors.report import Report, Warning_, WarningKind
from repro.runtime.events import LockAcquire, LockRelease, MemoryAccess

__all__ = ["RaceTrackDetector"]


@dataclass(slots=True)
class _Accessor:
    """One thread's standing in a word's threadset."""

    clock: int
    #: This thread performed at least one write in the current epoch.
    wrote: bool = False
    #: Every access this thread made in the current epoch carried the
    #: bus-lock prefix (atomic); one plain access clears it.
    all_locked: bool = True


@dataclass(slots=True)
class _TrackState:
    """Per-word adaptive state.

    ``lockset`` is the Eraser candidate set, live only while the
    threadset is plural (``None`` encodes the universal set — the
    private phase).
    """

    threadset: dict[int, _Accessor] = field(default_factory=dict)
    lockset: frozenset[int] | None = None


class RaceTrackDetector(EventDispatcher):
    """Adaptive threadset × lock-set detector (register on a VM/replay).

    ``atomic_aware`` follows the same convention as
    :class:`DjitDetector`: a pair of bus-locked accesses never races.
    """

    #: ``detector`` label value in the telemetry layer.
    telemetry_name = "racetrack"

    def __init__(self, *, atomic_aware: bool = True) -> None:
        self.report = Report()
        self.atomic_aware = atomic_aware
        #: Vector-clock engine, fed every non-access event.
        self._hb = DjitDetector()
        #: tid -> set of held lock ids (mode does not matter here; the
        #: original RaceTrack has no rw refinement either).
        self._held: dict[int, set[int]] = {}
        self._state: dict[int, _TrackState] = {}
        #: Per-instance route cache (event type -> composed handler).
        self._routes: dict[type, object] = {}

    # ------------------------------------------------------------------

    def handler_for(self, event_type):
        """Dispatch-table ABI: accesses stay here; lock events update
        the held-set *then* feed the vector-clock engine; every other
        type goes to the engine alone (if it subscribes)."""
        try:
            return self._routes[event_type]
        except KeyError:
            pass
        if event_type is MemoryAccess:
            fn = self._on_access
        elif event_type is LockAcquire:
            fn = combine_handlers(
                self._on_lock_acquire, self._hb.handler_for(event_type)
            )
        elif event_type is LockRelease:
            fn = combine_handlers(
                self._on_lock_release, self._hb.handler_for(event_type)
            )
        else:
            # Vector clocks (threads, queues, semaphores, barriers, ...).
            fn = self._hb.handler_for(event_type)
        self._routes[event_type] = fn
        return fn

    def _on_lock_acquire(self, event: LockAcquire, vm=None) -> None:
        self._held.setdefault(event.tid, set()).add(event.lock_id)

    def _on_lock_release(self, event: LockRelease, vm=None) -> None:
        self._held.get(event.tid, set()).discard(event.lock_id)

    # ------------------------------------------------------------------

    def _on_access(self, event: MemoryAccess, vm) -> None:
        state = self._state.get(event.addr)
        if state is None:
            state = _TrackState()
            self._state[event.addr] = state
        vc = self._hb._clock(event.tid)
        tid = event.tid
        threadset = state.threadset

        # 1. Prune: drop accessors ordered before this access.
        stale = [
            other
            for other, acc in threadset.items()
            if other != tid and vc.covers(other, acc.clock)
        ]
        for other in stale:
            del threadset[other]

        # 2. Record this access in the threadset.
        mine = threadset.get(tid)
        if mine is None:
            mine = _Accessor(clock=vc.get(tid))
            threadset[tid] = mine
        mine.clock = vc.get(tid)
        mine.wrote = mine.wrote or event.is_write
        mine.all_locked = mine.all_locked and event.bus_locked

        if len(threadset) <= 1:
            # Private again — the adaptive reset Eraser lacks.
            state.lockset = None
            return

        # 3. Shared phase: (re)initialise or refine the candidate set.
        locks = frozenset(self._held.get(tid, ()))
        if state.lockset is None:
            state.lockset = locks
        else:
            state.lockset = state.lockset & locks
        if state.lockset:
            return

        # 4. Race rule: plural threadset, empty candidate set, a write
        #    involved, and the pair not excused as atomic-atomic.
        current_locked = event.bus_locked
        conflicting = []
        for other, acc in threadset.items():
            if other == tid:
                continue
            if not (event.is_write or acc.wrote):
                continue  # read-only sharing is fine
            if self.atomic_aware and current_locked and acc.all_locked:
                continue  # atomic pair: synchronisation, not data
            conflicting.append((other, acc))
        if conflicting:
            self._warn(event, vm, conflicting)

    def _warn(self, event: MemoryAccess, vm, conflicting) -> None:
        verb = "writing" if event.is_write else "reading"
        others = ", ".join(f"t{other}@{acc.clock}" for other, acc in conflicting)
        details = {
            "Threadset": f"concurrent accessors: {others}",
            "Candidate set": "empty",
        }
        if vm is not None:
            block = vm.memory.find_block(event.addr)
            if block is not None:
                details["Address"] = block.describe(event.addr)
        self.report.add(
            Warning_(
                kind=WarningKind.DATA_RACE,
                message=f"Adaptive race {verb} variable",
                tid=event.tid,
                step=event.step,
                stack=event.stack,
                addr=event.addr,
                details=details,
            )
        )

    # ------------------------------------------------------------------

    def telemetry_summary(self) -> dict[str, float]:
        """Size gauges for ``repro_detector_state`` (telemetry layer)."""
        plural = sum(1 for s in self._state.values() if len(s.threadset) > 1)
        return {
            "tracked_words": len(self._state),
            "plural_words": plural,
            "hb_thread_clocks": len(self._hb._clocks),
        }

    def threadset_of(self, addr: int) -> dict[int, tuple[int, bool]]:
        """Current threadset of a word, as ``tid -> (clock, wrote)``."""
        state = self._state.get(addr)
        if state is None:
            return {}
        return {t: (a.clock, a.wrote) for t, a in state.threadset.items()}
