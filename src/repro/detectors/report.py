"""Warning records and report aggregation.

Helgrind prints one multi-line warning per *dynamic* detection, but the
paper's metric (Figure 6) is the number of **reported locations**: the
distinct program points warnings point at ("483 reported possible data
race locations").  :class:`Report` therefore deduplicates warnings by
(kind, innermost frame) while still counting dynamic occurrences, and
:meth:`Warning_.format` renders the Figure-9 style text block for human
consumption.

The structured read side: :meth:`Report.findings` views every warning
as a :class:`Finding` (``kind`` ∈ ``race`` | ``deadlock`` |
``predicted_race`` | ``predicted_deadlock``), :meth:`Report.render`
produces the canonical serialisation every consumer compares
byte-for-byte (CLI ``--report-out``, service REPORT frames, the
``--finish-shards`` verifier), and :meth:`Report.to_json` is the
schema-validated machine twin (:func:`validate_report_json`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.events import CallStack, Frame

__all__ = [
    "Finding",
    "REPORT_SCHEMA_VERSION",
    "Report",
    "Warning_",
    "WarningKind",
    "validate_report_json",
]

#: Version of the :meth:`Report.to_json` document layout.
REPORT_SCHEMA_VERSION = 1


class WarningKind:
    """String constants for warning kinds (kept open for extensions)."""

    DATA_RACE = "possible-data-race"
    LOCK_ORDER = "lock-order-violation"
    DEADLOCK = "deadlock"
    #: Predictive tier: a race that did not manifest in the observed
    #: interleaving but is feasible under another schedule.
    PREDICTED_RACE = "predicted-data-race"
    #: Predictive tier: a lock-order cycle spanning cross-thread
    #: critical sections — a deadlock some schedule can reach.
    PREDICTED_DEADLOCK = "predicted-deadlock"


#: Warning kind → the coarse :class:`Finding` vocabulary.
_FINDING_KINDS = {
    WarningKind.DATA_RACE: "race",
    WarningKind.LOCK_ORDER: "deadlock",
    WarningKind.DEADLOCK: "deadlock",
    WarningKind.PREDICTED_RACE: "predicted_race",
    WarningKind.PREDICTED_DEADLOCK: "predicted_deadlock",
}


@dataclass(slots=True)
class Warning_:
    """One detector warning (named with a trailing underscore to avoid
    shadowing the built-in ``Warning``).

    ``details`` carries kind-specific extras rendered verbatim in
    :meth:`format` (previous shadow state, candidate lock-set, the
    Figure-9 block-description line, a lock cycle, ...).
    """

    kind: str
    message: str
    tid: int
    step: int
    stack: CallStack = ()
    addr: int | None = None
    details: dict = field(default_factory=dict)

    @property
    def site(self) -> Frame | None:
        """Innermost frame — the 'location' Figure 6 counts."""
        return self.stack[0] if self.stack else None

    @property
    def location_key(self) -> tuple:
        """Deduplication key: same kind at the same program point.

        Valgrind deduplicates by the *full* call stack, so two warnings
        at the same innermost function reached through different call
        paths count as two locations — that is what lets the paper's
        location counts reach the hundreds on a large application.
        """
        if not self.stack:
            # No symbol information: fall back to the address, the best
            # Helgrind itself can do without debug symbols (§3.2).
            return (self.kind, ("<unknown>", self.addr))
        return (self.kind, self.stack)

    def format(self) -> str:
        """Render a Valgrind-style multi-line warning block (cf. Fig 9)."""
        lines = [f"== {self.message}"]
        if self.addr is not None:
            lines[0] += f" at {self.addr:#x}"
        for i, frame in enumerate(self.stack):
            prefix = "==    at" if i == 0 else "==    by"
            lines.append(f"{prefix} {frame}")
        for key, value in self.details.items():
            lines.append(f"==  {key}: {value}")
        lines.append(f"==  (thread {self.tid}, step {self.step})")
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class Finding:
    """A structured, consumer-facing view of one reported location.

    ``kind`` collapses the warning-kind vocabulary to four values —
    ``race``, ``deadlock``, ``predicted_race``, ``predicted_deadlock``
    — so callers can branch on finding class without knowing every
    warning-kind string.  ``warning`` keeps the full record (message,
    details, address) for anything richer.
    """

    kind: str
    location: Frame | None
    stack: CallStack
    step: int
    tid: int
    occurrences: int
    warning: Warning_

    @property
    def predicted(self) -> bool:
        """True for findings the run never exhibited live."""
        return self.kind.startswith("predicted_")


class Report:
    """Aggregates warnings, deduplicating by location.

    ``suppressions`` (a :class:`repro.detectors.suppressions.Suppressions`)
    is consulted at :meth:`add` time, matching how Helgrind's
    suppression files filter warnings before they reach the log.
    """

    def __init__(self, suppressions=None) -> None:
        self.warnings: list[Warning_] = []
        self._by_location: dict[tuple, Warning_] = {}
        self.occurrences: dict[tuple, int] = {}
        self.suppressed_count = 0
        self.suppressions = suppressions

    def add(self, warning: Warning_) -> bool:
        """Record ``warning``; True if it is a *new* location."""
        if self.suppressions is not None and self.suppressions.matches(warning):
            self.suppressed_count += 1
            return False
        key = warning.location_key
        self.occurrences[key] = self.occurrences.get(key, 0) + 1
        if key in self._by_location:
            return False
        self._by_location[key] = warning
        self.warnings.append(warning)
        return True

    # ------------------------------------------------------------------

    @property
    def location_count(self) -> int:
        """The Figure-6 metric: distinct reported locations."""
        return len(self.warnings)

    @property
    def dynamic_count(self) -> int:
        """Total dynamic (non-suppressed) detections."""
        return sum(self.occurrences.values())

    def by_kind(self, kind: str) -> list[Warning_]:
        return [w for w in self.warnings if w.kind == kind]

    def findings(self) -> list[Finding]:
        """Every deduplicated warning as a structured :class:`Finding`,
        in report order."""
        return [
            Finding(
                kind=_FINDING_KINDS.get(w.kind, w.kind),
                location=w.site,
                stack=w.stack,
                step=w.step,
                tid=w.tid,
                occurrences=self.occurrences.get(w.location_key, 1),
                warning=w,
            )
            for w in self.warnings
        ]

    def predicted_findings(self) -> list[Finding]:
        """Just the predictive tier's output (empty on legacy tiers)."""
        return [f for f in self.findings() if f.predicted]

    def locations(self) -> list[tuple]:
        return list(self._by_location)

    def format_summary(self) -> str:
        parts = [
            f"{self.location_count} reported locations "
            f"({self.dynamic_count} dynamic occurrences, "
            f"{self.suppressed_count} suppressed)"
        ]
        kinds: dict[str, int] = {}
        for w in self.warnings:
            kinds[w.kind] = kinds.get(w.kind, 0) + 1
        for kind in sorted(kinds):
            parts.append(f"  {kind}: {kinds[kind]}")
        return "\n".join(parts)

    def format_full(self) -> str:
        """Every deduplicated warning, Figure-9 style, in report order."""
        return "\n\n".join(w.format() for w in self.warnings)

    # ------------------------------------------------------------------
    # Persistence (for CI baselines and offline triage tooling)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialise the report (warnings + occurrence counts)."""
        return {
            "suppressed_count": self.suppressed_count,
            "warnings": [
                {
                    "kind": w.kind,
                    "message": w.message,
                    "tid": w.tid,
                    "step": w.step,
                    "addr": w.addr,
                    "stack": [(f.function, f.file, f.line) for f in w.stack],
                    "details": {k: str(v) for k, v in w.details.items()},
                    "occurrences": self.occurrences.get(w.location_key, 1),
                }
                for w in self.warnings
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Report":
        """Rebuild a report saved with :meth:`to_dict`."""
        report = cls()
        report.suppressed_count = data.get("suppressed_count", 0)
        for item in data["warnings"]:
            warning = Warning_(
                kind=item["kind"],
                message=item["message"],
                tid=item["tid"],
                step=item["step"],
                stack=tuple(Frame(fn, fi, ln) for fn, fi, ln in item["stack"]),
                addr=item["addr"],
                details=dict(item.get("details", {})),
            )
            report.add(warning)
            report.occurrences[warning.location_key] = item.get("occurrences", 1)
        return report

    def render(self) -> str:
        """The canonical report text.

        This is the byte-identity contract: the CLI's ``--report-out``
        files, the service's REPORT frames, ``Session.report_text()``
        and the ``--finish-shards`` verifier all compare this exact
        string (no trailing newline).
        """
        import json

        return json.dumps(self.to_dict(), indent=2)

    def to_json(self) -> dict:
        """The structured machine twin (schema-validated, like the
        telemetry exporters): findings keyed by the coarse kind
        vocabulary plus the raw warning records.
        """
        return {
            "version": REPORT_SCHEMA_VERSION,
            "suppressed_count": self.suppressed_count,
            "location_count": self.location_count,
            "dynamic_count": self.dynamic_count,
            "findings": [
                {
                    "kind": f.kind,
                    "predicted": f.predicted,
                    "location": (
                        [f.location.function, f.location.file, f.location.line]
                        if f.location is not None
                        else None
                    ),
                    "stack": [
                        [fr.function, fr.file, fr.line] for fr in f.stack
                    ],
                    "step": f.step,
                    "tid": f.tid,
                    "occurrences": f.occurrences,
                    "message": f.warning.message,
                    "details": {
                        k: str(v) for k, v in f.warning.details.items()
                    },
                }
                for f in self.findings()
            ],
        }

    def save(self, path) -> None:
        """Write the report as JSON (exactly :meth:`render`)."""
        from pathlib import Path

        Path(path).write_text(self.render(), encoding="utf-8")

    @classmethod
    def load(cls, path) -> "Report":
        """Read a report written by :meth:`save`."""
        import json
        from pathlib import Path

        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def __len__(self) -> int:
        return len(self.warnings)

    def __iter__(self):
        return iter(self.warnings)


_FINDING_VOCABULARY = frozenset(_FINDING_KINDS.values())


def validate_report_json(doc: object) -> list[str]:
    """Structural validation of a :meth:`Report.to_json` document.

    Returns human-readable problems (empty = valid) — the same
    contract, and the same no-``jsonschema`` constraint, as
    :func:`repro.telemetry.schema.validate_snapshot`.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"report must be an object, got {type(doc).__name__}"]
    if doc.get("version") != REPORT_SCHEMA_VERSION:
        problems.append(
            f"version must be {REPORT_SCHEMA_VERSION}, "
            f"got {doc.get('version')!r}"
        )
    for key in ("suppressed_count", "location_count", "dynamic_count"):
        value = doc.get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{key} must be a non-negative integer, got {value!r}")
    findings = doc.get("findings")
    if not isinstance(findings, list):
        problems.append("findings must be a list")
        return problems
    if isinstance(doc.get("location_count"), int) and len(findings) != doc[
        "location_count"
    ]:
        problems.append(
            f"location_count is {doc['location_count']} but there are "
            f"{len(findings)} findings"
        )
    for i, finding in enumerate(findings):
        where = f"findings[{i}]"
        if not isinstance(finding, dict):
            problems.append(f"{where}: not an object")
            continue
        kind = finding.get("kind")
        if kind not in _FINDING_VOCABULARY:
            problems.append(f"{where}: unknown kind {kind!r}")
        elif finding.get("predicted") != kind.startswith("predicted_"):
            problems.append(
                f"{where}: predicted flag disagrees with kind {kind!r}"
            )
        stack = finding.get("stack")
        if not isinstance(stack, list) or not all(
            isinstance(fr, list)
            and len(fr) == 3
            and isinstance(fr[0], str)
            and isinstance(fr[1], str)
            and isinstance(fr[2], int)
            for fr in stack
        ):
            problems.append(f"{where}: stack must be a list of [fn, file, line]")
        location = finding.get("location")
        if location is not None and (
            not isinstance(location, list) or len(location) != 3
        ):
            problems.append(f"{where}: location must be null or [fn, file, line]")
        for key in ("step", "tid", "occurrences"):
            if not isinstance(finding.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        if not isinstance(finding.get("message"), str):
            problems.append(f"{where}: message must be a string")
        details = finding.get("details")
        if not isinstance(details, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in details.items()
        ):
            problems.append(f"{where}: details must be a string->string object")
    return problems
