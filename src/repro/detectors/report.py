"""Warning records and report aggregation.

Helgrind prints one multi-line warning per *dynamic* detection, but the
paper's metric (Figure 6) is the number of **reported locations**: the
distinct program points warnings point at ("483 reported possible data
race locations").  :class:`Report` therefore deduplicates warnings by
(kind, innermost frame) while still counting dynamic occurrences, and
:meth:`Warning_.format` renders the Figure-9 style text block for human
consumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.events import CallStack, Frame

__all__ = ["Warning_", "Report", "WarningKind"]


class WarningKind:
    """String constants for warning kinds (kept open for extensions)."""

    DATA_RACE = "possible-data-race"
    LOCK_ORDER = "lock-order-violation"
    DEADLOCK = "deadlock"


@dataclass(slots=True)
class Warning_:
    """One detector warning (named with a trailing underscore to avoid
    shadowing the built-in ``Warning``).

    ``details`` carries kind-specific extras rendered verbatim in
    :meth:`format` (previous shadow state, candidate lock-set, the
    Figure-9 block-description line, a lock cycle, ...).
    """

    kind: str
    message: str
    tid: int
    step: int
    stack: CallStack = ()
    addr: int | None = None
    details: dict = field(default_factory=dict)

    @property
    def site(self) -> Frame | None:
        """Innermost frame — the 'location' Figure 6 counts."""
        return self.stack[0] if self.stack else None

    @property
    def location_key(self) -> tuple:
        """Deduplication key: same kind at the same program point.

        Valgrind deduplicates by the *full* call stack, so two warnings
        at the same innermost function reached through different call
        paths count as two locations — that is what lets the paper's
        location counts reach the hundreds on a large application.
        """
        if not self.stack:
            # No symbol information: fall back to the address, the best
            # Helgrind itself can do without debug symbols (§3.2).
            return (self.kind, ("<unknown>", self.addr))
        return (self.kind, self.stack)

    def format(self) -> str:
        """Render a Valgrind-style multi-line warning block (cf. Fig 9)."""
        lines = [f"== {self.message}"]
        if self.addr is not None:
            lines[0] += f" at {self.addr:#x}"
        for i, frame in enumerate(self.stack):
            prefix = "==    at" if i == 0 else "==    by"
            lines.append(f"{prefix} {frame}")
        for key, value in self.details.items():
            lines.append(f"==  {key}: {value}")
        lines.append(f"==  (thread {self.tid}, step {self.step})")
        return "\n".join(lines)


class Report:
    """Aggregates warnings, deduplicating by location.

    ``suppressions`` (a :class:`repro.detectors.suppressions.Suppressions`)
    is consulted at :meth:`add` time, matching how Helgrind's
    suppression files filter warnings before they reach the log.
    """

    def __init__(self, suppressions=None) -> None:
        self.warnings: list[Warning_] = []
        self._by_location: dict[tuple, Warning_] = {}
        self.occurrences: dict[tuple, int] = {}
        self.suppressed_count = 0
        self.suppressions = suppressions

    def add(self, warning: Warning_) -> bool:
        """Record ``warning``; True if it is a *new* location."""
        if self.suppressions is not None and self.suppressions.matches(warning):
            self.suppressed_count += 1
            return False
        key = warning.location_key
        self.occurrences[key] = self.occurrences.get(key, 0) + 1
        if key in self._by_location:
            return False
        self._by_location[key] = warning
        self.warnings.append(warning)
        return True

    # ------------------------------------------------------------------

    @property
    def location_count(self) -> int:
        """The Figure-6 metric: distinct reported locations."""
        return len(self.warnings)

    @property
    def dynamic_count(self) -> int:
        """Total dynamic (non-suppressed) detections."""
        return sum(self.occurrences.values())

    def by_kind(self, kind: str) -> list[Warning_]:
        return [w for w in self.warnings if w.kind == kind]

    def locations(self) -> list[tuple]:
        return list(self._by_location)

    def format_summary(self) -> str:
        parts = [
            f"{self.location_count} reported locations "
            f"({self.dynamic_count} dynamic occurrences, "
            f"{self.suppressed_count} suppressed)"
        ]
        kinds: dict[str, int] = {}
        for w in self.warnings:
            kinds[w.kind] = kinds.get(w.kind, 0) + 1
        for kind in sorted(kinds):
            parts.append(f"  {kind}: {kinds[kind]}")
        return "\n".join(parts)

    def format_full(self) -> str:
        """Every deduplicated warning, Figure-9 style, in report order."""
        return "\n\n".join(w.format() for w in self.warnings)

    # ------------------------------------------------------------------
    # Persistence (for CI baselines and offline triage tooling)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialise the report (warnings + occurrence counts)."""
        return {
            "suppressed_count": self.suppressed_count,
            "warnings": [
                {
                    "kind": w.kind,
                    "message": w.message,
                    "tid": w.tid,
                    "step": w.step,
                    "addr": w.addr,
                    "stack": [(f.function, f.file, f.line) for f in w.stack],
                    "details": {k: str(v) for k, v in w.details.items()},
                    "occurrences": self.occurrences.get(w.location_key, 1),
                }
                for w in self.warnings
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Report":
        """Rebuild a report saved with :meth:`to_dict`."""
        report = cls()
        report.suppressed_count = data.get("suppressed_count", 0)
        for item in data["warnings"]:
            warning = Warning_(
                kind=item["kind"],
                message=item["message"],
                tid=item["tid"],
                step=item["step"],
                stack=tuple(Frame(fn, fi, ln) for fn, fi, ln in item["stack"]),
                addr=item["addr"],
                details=dict(item.get("details", {})),
            )
            report.add(warning)
            report.occurrences[warning.location_key] = item.get("occurrences", 1)
        return report

    def save(self, path) -> None:
        """Write the report as JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2), encoding="utf-8"
        )

    @classmethod
    def load(cls, path) -> "Report":
        """Read a report written by :meth:`save`."""
        import json
        from pathlib import Path

        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def __len__(self) -> int:
        return len(self.warnings)

    def __iter__(self):
        return iter(self.warnings)
