"""Thread segments and their happens-before graph (paper Figure 2).

VisualThreads' refinement of Eraser splits each thread's execution into
*segments* at thread-create and thread-join operations.  Memory that is
only ever touched by segments ordered by the create/join graph is still
exclusively owned — even though several *threads* touched it — so no
lock-set is needed and no warning fires.  This is what makes the
thread-per-request SIP proxy (Figure 10) analysable: the request data
passes from the acceptor segment to the worker thread's segment along a
create edge.

The paper's "future work" notes that *higher-level* synchronisation
(thread pools handing work over through queues, Figure 11) imposes
orders the create/join graph cannot see.  :class:`SegmentGraph`
optionally consumes those too (``post``/``receive``), which is how the
``extended`` detector configuration closes that gap.

Implementation: one vector clock per segment.  ``happens_before(a, b)``
is the classic component test ``V_a[owner(a)] <= V_b[owner(a)]`` — O(1)
per query after O(threads) per segment creation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Segment", "SegmentGraph"]


@dataclass(slots=True)
class Segment:
    """One thread segment: a maximal create/join-free run of a thread."""

    seg_id: int
    tid: int
    #: Vector clock: tid -> segment ordinal; V[tid] identifies this
    #: segment's position in its own thread.
    vc: dict[int, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"Segment(id={self.seg_id}, t{self.tid}, vc={self.vc})"


class SegmentGraph:
    """The happens-before DAG over thread segments.

    Drive it with the thread-lifecycle notifications; query it with
    :meth:`happens_before`.  All mutating methods return the affected
    thread's *new* current segment.
    """

    def __init__(self) -> None:
        self._segments: dict[int, Segment] = {}
        self._current: dict[int, Segment] = {}
        self._next_id = 0
        #: Final segment of each finished thread (join edges source).
        self._final: dict[int, Segment] = {}
        #: tid → current segment *id* — a mirror of ``_current`` kept so
        #: the per-memory-access owner lookup in
        #: :class:`~repro.detectors.lockset.LocksetMachine` is a plain
        #: dict hit instead of a method call plus attribute read.
        #: Maintained at the single place segments change
        #: (:meth:`_new_segment`); misses mean "thread not started yet"
        #: and fall back to :meth:`current`'s lazy start.
        self.current_ids: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _new_segment(self, tid: int, vc: dict[int, int]) -> Segment:
        seg = Segment(self._next_id, tid, vc)
        self._next_id += 1
        self._segments[seg.seg_id] = seg
        self._current[tid] = seg
        self.current_ids[tid] = seg.seg_id
        return seg

    def start_thread(self, tid: int, parent_tid: int | None = None) -> Segment:
        """Begin a thread's first segment.

        For the root thread ``parent_tid`` is ``None``.  For spawned
        threads prefer :meth:`on_create`, which also advances the parent.
        """
        if tid in self._current:
            raise ValueError(f"thread {tid} already started")
        if parent_tid is None:
            return self._new_segment(tid, {tid: 0})
        parent = self._current_of(parent_tid)
        vc = dict(parent.vc)
        vc[tid] = 0
        return self._new_segment(tid, vc)

    def on_create(self, parent_tid: int, child_tid: int) -> Segment:
        """Thread-create: ends the parent's segment, starts the child's.

        Figure 2: the parent's pre-create segment happens-before both
        the child's first segment and the parent's post-create segment.
        """
        parent = self._current_of(parent_tid)
        child_vc = dict(parent.vc)
        child_vc[child_tid] = 0
        child_seg = self._new_segment(child_tid, child_vc)
        parent_vc = dict(parent.vc)
        parent_vc[parent_tid] = parent_vc.get(parent_tid, 0) + 1
        self._new_segment(parent_tid, parent_vc)
        return child_seg

    def on_finish(self, tid: int) -> None:
        """Thread termination: freeze its final segment for join edges."""
        self._final[tid] = self._current_of(tid)

    def on_join(self, joiner_tid: int, joined_tid: int) -> Segment:
        """Thread-join: the joined thread's final segment happens-before
        the joiner's new segment."""
        joiner = self._current_of(joiner_tid)
        joined_final = self._final.get(joined_tid)
        if joined_final is None:
            # Join observed before we saw the finish event (should not
            # happen with a well-formed stream); fall back to the
            # joined thread's current segment.
            joined_final = self._current_of(joined_tid)
        vc = _join_vc(joiner.vc, joined_final.vc)
        vc[joiner_tid] = vc.get(joiner_tid, 0) + 1
        return self._new_segment(joiner_tid, vc)

    # ------------------------------------------------------------------
    # Higher-level synchronisation (the future-work extension)
    # ------------------------------------------------------------------

    def post(self, tid: int) -> dict[int, int]:
        """A release-like operation (queue put, sem post, cond signal).

        Returns a clock token capturing everything ordered before the
        post, and ends the poster's segment so that its *later* work is
        not spuriously ordered before the receiver.
        """
        seg = self._current_of(tid)
        token = dict(seg.vc)
        vc = dict(seg.vc)
        vc[tid] = vc.get(tid, 0) + 1
        self._new_segment(tid, vc)
        return token

    def receive(self, tid: int, token: dict[int, int]) -> Segment:
        """The matching acquire (queue get, sem wait): joins ``token``."""
        seg = self._current_of(tid)
        vc = _join_vc(seg.vc, token)
        vc[tid] = vc.get(tid, 0) + 1
        return self._new_segment(tid, vc)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def current(self, tid: int) -> Segment:
        """The thread's live segment (starts the thread lazily if new —
        convenient for replayed traces that begin mid-stream)."""
        seg = self._current.get(tid)
        if seg is None:
            seg = self.start_thread(tid)
        return seg

    def _current_of(self, tid: int) -> Segment:
        return self.current(tid)

    def segment(self, seg_id: int) -> Segment:
        return self._segments[seg_id]

    def happens_before(self, a: int | Segment, b: int | Segment) -> bool:
        """Strict happens-before between two segments (ids or objects)."""
        sa = a if isinstance(a, Segment) else self._segments[a]
        sb = b if isinstance(b, Segment) else self._segments[b]
        if sa.seg_id == sb.seg_id:
            return False
        return sb.vc.get(sa.tid, -1) >= sa.vc.get(sa.tid, 0)

    def ordered(self, a: int | Segment, b: int | Segment) -> bool:
        """True unless the two segments are concurrent."""
        sa = a if isinstance(a, Segment) else self._segments[a]
        sb = b if isinstance(b, Segment) else self._segments[b]
        return (
            sa.seg_id == sb.seg_id
            or self.happens_before(sa, sb)
            or self.happens_before(sb, sa)
        )

    def concurrent(self, a: int | Segment, b: int | Segment) -> bool:
        """True when neither segment happens-before the other — the
        schedules can interleave them.  The predictive tier's race
        feasibility test."""
        return not self.ordered(a, b)

    @property
    def segment_count(self) -> int:
        return self._next_id

    def signature(self) -> tuple:
        """Canonical digest of the graph's ordering-relevant state.

        A hashable value built from the per-thread current and final
        vector clocks — everything :meth:`happens_before` can observe,
        nothing it cannot (segment *ids* are excluded: their numbering
        depends on when threads were lazily started, which sharded
        replay legitimately perturbs for threads first seen at a
        filtered access).  Two graphs with equal signatures order every
        pair of current/final segments identically.  The sharded replay
        driver compares shard signatures to verify that replicating the
        sync/lifecycle skeleton really did give every worker the same
        happens-before context.
        """

        def _vc(vc: dict[int, int]) -> tuple:
            return tuple(sorted(vc.items()))

        return (
            tuple(
                sorted((tid, _vc(seg.vc)) for tid, seg in self._current.items())
            ),
            tuple(
                sorted((tid, _vc(seg.vc)) for tid, seg in self._final.items())
            ),
        )


def _join_vc(a: dict[int, int], b: dict[int, int]) -> dict[int, int]:
    """Pointwise maximum of two vector clocks."""
    out = dict(a)
    for tid, clk in b.items():
        if out.get(tid, -1) < clk:
            out[tid] = clk
    return out
