"""Valgrind-style suppression files.

Helgrind users silence known false positives (or warnings in unmodifiable
third-party code) with *suppression files* (§2.3.1): each entry names a
report kind and a call-stack pattern; warnings whose stack matches are
dropped before reaching the log.

The syntax here is a faithful subset of Valgrind's::

    {
       stringtest-rep-grab            # entry name (free text)
       possible-data-race             # warning kind
       fun:_M_grab                    # innermost frame function pattern
       fun:string::string*            # next frame outward (glob allowed)
       ...                            # skip any number of frames
       fun:main
    }

``fun:`` matches the frame's function name, ``file:`` its file; both use
``fnmatch`` globs.  A literal ``...`` line matches zero or more frames
(Valgrind's frame-ellipsis).  An entry matches when its pattern lines can
be aligned with the warning's stack from the innermost frame outward;
trailing unmatched stack frames are allowed (patterns are prefixes),
again following Valgrind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

from repro.errors import SuppressionSyntaxError

__all__ = ["SuppressionEntry", "Suppressions"]


@dataclass(slots=True)
class SuppressionEntry:
    """One parsed suppression block."""

    name: str
    kind: str
    #: Pattern lines: ("fun"|"file", glob) or ("ellipsis", "").
    patterns: list[tuple[str, str]] = field(default_factory=list)
    #: How many warnings this entry has eaten (Valgrind's -v statistic).
    hits: int = 0

    def matches(self, warning) -> bool:
        if warning.kind != self.kind:
            return False
        return self._match_frames(0, 0, warning.stack)

    def _match_frames(self, pi: int, fi: int, stack) -> bool:
        """Backtracking alignment of pattern lines against stack frames."""
        if pi == len(self.patterns):
            return True  # all pattern lines consumed: prefix match
        what, glob = self.patterns[pi]
        if what == "ellipsis":
            # Try consuming 0..remaining frames.
            for skip in range(len(stack) - fi + 1):
                if self._match_frames(pi + 1, fi + skip, stack):
                    return True
            return False
        if fi >= len(stack):
            return False
        frame = stack[fi]
        subject = frame.function if what == "fun" else frame.file
        if not fnmatchcase(subject, glob):
            return False
        return self._match_frames(pi + 1, fi + 1, stack)


class Suppressions:
    """A parsed suppression file: an ordered collection of entries."""

    def __init__(self, entries: list[SuppressionEntry] | None = None) -> None:
        self.entries = entries or []

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Suppressions":
        entries: list[SuppressionEntry] = []
        lines = text.splitlines()
        i = 0
        while i < len(lines):
            line = _strip(lines[i])
            i += 1
            if not line:
                continue
            if line != "{":
                raise SuppressionSyntaxError(
                    f"expected '{{' to open a suppression entry, got {line!r}"
                )
            body: list[str] = []
            while i < len(lines):
                line = _strip(lines[i])
                i += 1
                if line == "}":
                    break
                if line:
                    body.append(line)
            else:
                raise SuppressionSyntaxError("unterminated suppression entry")
            if len(body) < 2:
                raise SuppressionSyntaxError(
                    "suppression entry needs at least a name and a kind"
                )
            name, kind, *pattern_lines = body
            patterns: list[tuple[str, str]] = []
            for pline in pattern_lines:
                if pline == "...":
                    patterns.append(("ellipsis", ""))
                elif pline.startswith("fun:"):
                    patterns.append(("fun", pline[4:]))
                elif pline.startswith("file:"):
                    patterns.append(("file", pline[5:]))
                else:
                    raise SuppressionSyntaxError(
                        f"unknown pattern line {pline!r} "
                        "(expected 'fun:', 'file:' or '...')"
                    )
            entries.append(SuppressionEntry(name=name, kind=kind, patterns=patterns))
        return cls(entries)

    @classmethod
    def load(cls, path: str | Path) -> "Suppressions":
        return cls.parse(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def matches(self, warning) -> bool:
        """True if any entry suppresses ``warning`` (records the hit)."""
        for entry in self.entries:
            if entry.matches(warning):
                entry.hits += 1
                return True
        return False

    def __len__(self) -> int:
        return len(self.entries)

    def format_stats(self) -> str:
        """Per-entry hit counts (Valgrind's ``-v`` suppression summary)."""
        return "\n".join(f"{e.hits:6d}  {e.name}" for e in self.entries)


def _strip(line: str) -> str:
    """Remove comments and whitespace."""
    if "#" in line:
        line = line[: line.index("#")]
    return line.strip()
