"""Vector clocks for happens-before detectors.

Implements Lamport's partial order [7] in the vector form the DJIT
algorithm [6] uses: one logical clock per thread, joined at
synchronisation points.  Kept separate from the segment graph because
the two abstractions advance at different granularities — segments split
only at a configured set of operations, while DJIT's clocks tick at
every release-like operation.
"""

from __future__ import annotations

__all__ = ["VectorClock"]


class VectorClock:
    """A mutable thread→counter map with the usual lattice operations.

    Missing entries read as 0 (a thread that never synchronised is at
    its initial time frame).
    """

    __slots__ = ("_c",)

    def __init__(self, initial: dict[int, int] | None = None) -> None:
        self._c: dict[int, int] = dict(initial) if initial else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def get(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def __getitem__(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def tick(self, tid: int) -> None:
        """Advance ``tid``'s component (a release-like local event)."""
        self._c[tid] = self._c.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """In-place pointwise maximum (an acquire-like merge)."""
        for tid, clk in other._c.items():
            if self._c.get(tid, 0) < clk:
                self._c[tid] = clk

    def joined(self, other: "VectorClock") -> "VectorClock":
        out = self.copy()
        out.join(other)
        return out

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise ``self <= other`` — the happens-before-or-equal test."""
        return all(clk <= other._c.get(tid, 0) for tid, clk in self._c.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    def covers(self, tid: int, clk: int) -> bool:
        """True if this clock has seen ``tid``'s time frame ``clk``.

        The FastTrack-style epoch test: an access stamped ``(tid, clk)``
        happens-before everything whose clock satisfies ``covers``.
        """
        return self._c.get(tid, 0) >= clk

    def as_dict(self) -> dict[int, int]:
        return dict(self._c)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        tids = set(self._c) | set(other._c)
        return all(self.get(t) == other.get(t) for t in tids)

    def __hash__(self) -> int:  # pragma: no cover - VCs are not dict keys
        raise TypeError("VectorClock is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"t{t}:{c}" for t, c in sorted(self._c.items()))
        return f"VC({inner})"
