"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` etc.) propagate.

The hierarchy is intentionally shallow and mirrors the package layout:

* :class:`ReproError` — root.

  * :class:`VMError` — faults raised by the cooperative virtual machine
    (:mod:`repro.runtime.vm`): guest crashes, scheduling faults, step-limit
    exhaustion.

    * :class:`GuestFault` — the guest program performed an illegal
      operation (wild address, double free, unlocking a lock it does not
      hold, ...).  This models a SIGSEGV/abort of the simulated binary.
    * :class:`DeadlockError` — no guest thread is runnable but some are
      blocked; the simulated process is wedged.  Raised by the VM itself,
      independent of the (advisory) deadlock *detector* in
      :mod:`repro.detectors.deadlock`.
    * :class:`StepLimitExceeded` — the run hit its configured step budget;
      usually indicates a livelock in the guest program or a test with a
      too-small budget.

  * :class:`InstrumentError` — faults of the MiniCxx front-end
    (:mod:`repro.instrument`).

    * :class:`LexError` / :class:`ParseError` — source-level syntax
      problems, carrying ``line``/``column`` positions.
    * :class:`CompileError` — semantic problems found while lowering the
      AST to an executable guest program.

  * :class:`SuppressionSyntaxError` — malformed suppression file
    (:mod:`repro.detectors.suppressions`).
  * :class:`SipParseError` — malformed SIP message on the simulated wire
    (:mod:`repro.sip.parser`).
  * :class:`WorkloadError` — invalid experiment / workload configuration.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "VMError",
    "GuestFault",
    "DeadlockError",
    "StepLimitExceeded",
    "InstrumentError",
    "LexError",
    "ParseError",
    "CompileError",
    "SuppressionSyntaxError",
    "SipParseError",
    "WorkloadError",
]


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class VMError(ReproError):
    """A fault raised by the cooperative virtual machine."""


class GuestFault(VMError):
    """The guest program performed an illegal operation.

    This is the moral equivalent of the simulated binary receiving
    SIGSEGV or calling ``abort()``: a wild load/store, a double free, an
    unlock of a mutex the thread does not hold, and so on.  The offending
    thread and a human-readable reason are attached.
    """

    def __init__(self, reason: str, *, tid: int | None = None) -> None:
        self.reason = reason
        self.tid = tid
        where = f" (thread {tid})" if tid is not None else ""
        super().__init__(f"guest fault{where}: {reason}")


class DeadlockError(VMError):
    """The simulated process is wedged: threads blocked, none runnable.

    The VM raises this when it can prove no further progress is possible.
    ``blocked`` lists the thread ids that were blocked at the time along
    with a short description of what each was waiting for.
    """

    def __init__(self, blocked: list[tuple[int, str]]) -> None:
        self.blocked = list(blocked)
        detail = ", ".join(f"t{tid} waiting on {what}" for tid, what in self.blocked)
        super().__init__(f"deadlock: no runnable thread ({detail})")


class StepLimitExceeded(VMError):
    """The run exhausted its step budget before all threads finished."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        super().__init__(f"VM step limit of {limit} exceeded (livelock or budget too small)")


class InstrumentError(ReproError):
    """A fault of the MiniCxx instrumentation front-end."""


class _Positioned(InstrumentError):
    """Shared implementation for errors that carry a source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class LexError(_Positioned):
    """The MiniCxx lexer hit an unrecognisable character sequence."""


class ParseError(_Positioned):
    """The MiniCxx parser could not derive the input."""


class CompileError(InstrumentError):
    """Semantic error while lowering a MiniCxx AST to a guest program."""


class SuppressionSyntaxError(ReproError):
    """A suppression file could not be parsed."""


class SipParseError(ReproError):
    """A SIP message on the simulated wire was malformed."""


class WorkloadError(ReproError):
    """An experiment or workload was configured inconsistently."""
