"""The experiment harness: regenerate every table and figure of §4.

``repro.experiments.harness``
    Run workloads under detector configurations, collect classified
    reports (one :class:`~repro.experiments.harness.ExperimentRun` per
    cell of the paper's tables).
``repro.experiments.figures``
    The paper's published numbers plus formatters that print our
    measured rows next to them (Figure 6 table, Figure 5 decomposition,
    the §4.3 false-negative study, the E10/E11 ablations).
``repro.experiments.performance``
    The §4.5 slowdown measurements (native vs VM vs VM+detector; trace
    sizes for the on-the-fly vs post-mortem trade-off).

See ``EXPERIMENTS.md`` for the experiment index and the paper-vs-
measured record; ``benchmarks/`` drives everything here via
pytest-benchmark.
"""

from repro.experiments.harness import (
    ExperimentRun,
    Figure6Row,
    run_figure6,
    run_proxy_case,
)
from repro.experiments.figures import (
    PAPER_FIGURE6,
    figure5_decomposition,
    figure6_table,
)
from repro.experiments.performance import PerformanceReport, measure_performance
from repro.experiments.studies import (
    ablation_study,
    baseline_study,
    false_negative_study,
)

__all__ = [
    "ExperimentRun",
    "Figure6Row",
    "PAPER_FIGURE6",
    "PerformanceReport",
    "ablation_study",
    "baseline_study",
    "false_negative_study",
    "figure5_decomposition",
    "figure6_table",
    "measure_performance",
    "run_figure6",
    "run_proxy_case",
]
