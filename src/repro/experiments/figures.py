"""The paper's published numbers and table/figure formatters.

Absolute counts are not expected to match: the paper's subject is a
~500 kLOC commercial server, ours a faithful but small simulation (the
measured counts run about one order of magnitude lower).  What must
match — and what the formatters make easy to eyeball — is the *shape*:

* Original > HWLC > HWLC+DR in every test case,
* HWLC+DR below half of HWLC in every case ("reduces the amount of
  reported possible data races by more than a half in all cases"),
* total removal by both improvements in (or near) the 65-81 % band,
* the Figure 5 decomposition ordering: destructor false positives are
  the bigger removed part, hardware-lock the smaller top slice.
"""

from __future__ import annotations

from repro._util.tables import format_table
from repro.experiments.harness import Figure6Row
from repro.oracle import WarningCategory

__all__ = [
    "PAPER_FIGURE6",
    "figure6_table",
    "figure5_decomposition",
    "shape_violations",
]

#: Figure 6 of the paper: reported possible-data-race locations.
#: case -> (Original, HWLC, HWLC+DR)
PAPER_FIGURE6: dict[str, tuple[int, int, int]] = {
    "T1": (483, 448, 120),
    "T2": (319, 215, 60),
    "T3": (252, 194, 49),
    "T4": (576, 490, 149),
    "T5": (631, 547, 146),
    "T6": (620, 604, 181),
    "T7": (327, 269, 115),
    "T8": (357, 270, 78),
}


def sweep_table(rows: list[Figure6Row], configs: tuple[str, ...]) -> str:
    """A generic (case × profile) location-count table.

    Used when ``repro figure6 --config ...`` selects a column set other
    than the paper trio — the Figure 6 paper comparison columns only
    make sense for Original/HWLC/HWLC+DR.
    """
    body = [
        [row.case_id, *(row.runs[c].location_count for c in configs)]
        for row in rows
    ]
    return format_table(
        ["case", *configs],
        body,
        title="Reported warning locations per analysis profile",
    )


def figure6_table(rows: list[Figure6Row]) -> str:
    """Render measured vs paper Figure 6, row for row."""
    body = []
    for row in rows:
        paper = PAPER_FIGURE6.get(row.case_id, (0, 0, 0))
        paper_removal = (paper[0] - paper[2]) / paper[0] if paper[0] else 0.0
        body.append(
            [
                row.case_id,
                row.original,
                row.hwlc,
                row.hwlc_dr,
                f"{row.removal_fraction:.0%}",
                f"{paper[0]}/{paper[1]}/{paper[2]}",
                f"{paper_removal:.0%}",
            ]
        )
    return format_table(
        ["case", "Original", "HWLC", "HWLC+DR", "removed", "paper O/H/H+D", "paper rm"],
        body,
        title="Figure 6 — reported possible data race locations (measured vs paper)",
    )


def figure5_decomposition(rows: list[Figure6Row]) -> str:
    """Figure 5's stacked bars: the Original run's locations decomposed
    into hardware-lock FPs, destructor FPs and correctly reported races.

    The paper derives the two FP slices from the *differences* between
    configurations; we can also cross-check them against the oracle's
    classification of the Original run itself, so both views are shown.
    """
    body = []
    for row in rows:
        original = row.runs["original"]
        by_diff_hw = row.original - row.hwlc
        by_diff_dtor = row.hwlc - row.hwlc_dr
        oracle_hw = original.fp_count(WarningCategory.FP_HW_LOCK)
        oracle_dtor = original.fp_count(WarningCategory.FP_DESTRUCTOR)
        correct = original.classified.true_races
        body.append(
            [
                row.case_id,
                by_diff_hw,
                by_diff_dtor,
                row.hwlc_dr,
                oracle_hw,
                oracle_dtor,
                correct,
            ]
        )
    return format_table(
        [
            "case",
            "FP hw (diff)",
            "FP dtor (diff)",
            "reported (H+D)",
            "FP hw (oracle)",
            "FP dtor (oracle)",
            "true (oracle)",
        ],
        body,
        title="Figure 5 — decomposition of warning locations per test case",
    )


def shape_violations(rows: list[Figure6Row]) -> list[str]:
    """Check the paper's qualitative claims; empty list = all hold."""
    problems: list[str] = []
    for row in rows:
        if not (row.original >= row.hwlc >= row.hwlc_dr):
            problems.append(
                f"{row.case_id}: counts not monotone "
                f"({row.original}/{row.hwlc}/{row.hwlc_dr})"
            )
        if row.hwlc and row.hwlc_dr >= row.hwlc / 2:
            problems.append(
                f"{row.case_id}: annotation removed less than half of HWLC "
                f"({row.hwlc} -> {row.hwlc_dr})"
            )
    if rows:
        removals = [row.removal_fraction for row in rows]
        low, high = min(removals), max(removals)
        # The paper's band with a little slack for the smaller subject.
        if high < 0.55 or low > 0.90:
            problems.append(
                f"overall removal range {low:.0%}-{high:.0%} far from the "
                "paper's 65%-81%"
            )
    return problems
