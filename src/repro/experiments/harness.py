"""Run the proxy under detector configurations and classify the output.

This is the §3.2 debugging process in executable form: *instrumentation*
is the ``instrumented`` build switch of :class:`repro.sip.server
.ProxyConfig`, *execution* is a VM run with the chosen detector, and
*analysis* is the oracle join (:func:`repro.detectors.classify
.classify_report`) standing in for the authors' manual warning triage.

One :func:`run_proxy_case` call produces one cell of the paper's
Figure 6; :func:`run_figure6` produces the whole table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.detectors import HelgrindConfig, HelgrindDetector
from repro.detectors.classify import ClassifiedReport, classify_report
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM, RandomScheduler
from repro.sip.bugs import EVALUATION_BUGS
from repro.sip.server import ProxyConfig, ProxyResult, SipProxy
from repro.sip.workload import TestCase, evaluation_cases

__all__ = ["ExperimentRun", "Figure6Row", "run_proxy_case", "run_figure6"]

#: The three configurations of the paper's evaluation, in table order.
EVAL_CONFIGS = ("original", "hwlc", "hwlc+dr")


@dataclass(slots=True)
class ExperimentRun:
    """One (test case × detector configuration) measurement."""

    case_id: str
    config_name: str
    location_count: int
    classified: ClassifiedReport
    proxy_result: ProxyResult
    events: int
    wall_seconds: float

    def fp_count(self, category: WarningCategory) -> int:
        return self.classified.count(category)


@dataclass(slots=True)
class Figure6Row:
    """One row of the Figure 6 table: a test case under all configs."""

    case_id: str
    runs: dict[str, ExperimentRun] = field(default_factory=dict)

    @property
    def original(self) -> int:
        return self.runs["original"].location_count

    @property
    def hwlc(self) -> int:
        return self.runs["hwlc"].location_count

    @property
    def hwlc_dr(self) -> int:
        return self.runs["hwlc+dr"].location_count

    @property
    def removal_fraction(self) -> float:
        """Share of Original's locations removed by both improvements —
        the paper's headline "65% to 81%" metric."""
        if self.original == 0:
            return 0.0
        return (self.original - self.hwlc_dr) / self.original


def _detector_config(name: str) -> HelgrindConfig:
    return {
        "original": HelgrindConfig.original,
        "hwlc": HelgrindConfig.hwlc,
        "hwlc+dr": HelgrindConfig.hwlc_dr,
        "extended": HelgrindConfig.extended,
        "raw-eraser": HelgrindConfig.raw_eraser,
        "eraser-states": HelgrindConfig.eraser_states,
    }[name]()


def run_proxy_case(
    case: TestCase,
    config_name: str,
    *,
    seed: int = 42,
    mode: str = "thread-per-request",
    bugs: frozenset[str] = EVALUATION_BUGS,
    detector=None,
    step_limit: int = 10_000_000,
) -> ExperimentRun:
    """Run one test case under one detector configuration.

    The build is instrumented exactly when the detector configuration
    honours the annotation (the ``HWLC+DR`` column) — mirroring the
    paper, where the third run is the one with the annotated build.
    """
    det_config = _detector_config(config_name)
    truth = GroundTruth()
    proxy = SipProxy(
        ProxyConfig(
            mode=mode,
            bugs=bugs,
            instrumented=det_config.honor_destruct,
        ),
        truth=truth,
    )
    det = detector if detector is not None else HelgrindDetector(det_config)
    vm = VM(
        detectors=(det,),
        scheduler=RandomScheduler(seed),
        step_limit=step_limit,
    )
    start = time.perf_counter()
    proxy_result = vm.run(proxy.main, case.wires)
    wall = time.perf_counter() - start
    return ExperimentRun(
        case_id=case.case_id,
        config_name=config_name,
        location_count=det.report.location_count,
        classified=classify_report(det.report, truth),
        proxy_result=proxy_result,
        events=vm.stats.total_events,
        wall_seconds=wall,
    )


def run_figure6(
    cases: list[TestCase] | None = None,
    *,
    seed: int = 42,
    mode: str = "thread-per-request",
) -> list[Figure6Row]:
    """The full evaluation: T1-T8 × {Original, HWLC, HWLC+DR}."""
    rows: list[Figure6Row] = []
    for case in cases if cases is not None else evaluation_cases():
        row = Figure6Row(case.case_id)
        for config_name in EVAL_CONFIGS:
            row.runs[config_name] = run_proxy_case(
                case, config_name, seed=seed, mode=mode
            )
        rows.append(row)
    return rows
