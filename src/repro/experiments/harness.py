"""Run the proxy under detector configurations and classify the output.

This is the §3.2 debugging process in executable form: *instrumentation*
is the ``instrumented`` build switch of :class:`repro.sip.server
.ProxyConfig`, *execution* is a VM run with the chosen detector, and
*analysis* is the oracle join (:func:`repro.detectors.classify
.classify_report`) standing in for the authors' manual warning triage.

One :func:`run_proxy_case` call produces one cell of the paper's
Figure 6; :func:`run_figure6` produces the whole table.

The 24 cells of the table (8 cases × 3 configurations) are mutually
independent — each is one seeded VM run with its own detector — so
:func:`run_figure6` can fan them out across worker *processes*
(``workers=N``).  Each cell is deterministic given ``(case, config,
seed)``, and results are reassembled in table order, so the parallel
table is bit-identical to the sequential one; only the wall-clock
changes.  (Processes, not threads: a VM run is pure Python and would
serialise on the GIL.)
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.api.profiles import profile
from repro.detectors import HelgrindConfig
from repro.detectors.classify import ClassifiedReport, classify_report
from repro.oracle import GroundTruth, WarningCategory
from repro.runtime import VM, RandomScheduler
from repro.sip.bugs import EVALUATION_BUGS
from repro.sip.server import ProxyConfig, ProxyResult, SipProxy
from repro.sip.workload import TestCase, evaluation_cases

__all__ = ["ExperimentRun", "Figure6Row", "run_proxy_case", "run_figure6"]

#: The three configurations of the paper's evaluation, in table order.
EVAL_CONFIGS = ("original", "hwlc", "hwlc+dr")


@dataclass(slots=True)
class ExperimentRun:
    """One (test case × detector configuration) measurement."""

    case_id: str
    config_name: str
    location_count: int
    classified: ClassifiedReport
    proxy_result: ProxyResult
    events: int
    wall_seconds: float

    def fp_count(self, category: WarningCategory) -> int:
        return self.classified.count(category)


@dataclass(slots=True)
class Figure6Row:
    """One row of the Figure 6 table: a test case under all configs."""

    case_id: str
    runs: dict[str, ExperimentRun] = field(default_factory=dict)

    @property
    def original(self) -> int:
        return self.runs["original"].location_count

    @property
    def hwlc(self) -> int:
        return self.runs["hwlc"].location_count

    @property
    def hwlc_dr(self) -> int:
        return self.runs["hwlc+dr"].location_count

    @property
    def removal_fraction(self) -> float:
        """Share of Original's locations removed by both improvements —
        the paper's headline "65% to 81%" metric."""
        if self.original == 0:
            return 0.0
        return (self.original - self.hwlc_dr) / self.original


#: One-shot latch for the :func:`_detector_config` deprecation shim.
_DETECTOR_CONFIG_WARNED = False


def _detector_config(name: str) -> HelgrindConfig:
    """Deprecated: use :func:`repro.api.detector_config`.

    This was the harness's private name-to-configuration table; it is
    now the public, validated ``repro.api.detector_config`` (itself a
    thin veneer over :mod:`repro.api.profiles`).  The shim warns once
    per process and will be removed next PR cycle (see ``docs/API.md``).
    """
    global _DETECTOR_CONFIG_WARNED
    if not _DETECTOR_CONFIG_WARNED:
        _DETECTOR_CONFIG_WARNED = True
        warnings.warn(
            "repro.experiments.harness._detector_config is deprecated; "
            "use repro.api.detector_config",
            DeprecationWarning,
            stacklevel=2,
        )
    return profile(name).config()


def run_proxy_case(
    case: TestCase,
    config_name: str,
    *,
    seed: int = 42,
    mode: str = "thread-per-request",
    bugs: frozenset[str] = EVALUATION_BUGS,
    detector=None,
    step_limit: int = 10_000_000,
    telemetry=None,
    extra_hooks: tuple = (),
) -> ExperimentRun:
    """Run one test case under one detector configuration.

    The build is instrumented exactly when the detector configuration
    honours the annotation (the ``HWLC+DR`` column) — mirroring the
    paper, where the third run is the one with the annotated build.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`, or ``None``)
    is attached to the VM before the run and harvested after it; the
    run itself is wrapped in a ``case/config`` phase span.  Passing
    ``None`` (the default) keeps the PR-1 fast path untouched.

    ``extra_hooks`` are additional detector-ABI hooks registered on the
    VM *ahead of* the detector — most usefully a
    :class:`~repro.runtime.trace.TraceRecorder`, so ``repro trace
    record`` captures exactly the event stream the detector saw (the
    §4.5 offline mode riding an otherwise unchanged evaluation run).

    A case may pin its own bug set (``case.bugs``), which overrides the
    ``bugs`` argument — the predictive T9/T10 cases use this to enable
    *only* their latent fault regardless of the caller's default.
    """
    prof = profile(config_name)
    det_config = prof.config()
    effective_bugs = case.bugs if case.bugs is not None else bugs
    truth = GroundTruth()
    proxy = SipProxy(
        ProxyConfig(
            mode=mode,
            bugs=effective_bugs,
            instrumented=det_config.honor_destruct,
        ),
        truth=truth,
    )
    det = detector if detector is not None else prof.detector(det_config)
    instrumented = telemetry is not None and telemetry.enabled
    vm = VM(
        detectors=(*extra_hooks, det),
        scheduler=RandomScheduler(seed),
        step_limit=step_limit,
        telemetry=telemetry if instrumented else None,
    )
    def _finalize() -> None:
        # End-of-stream hook: the predictive tier's offline post-pass
        # runs here (a no-op for every live-only detector).  Must
        # precede the telemetry harvest — predicted warnings and the
        # repro_predict_* counters land at finalize time.
        finalize = getattr(det, "finalize", None)
        if finalize is not None:
            finalize()

    start = time.perf_counter()
    if instrumented:
        telemetry.attach(vm)
        with telemetry.phase(f"{case.case_id}/{config_name}"):
            proxy_result = vm.run(proxy.main, case.wires)
        _finalize()
        telemetry.record_run(vm, label=f"{case.case_id}/{config_name}")
    else:
        proxy_result = vm.run(proxy.main, case.wires)
        _finalize()
    wall = time.perf_counter() - start
    return ExperimentRun(
        case_id=case.case_id,
        config_name=config_name,
        location_count=det.report.location_count,
        classified=classify_report(det.report, truth),
        proxy_result=proxy_result,
        events=vm.stats.total_events,
        wall_seconds=wall,
    )


def _figure6_cell(payload: tuple) -> tuple[str, str, ExperimentRun, dict | None]:
    """Worker entry point: run one (case × config) cell.

    Module-level (picklable) so :class:`ProcessPoolExecutor` can ship it
    to a worker; returns its coordinates so the parent can reassemble
    the table deterministically regardless of completion order.

    When ``collect_metrics`` is set the worker instruments its run with
    a process-local :class:`~repro.telemetry.Telemetry` and ships the
    resulting *snapshot* (plain dicts — picklable) home; the parent
    folds it into its own registry (:meth:`Telemetry.merge_snapshot`).
    Previously these per-run stats were simply dropped on the floor in
    parallel mode.  The snapshot rides alongside the run instead of
    inside it, so table assembly — and therefore the rendered report —
    is bit-identical with metrics on or off.
    """
    case, config_name, seed, mode, collect_metrics = payload
    telemetry = None
    if collect_metrics:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    run = run_proxy_case(
        case, config_name, seed=seed, mode=mode, telemetry=telemetry
    )
    snapshot = telemetry.snapshot() if telemetry is not None else None
    return case.case_id, config_name, run, snapshot


def run_figure6(
    cases: list[TestCase] | None = None,
    *,
    seed: int = 42,
    mode: str = "thread-per-request",
    workers: int | None = None,
    telemetry=None,
    configs: tuple[str, ...] = EVAL_CONFIGS,
) -> list[Figure6Row]:
    """The full evaluation: T1-T8 × {Original, HWLC, HWLC+DR}.

    ``configs`` overrides the column set — any registered profile name
    is a valid column (``repro figure6 --config predictive`` sweeps
    the predictive tier over the same cases).  The Figure 6 paper
    comparison is only rendered for the default paper trio.

    ``workers`` > 1 fans the independent cells out over that many
    worker processes (``python -m repro figure6 --workers N``); the
    default (``None`` or 1) runs them sequentially in-process.  Either
    way the produced rows are identical — cell runs are seeded and
    deterministic, and assembly preserves table order.

    ``telemetry`` instruments every cell.  Sequentially the one object
    is threaded through each run; in parallel each worker collects into
    its own registry and the parent merges the returned snapshots.  The
    aggregates agree up to wall-clock timings and warm-table effects
    (N worker processes have N cold interning tables, so memo-miss
    tallies are correspondingly higher than one shared warm table's).
    """
    case_list = list(cases) if cases is not None else evaluation_cases()
    if workers is not None and workers > 1:
        return _run_figure6_parallel(
            case_list, seed, mode, workers, telemetry, configs
        )
    rows: list[Figure6Row] = []
    for case in case_list:
        row = Figure6Row(case.case_id)
        for config_name in configs:
            row.runs[config_name] = run_proxy_case(
                case, config_name, seed=seed, mode=mode, telemetry=telemetry
            )
        rows.append(row)
    return rows


def _run_figure6_parallel(
    cases: list[TestCase], seed: int, mode: str, workers: int,
    telemetry=None, configs: tuple[str, ...] = EVAL_CONFIGS,
) -> list[Figure6Row]:
    """Fan the independent (case × config) cells across ``workers``."""
    collect = telemetry is not None and telemetry.enabled
    jobs = [
        (case, config_name, seed, mode, collect)
        for case in cases
        for config_name in configs
    ]
    by_case: dict[str, Figure6Row] = {
        case.case_id: Figure6Row(case.case_id) for case in cases
    }
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        for case_id, config_name, run, snapshot in pool.map(_figure6_cell, jobs):
            by_case[case_id].runs[config_name] = run
            if snapshot is not None and collect:
                telemetry.merge_snapshot(snapshot)
    # Deterministic assembly: original case order, regardless of the
    # order in which workers finished.
    return [by_case[case.case_id] for case in cases]
