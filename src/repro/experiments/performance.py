"""The §4.5 performance study: how much the VM and the analysis cost.

The paper reports for its setup:

* running on the Valgrind VM alone slows the program 8-10×,
* running with Helgrind analysis slows it 20-30×,

i.e. the analysis itself costs a further ~2.5-3× on top of the VM.  The
absolute factors are properties of Valgrind's binary translation; what
carries over to our substrate is the *decomposition*: a large constant
VM cost plus a small multiple for on-the-fly analysis.  We therefore
measure three tiers on one fixed workload:

1. ``native`` — the same logical computation as plain Python (the
   "program run without Helgrind" baseline),
2. ``vm`` — the workload on the cooperative VM with no detectors,
3. ``vm+<detector>`` — the workload with a detector attached,

and report both slowdown factors.  :func:`trace_cost` additionally
quantifies the §4.5 on-the-fly vs post-mortem trade-off: the size of
the execution trace that offline analysis would have to store ("offline
techniques suffer from their need for large amount of data").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.detectors import DjitDetector, HelgrindConfig, HelgrindDetector
from repro.runtime import VM, RoundRobinScheduler
from repro.runtime.trace import TraceRecorder, replay

__all__ = [
    "PerformanceReport",
    "measure_performance",
    "measure_event_throughput",
    "workload_native",
    "workload_guest",
]


def workload_guest(api, n_threads: int = 4, iterations: int = 120):
    """The benchmark workload: locked counters + unlocked scratch work.

    Mirrors the hot loop of a server worker: take a lock, bump shared
    counters, do some thread-local work, occasionally touch an atomic.
    """
    counters = api.malloc(8, tag="counters")
    for i in range(8):
        api.store(counters + i, 0)
    atomic = api.malloc(1, tag="atomic")
    api.store(atomic, 0)
    m = api.mutex()

    def worker(a, k):
        scratch = a.malloc(4, tag="scratch")
        for i in range(4):
            a.store(scratch + i, 0)
        for i in range(iterations):
            a.lock(m)
            slot = counters + (i % 8)
            a.store(slot, a.load(slot) + 1)
            a.unlock(m)
            a.store(scratch + (i % 4), a.load(scratch + (i % 4)) + k)
            if i % 16 == 0:
                a.atomic_add(atomic, 1)
        a.free(scratch)

    threads = [api.spawn(worker, k) for k in range(n_threads)]
    for t in threads:
        api.join(t)
    return api.load(counters)


def workload_native(n_threads: int = 4, iterations: int = 120):
    """The same computation as plain Python — the 'no Valgrind' tier.

    Sequentialised (the guest work is serialised anyway), using plain
    dicts for memory so the comparison isolates the VM's trap cost.
    """
    counters = [0] * 8
    atomic = [0]
    for k in range(n_threads):
        scratch = [0] * 4
        for i in range(iterations):
            counters[i % 8] += 1
            scratch[i % 4] += k
            if i % 16 == 0:
                atomic[0] += 1
    return counters[0]


@dataclass(slots=True)
class PerformanceReport:
    """Wall-clock results of one measurement sweep."""

    native_seconds: float
    vm_seconds: float
    detector_seconds: dict[str, float] = field(default_factory=dict)
    events: int = 0

    @property
    def vm_slowdown(self) -> float:
        """VM-only / native — the paper's "8-10×" analogue."""
        return self.vm_seconds / self.native_seconds

    def total_slowdown(self, detector: str) -> float:
        """VM+detector / native — the paper's "20-30×" analogue."""
        return self.detector_seconds[detector] / self.native_seconds

    def analysis_overhead(self, detector: str) -> float:
        """VM+detector / VM-only — the paper's ~2.5-3× analysis cost."""
        return self.detector_seconds[detector] / self.vm_seconds

    def format(self) -> str:
        lines = [
            "Performance (§4.5) — wall-clock slowdown factors",
            f"  native:            {self.native_seconds * 1e3:8.2f} ms  (1.0x)",
            f"  VM only:           {self.vm_seconds * 1e3:8.2f} ms  "
            f"({self.vm_slowdown:.1f}x native)   [paper: 8-10x]",
        ]
        for name, seconds in self.detector_seconds.items():
            lines.append(
                f"  VM + {name:13s} {seconds * 1e3:8.2f} ms  "
                f"({self.total_slowdown(name):.1f}x native, "
                f"{self.analysis_overhead(name):.2f}x VM)   "
                "[paper: 20-30x native, ~2.5-3x VM]"
            )
        lines.append(f"  events per run:    {self.events}")
        return "\n".join(lines)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_performance(
    *,
    n_threads: int = 4,
    iterations: int = 120,
    repeats: int = 3,
    detectors: tuple[str, ...] = ("helgrind", "djit"),
) -> PerformanceReport:
    """Measure all tiers; returns best-of-``repeats`` per tier."""
    native = _best_of(lambda: workload_native(n_threads, iterations), repeats)

    events = 0

    def run_vm(make_detector=None):
        nonlocal events
        hooks = (make_detector(),) if make_detector else ()
        vm = VM(scheduler=RoundRobinScheduler(), detectors=hooks)
        vm.run(workload_guest, n_threads, iterations)
        events = vm.stats.total_events

    vm_only = _best_of(lambda: run_vm(), repeats)
    factories = {
        "helgrind": lambda: HelgrindDetector(HelgrindConfig.hwlc_dr()),
        "helgrind-orig": lambda: HelgrindDetector(HelgrindConfig.original()),
        "djit": DjitDetector,
    }
    detector_seconds = {}
    for name in detectors:
        detector_seconds[name] = _best_of(lambda: run_vm(factories[name]), repeats)
    return PerformanceReport(
        native_seconds=native,
        vm_seconds=vm_only,
        detector_seconds=detector_seconds,
        events=events,
    )


#: Detector factories for the throughput tiers (``None`` = VM only).
_THROUGHPUT_TIERS = {
    "vm-only": None,
    "helgrind-orig": lambda: HelgrindDetector(HelgrindConfig.original()),
    "helgrind-hwlc+dr": lambda: HelgrindDetector(HelgrindConfig.hwlc_dr()),
    "djit": DjitDetector,
}


def measure_event_throughput(
    *,
    n_threads: int = 4,
    iterations: int = 200,
    repeats: int = 3,
    tiers: tuple[str, ...] = tuple(_THROUGHPUT_TIERS),
    breakdown: bool = False,
) -> dict[str, dict[str, float]]:
    """Events/second through ``VM.emit`` per analysis tier (E7 fast path).

    This is the metric the analysis fast path optimises: how many guest
    events the VM can push through its dispatch layer (and, per tier,
    through a detector) per wall-clock second.  Returns, per tier::

        {"events": N, "seconds": best_of_repeats, "events_per_sec": rate,
         "multiple_vs_vm": tier_seconds / vm_only_seconds}

    ``multiple_vs_vm`` is the §4.5 "analysis costs a small multiple on
    top of the VM" decomposition, as a throughput ratio.

    ``breakdown=True`` adds a *separate*, telemetry-instrumented pass
    per tier that decomposes one run's wall clock into guest/VM time vs
    dispatch time vs detector time (keys ``instrumented_seconds``,
    ``emit_seconds``, ``dispatch_seconds``, ``detector_seconds``,
    ``vm_seconds``).  The headline ``seconds``/``events_per_sec`` stay
    uninstrumented — the breakdown explains the numbers, it never
    perturbs them.
    """
    out: dict[str, dict[str, float]] = {}
    for name in tiers:
        factory = _THROUGHPUT_TIERS[name]
        events = 0

        def run() -> None:
            nonlocal events
            hooks = (factory(),) if factory is not None else ()
            vm = VM(scheduler=RoundRobinScheduler(), detectors=hooks)
            vm.run(workload_guest, n_threads, iterations)
            events = vm.stats.total_events

        seconds = _best_of(run, repeats)
        out[name] = {
            "events": float(events),
            "seconds": seconds,
            "events_per_sec": events / seconds if seconds > 0 else 0.0,
        }
        if breakdown:
            out[name].update(
                _throughput_breakdown(factory, n_threads, iterations)
            )
    if "vm-only" in out:
        base = out["vm-only"]["seconds"]
        for name, row in out.items():
            row["multiple_vs_vm"] = row["seconds"] / base if base > 0 else 0.0
    return out


def _throughput_breakdown(
    factory, n_threads: int, iterations: int
) -> dict[str, float]:
    """One instrumented run decomposed into VM / dispatch / detector time.

    ``emit_seconds`` is everything inside ``VM.emit`` (stats bump, route
    lookup, handler calls); ``detector_seconds`` is the part spent in
    detector handlers; their difference is the dispatch layer proper;
    ``vm_seconds`` is the rest of the wall clock (guest execution,
    scheduler, memory model).
    """
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    hooks = (factory(),) if factory is not None else ()
    vm = VM(scheduler=RoundRobinScheduler(), detectors=hooks, telemetry=telemetry)
    telemetry.attach(vm, time_emit=True)
    start = time.perf_counter()
    vm.run(workload_guest, n_threads, iterations)
    total = time.perf_counter() - start
    emit = telemetry.emit_seconds()
    detector = telemetry.detector_busy_seconds()
    return {
        "instrumented_seconds": total,
        "emit_seconds": emit,
        "detector_seconds": detector,
        "dispatch_seconds": max(0.0, emit - detector),
        "vm_seconds": max(0.0, total - emit),
    }


def trace_cost(
    *, n_threads: int = 4, iterations: int = 120, binary: bool = False
) -> dict[str, float]:
    """Quantify the §4.5 offline-analysis trade-off on the workload.

    Returns the trace length, its estimated serialized size, and the
    wall-clock for post-mortem replay through a Helgrind detector.

    With ``binary=True`` the stream is additionally round-tripped
    through the binary codec on disk (:mod:`repro.runtime.codec`),
    adding exact JSONL vs binary byte counts and the
    replay-from-binary wall clock — the E7 comparison at equal
    information content.
    """
    recorder = TraceRecorder()
    vm = VM(detectors=(recorder,))
    vm.run(workload_guest, n_threads, iterations)
    start = time.perf_counter()
    replay(recorder.events, HelgrindDetector(HelgrindConfig.hwlc_dr()))
    replay_seconds = time.perf_counter() - start
    result = {
        "events": float(len(recorder)),
        "estimated_bytes": float(recorder.estimated_bytes),
        "replay_seconds": replay_seconds,
    }
    if binary:
        import tempfile
        from pathlib import Path

        from repro.runtime.trace import replay_trace

        with tempfile.TemporaryDirectory() as tmp:
            jsonl = TraceRecorder(Path(tmp) / "t.jsonl")
            packed = TraceRecorder(Path(tmp) / "t.bin")
            for event in recorder.events:
                jsonl.handle(event, None)
                packed.handle(event, None)
            jsonl.close()
            packed.close()
            start = time.perf_counter()
            replay_trace(
                Path(tmp) / "t.bin", HelgrindDetector(HelgrindConfig.hwlc_dr())
            )
            result["binary_replay_seconds"] = time.perf_counter() - start
            result["jsonl_bytes"] = float(jsonl.bytes_written)
            result["binary_bytes"] = float(packed.bytes_written)
            result["compression_ratio"] = (
                jsonl.bytes_written / packed.bytes_written
                if packed.bytes_written
                else 0.0
            )
    return result
