"""The remaining §4 studies: false negatives, ablations, baselines.

* :func:`false_negative_study` — §4.3: Eraser's delayed lock-set
  initialisation hides a real race when the unlocked access happens to
  come first; a different schedule exposes it.  ("If a different
  schedule leads to another execution order, the (possible) data race is
  found and reported.  But this is not guaranteed to happen in the
  development environment.")
* :func:`ablation_study` — E10: each refinement (Figure 1 states, thread
  segments) strictly reduces false positives on the workloads built to
  exercise it.
* :func:`baseline_study` — E11/§2.2: DJIT reports a subset of the
  lock-set detector's locations on schedule-ordered runs; the hybrid
  sits between.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detectors import (
    DjitDetector,
    HelgrindConfig,
    HelgrindDetector,
    HybridDetector,
    RaceTrackDetector,
)
from repro.runtime import VM, RandomScheduler, StickyScheduler

__all__ = [
    "FalseNegativeStudy",
    "false_negative_study",
    "AblationStudy",
    "ablation_study",
    "BaselineStudy",
    "baseline_study",
]


# ----------------------------------------------------------------------
# §4.3 — schedule-dependent false negatives
# ----------------------------------------------------------------------


def _delayed_init_program(api):
    """The §4.3 scenario.

    One thread writes the shared word *without* a lock; another writes
    it *with* a lock.  If the unlocked write is observed first, it lands
    while the word is still EXCLUSIVE — the candidate set is initialised
    only at the second (locked) access, and the violation is forgotten.
    The opposite order initialises C(v)={m} first and the unlocked write
    then empties it.
    """
    addr = api.malloc(1, tag="shared")
    api.store(addr, 0)
    m = api.mutex()

    def unlocked_writer(a):
        with a.frame("unlocked_writer", "fn.cpp", 10):
            a.store(addr, 1)  # no lock!

    def locked_writer(a):
        with a.frame("locked_writer", "fn.cpp", 20):
            a.lock(m)
            a.store(addr, 2)
            a.unlock(m)

    t1 = api.spawn(unlocked_writer)
    t2 = api.spawn(locked_writer)
    api.join(t1)
    api.join(t2)


@dataclass(slots=True)
class FalseNegativeStudy:
    """Outcome of the seed sweep."""

    seeds_detected: list[int] = field(default_factory=list)
    seeds_missed: list[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.seeds_detected) + len(self.seeds_missed)

    @property
    def detection_rate(self) -> float:
        return len(self.seeds_detected) / self.total if self.total else 0.0

    def format(self) -> str:
        return (
            "False-negative study (§4.3): unlocked-vs-locked writer race\n"
            f"  schedules probed:   {self.total}\n"
            f"  race reported:      {len(self.seeds_detected)} "
            f"({self.detection_rate:.0%})\n"
            f"  race missed:        {len(self.seeds_missed)} "
            "(delayed lock-set initialisation)\n"
            "  paper: 'such cases were found in the source code and they "
            "have not been reported by the testing process'"
        )


def false_negative_study(
    *, seeds: range = range(24), sticky_prob: float = 0.02
) -> FalseNegativeStudy:
    """Probe the §4.3 scenario under many schedules.

    A sticky scheduler (rare preemption) is used so both orderings —
    unlocked writer first and locked writer first — actually occur
    across the sweep, like coarse OS time slicing would.
    """
    study = FalseNegativeStudy()
    for seed in seeds:
        det = HelgrindDetector(HelgrindConfig.hwlc())
        vm = VM(
            detectors=(det,),
            scheduler=StickyScheduler(seed=seed, switch_prob=sticky_prob),
        )
        vm.run(_delayed_init_program)
        if det.report.location_count:
            study.seeds_detected.append(seed)
        else:
            study.seeds_missed.append(seed)
    return study


# ----------------------------------------------------------------------
# E10 — ablation of the Figure 1 states and the thread segments
# ----------------------------------------------------------------------


def _init_then_share_program(api):
    """Init-once, read-many: forgiven by the Figure 1 states."""
    blocks = []
    for i in range(6):
        addr = api.malloc(2, tag=f"cfg{i}")
        with api.frame(f"init_cfg{i}", "boot.cpp", 10 + i):
            api.store(addr, i)
            api.store(addr + 1, i * i)
        blocks.append(addr)

    def reader(a, k):
        with a.frame(f"reader{k}", "worker.cpp", 30 + k):
            for addr in blocks:
                a.load(addr)
                a.load(addr + 1)

    ts = [api.spawn(reader, k) for k in range(3)]
    for t in ts:
        api.join(t)


def _create_join_handoff_program(api):
    """Figure 10: per-request ownership transfer via create/join."""
    for i in range(5):
        data = api.malloc(3, tag=f"req{i}")
        with api.frame("setup", "accept.cpp", 12):
            for j in range(3):
                api.store(data + j, j)

        def worker(a, base=data):
            with a.frame("process", "worker.cpp", 40):
                for j in range(3):
                    a.store(base + j, a.load(base + j) + 1)

        t = api.spawn(worker)
        api.join(t)
        with api.frame("collect", "accept.cpp", 20):
            for j in range(3):
                api.load(data + j)


@dataclass(slots=True)
class AblationStudy:
    """Location counts per (workload × machine refinement level)."""

    #: workload -> {"raw-eraser": n, "eraser-states": n, "helgrind": n}
    counts: dict[str, dict[str, int]] = field(default_factory=dict)

    def format(self) -> str:
        lines = [
            "Ablation (E10) — reported locations per refinement level",
            f"  {'workload':22s} {'raw Eraser':>11s} {'+Fig1 states':>13s} {'+segments':>10s}",
        ]
        for workload, row in self.counts.items():
            lines.append(
                f"  {workload:22s} {row['raw-eraser']:11d} "
                f"{row['eraser-states']:13d} {row['helgrind']:10d}"
            )
        return "\n".join(lines)


def ablation_study() -> AblationStudy:
    """Run both ablation workloads under the three machine levels."""
    study = AblationStudy()
    workloads = {
        "init-then-share": _init_then_share_program,
        "create-join-handoff": _create_join_handoff_program,
    }
    configs = {
        "raw-eraser": HelgrindConfig.raw_eraser(),
        "eraser-states": HelgrindConfig.eraser_states(),
        "helgrind": HelgrindConfig.original(),
    }
    for wname, workload in workloads.items():
        row = {}
        for cname, config in configs.items():
            det = HelgrindDetector(config)
            VM(detectors=(det,)).run(workload)
            row[cname] = det.report.location_count
        study.counts[wname] = row
    return study


# ----------------------------------------------------------------------
# E11 — lock-set vs happens-before vs hybrid
# ----------------------------------------------------------------------


def _mixed_discipline_program(api):
    """A true race, a schedule-ordered discipline violation, and clean
    locked traffic, side by side."""
    racy = api.malloc(1, tag="racy")
    api.store(racy, 0)
    ordered = api.malloc(1, tag="ordered")
    api.store(ordered, 0)
    clean = api.malloc(1, tag="clean")
    api.store(clean, 0)
    m = api.mutex()
    sem = api.semaphore(0)

    def racer(a):
        with a.frame("racer", "mix.cpp", 10):
            a.store(racy, a.load(racy) + 1)

    def ordered_writer(a):
        with a.frame("ordered_writer", "mix.cpp", 20):
            a.store(ordered, 1)  # unlocked, but semaphore-ordered
        a.sem_post(sem)

    def clean_writer(a):
        with a.frame("clean_writer", "mix.cpp", 30):
            a.lock(m)
            a.store(clean, a.load(clean) + 1)
            a.unlock(m)

    ts = [api.spawn(racer), api.spawn(racer), api.spawn(ordered_writer),
          api.spawn(clean_writer), api.spawn(clean_writer)]
    api.sem_wait(sem)
    with api.frame("ordered_writer_main", "mix.cpp", 40):
        api.store(ordered, 2)
    for t in ts:
        api.join(t)


@dataclass(slots=True)
class BaselineStudy:
    """Racy-address sets found by each detector family."""

    lockset_addrs: frozenset[int] = frozenset()
    djit_addrs: frozenset[int] = frozenset()
    hybrid_addrs: frozenset[int] = frozenset()
    racetrack_addrs: frozenset[int] = frozenset()

    def format(self) -> str:
        return (
            "Baselines (E11, §2.2) — racy addresses per detector family\n"
            f"  lock-set (Helgrind):   {len(self.lockset_addrs)}\n"
            f"  happens-before (DJIT): {len(self.djit_addrs)}\n"
            f"  hybrid:                {len(self.hybrid_addrs)}\n"
            f"  RaceTrack (adaptive):  {len(self.racetrack_addrs)}\n"
            f"  DJIT subset of lock-set:      {self.djit_addrs <= self.lockset_addrs}\n"
            f"  hybrid subset of lock-set:    {self.hybrid_addrs <= self.lockset_addrs}\n"
            f"  RaceTrack subset of lock-set: {self.racetrack_addrs <= self.lockset_addrs}\n"
            "  paper: DJIT 'detects data races on a subset of shared "
            "locations that are reported by the lock-set approach'"
        )


def baseline_study(*, seed: int = 7) -> BaselineStudy:
    """Run the mixed workload under all four detector families."""

    def addrs_of(detector):
        vm = VM(detectors=(detector,), scheduler=RandomScheduler(seed))
        vm.run(_mixed_discipline_program)
        return frozenset(w.addr for w in detector.report if w.addr is not None)

    return BaselineStudy(
        lockset_addrs=addrs_of(HelgrindDetector(HelgrindConfig.hwlc())),
        djit_addrs=addrs_of(DjitDetector()),
        hybrid_addrs=addrs_of(HybridDetector()),
        racetrack_addrs=addrs_of(RaceTrackDetector()),
    )
