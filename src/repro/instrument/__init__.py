"""The source-instrumentation front-end (the paper's ELSA analogue).

§3.1/§3.3 of the paper: the improvement that kills the destructor false
positives is *automatic, build-integrated* source annotation — every
``delete`` site is rewritten (Figure 4) to pass its operand through a
helper that announces the imminent destruction to the race detector,
"transparent to the build tools and the programmer".  The authors used
the ELSA GLR C++ parser; parsing real C++ is out of scope here (and the
paper itself laments that "no parser is freely available that is able to
generate an abstract syntax tree for the full ISO C++ language"), so we
define **MiniCxx**, a small C++-flavoured language that is rich enough
to express the paper's programs — classes with single inheritance and
virtual methods, ``new``/``delete``, threads, mutexes, queues — and
rebuild the full three-stage pipeline on it:

1. :mod:`repro.instrument.preprocess` — ``#include`` / ``#define`` /
   ``#ifdef`` textual preprocessing (stage one of §3.3: "the GNU
   compiler is used to preprocess the source file").
2. :mod:`repro.instrument.annotate` — the AST pass that rewrites
   ``delete e`` into ``delete __ca_deletor_single(e)`` and injects the
   Figure 4 helper (stage two: "the parser reads the preprocessed source
   file and generates the annotated source file").
3. :mod:`repro.instrument.compiler` — lowers the AST to an executable
   guest program over :class:`repro.runtime.vm.GuestAPI` (stage three:
   "the compiler generates object code from the annotated source").

:class:`repro.instrument.pipeline.BuildPipeline` chains the stages
behind a single compiler-wrapper-style call, with instrumentation a
boolean build switch — exactly the shell-script-replaces-compiler
arrangement of §3.3.
"""

from repro.instrument.annotate import annotate_module
from repro.instrument.ast_nodes import Module
from repro.instrument.compiler import CompiledProgram, compile_module
from repro.instrument.lexer import Token, tokenize
from repro.instrument.parser import parse
from repro.instrument.pipeline import BuildPipeline, BuildOptions
from repro.instrument.preprocess import preprocess
from repro.instrument.render import render_module

__all__ = [
    "BuildOptions",
    "BuildPipeline",
    "CompiledProgram",
    "Module",
    "Token",
    "annotate_module",
    "compile_module",
    "parse",
    "preprocess",
    "render_module",
    "tokenize",
]
