"""The delete-site annotation pass — the paper's Figure 4, as an AST pass.

The original (C++)::

    void g(char * p) { delete p; }

becomes::

    template <class Type>
    inline Type * ca_deletor_single(Type * object) {
        VALGRIND_HG_DESTRUCT(object, sizeof(Type));
        return object;
    }
    void g(char * p) { delete ca_deletor_single(p); }

Here the same transformation on the MiniCxx AST: every ``delete e``
becomes ``delete __ca_deletor_single(e)``, and the helper —

::

    fn __ca_deletor_single(object) {
        hg_destruct(object);
        return object;
    }

— is injected once per module (``hg_destruct`` is the MiniCxx builtin
for the client request; the object's size is recovered from its class,
playing the role of ``sizeof(Type)``).

Properties the paper calls out, preserved here:

* **Idempotent and non-invasive**: the pass produces a *new* module; the
  input AST (the programmer's source) is never modified, and running the
  pass twice annotates nothing twice.
* **No-op without the tool**: ``hg_destruct`` compiles to a client
  request that costs nothing when no detector is registered.
* **Partial coverage degrades gracefully**: un-annotated modules still
  run and still get checked — they just keep their destructor FPs
  (experiment E12 sweeps this).
"""

from __future__ import annotations

import copy

from repro.instrument import ast_nodes as A

__all__ = ["annotate_module", "HELPER_NAME", "count_delete_sites"]

HELPER_NAME = "__ca_deletor_single"


def annotate_module(module: A.Module) -> A.Module:
    """Return an annotated copy of ``module`` (input left untouched)."""
    out = copy.deepcopy(module)
    sites = _rewrite_deletes(out)
    if sites and not _has_helper(out):
        out.functions.insert(0, _make_helper())
    return out


def count_delete_sites(module: A.Module, *, annotated: bool | None = None) -> int:
    """Count ``delete`` statements; filter by annotation state if given."""
    count = 0
    for node in A.walk(module):
        if isinstance(node, A.Delete):
            is_annotated = _is_annotated(node)
            if annotated is None or is_annotated == annotated:
                count += 1
    return count


# ----------------------------------------------------------------------


def _rewrite_deletes(module: A.Module) -> int:
    sites = 0
    for node in A.walk(module):
        if isinstance(node, A.Delete) and not _is_annotated(node):
            node.operand = A.Call(
                line=node.line, func=HELPER_NAME, args=[node.operand]
            )
            sites += 1
    return sites


def _is_annotated(node: A.Delete) -> bool:
    return isinstance(node.operand, A.Call) and node.operand.func == HELPER_NAME


def _has_helper(module: A.Module) -> bool:
    return any(f.name == HELPER_NAME for f in module.functions)


def _make_helper() -> A.FunctionDecl:
    """Synthesise the Figure 4 helper function."""
    body = A.Block(
        line=0,
        body=[
            A.ExprStmt(
                line=0,
                expr=A.Call(line=0, func="hg_destruct", args=[A.Name(line=0, ident="object")]),
            ),
            A.Return(line=0, value=A.Name(line=0, ident="object")),
        ],
    )
    return A.FunctionDecl(HELPER_NAME, ["object"], body, line=0, synthetic=True)
