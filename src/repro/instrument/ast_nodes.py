"""MiniCxx abstract syntax tree.

Plain dataclasses; every node carries its source line for diagnostics,
the annotation pass and compiled-code stack frames.  The tree is what
the paper calls "an abstract syntax tree that is used for source code
analysis and annotation" (§3.3, speaking of ELSA).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    # module structure
    "Module",
    "ClassDecl",
    "FieldDecl",
    "MethodDecl",
    "FunctionDecl",
    "GlobalDecl",
    # statements
    "Stmt",
    "VarDecl",
    "Assign",
    "ExprStmt",
    "If",
    "While",
    "Return",
    "Delete",
    "Join",
    "Block",
    # expressions
    "Expr",
    "IntLit",
    "StrLit",
    "BoolLit",
    "NullLit",
    "Name",
    "Member",
    "Unary",
    "Binary",
    "Call",
    "MethodCall",
    "New",
    "Spawn",
    "walk",
]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Name(Expr):
    """A variable reference (local, parameter, global or function)."""

    ident: str = ""


@dataclass
class Member(Expr):
    """``obj.field`` — a guest-memory field read (or write target)."""

    obj: Expr = None
    field_name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Call(Expr):
    """Free-function or builtin call ``f(a, b)``."""

    func: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class MethodCall(Expr):
    """``obj.m(a, b)`` — virtual dispatch through the vptr."""

    obj: Expr = None
    method: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class New(Expr):
    """``new ClassName`` — heap allocation + constructor chain."""

    class_name: str = ""


@dataclass
class Spawn(Expr):
    """``spawn f(a, b)`` — pthread_create; evaluates to a thread handle."""

    func: str = ""
    args: list[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    init: Expr = None


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a Name or Member."""

    target: Expr = None
    value: Expr = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Block = None
    otherwise: Block | None = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Block = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Delete(Stmt):
    """``delete expr`` — the annotation pass rewrites this node's operand."""

    operand: Expr = None


@dataclass
class Join(Stmt):
    """``join expr`` — pthread_join on a thread handle."""

    operand: Expr = None


# ----------------------------------------------------------------------
# Module structure
# ----------------------------------------------------------------------


@dataclass
class FieldDecl:
    name: str
    line: int = 0


@dataclass
class MethodDecl:
    name: str
    params: list[str]
    body: Block
    line: int = 0


@dataclass
class ClassDecl:
    name: str
    base: str | None
    fields: list[FieldDecl]
    methods: list[MethodDecl]
    dtor: Block | None = None
    line: int = 0


@dataclass
class FunctionDecl:
    name: str
    params: list[str]
    body: Block
    line: int = 0
    #: Set by the annotation pass on synthesised helpers so that a
    #: second annotation run does not re-annotate them.
    synthetic: bool = False


@dataclass
class GlobalDecl:
    """``global name = expr;`` — one shared guest word, initialised
    before ``main`` runs (so globals participate in race detection)."""

    name: str
    init: Expr | None
    line: int = 0


@dataclass
class Module:
    classes: list[ClassDecl] = field(default_factory=list)
    functions: list[FunctionDecl] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
    source_name: str = "<minicxx>"

    def function(self, name: str) -> FunctionDecl:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r} in module")

    def cls(self, name: str) -> ClassDecl:
        for c in self.classes:
            if c.name == name:
                return c
        raise KeyError(f"no class {name!r} in module")


# ----------------------------------------------------------------------
# Generic traversal
# ----------------------------------------------------------------------


def walk(node):
    """Yield ``node`` and every AST descendant (module/stmt/expr)."""
    yield node
    if isinstance(node, Module):
        children = (
            [m.body for c in node.classes for m in c.methods]
            + [c.dtor for c in node.classes if c.dtor is not None]
            + [f.body for f in node.functions]
            + [g.init for g in node.globals if g.init is not None]
        )
    elif isinstance(node, Block):
        children = list(node.body)
    elif isinstance(node, VarDecl):
        children = [node.init] if node.init is not None else []
    elif isinstance(node, Assign):
        children = [node.target, node.value]
    elif isinstance(node, ExprStmt):
        children = [node.expr]
    elif isinstance(node, If):
        children = [node.cond, node.then] + (
            [node.otherwise] if node.otherwise is not None else []
        )
    elif isinstance(node, While):
        children = [node.cond, node.body]
    elif isinstance(node, Return):
        children = [node.value] if node.value is not None else []
    elif isinstance(node, (Delete, Join)):
        children = [node.operand]
    elif isinstance(node, Member):
        children = [node.obj]
    elif isinstance(node, Unary):
        children = [node.operand]
    elif isinstance(node, Binary):
        children = [node.left, node.right]
    elif isinstance(node, Call):
        children = list(node.args)
    elif isinstance(node, MethodCall):
        children = [node.obj] + list(node.args)
    elif isinstance(node, Spawn):
        children = list(node.args)
    else:
        children = []
    for child in children:
        yield from walk(child)
