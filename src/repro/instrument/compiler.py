"""MiniCxx → guest-program compiler (stage three of the §3.3 pipeline).

Lowers a parsed (and possibly annotated) :class:`Module` into a
:class:`CompiledProgram` whose :meth:`CompiledProgram.main` runs on the
VM.  The mapping onto the simulated machine:

* **Globals** live in guest memory (one word each, allocated before
  ``main`` runs) — so global accesses are shared-memory accesses the
  detectors see, like the data/bss of a real binary.
* **Locals and parameters** are host-level (registers/stack) — invisible
  to the detectors, like compiler-allocated temporaries.
* **Objects** are :class:`repro.cxx.object_model.CxxObject` instances:
  ``new`` runs the constructor chain (vptr writes!), ``delete`` the
  destructor chain, field access loads/stores guest words, method calls
  dispatch through the vptr.  Allocation goes through the configured
  :class:`repro.cxx.allocator.CxxAllocator`.
* **Builtins** map one-to-one onto :class:`repro.runtime.vm.GuestAPI`
  operations (mutexes, rw-locks, queues, semaphores, condvars, sleep,
  client requests) plus the :mod:`repro.cxx` library (COW strings,
  libc's ``localtime``).

Execution is a tree-walking interpreter: MiniCxx programs are small and
every interesting cost is a guest *trap* anyway, so interpreter overhead
is irrelevant next to the detector work it triggers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cxx.allocator import AllocStrategy, CxxAllocator
from repro.cxx.libc import LibC
from repro.cxx.object_model import CxxClass, CxxObject, delete_object, new_object
from repro.cxx.string import CowString
from repro.errors import CompileError, GuestFault
from repro.instrument import ast_nodes as A
from repro.oracle import GroundTruth

__all__ = ["CompiledProgram", "compile_module"]


class _Return(Exception):
    """Internal non-error control flow for ``return``."""

    def __init__(self, value) -> None:
        self.value = value


@dataclass
class _Env:
    """One activation record: locals over a shared runtime."""

    rt: "_Runtime"
    locals: dict[str, object] = field(default_factory=dict)


class _Runtime:
    """Per-run state shared by all threads of the compiled program."""

    def __init__(self, program: "CompiledProgram", api) -> None:
        self.program = program
        self.truth = program.truth
        self.allocator = CxxAllocator(
            api,
            strategy=program.alloc_strategy,
            truth=program.truth,
            announce=program.announce_reuse,
        )
        self.libc = LibC(truth=program.truth)
        self.globals: dict[str, int] = {}
        self.output: list[object] = []


class CompiledProgram:
    """An executable MiniCxx module.

    Run it with ``VM().run(program.main)``; after the run,
    :attr:`last_output` holds everything the program ``print``-ed.
    """

    def __init__(
        self,
        module: A.Module,
        *,
        truth: GroundTruth | None = None,
        alloc_strategy: AllocStrategy = AllocStrategy.POOL,
        announce_reuse: bool = False,
        entry: str = "main",
    ) -> None:
        self.module = module
        self.truth = truth
        self.alloc_strategy = alloc_strategy
        self.announce_reuse = announce_reuse
        self.entry = entry
        self.classes: dict[str, CxxClass] = {}
        self.functions: dict[str, A.FunctionDecl] = {}
        self.last_output: list[object] = []
        self._build()

    # ------------------------------------------------------------------
    # Static build
    # ------------------------------------------------------------------

    def _build(self) -> None:
        module = self.module
        for fn in module.functions:
            if fn.name in self.functions:
                raise CompileError(f"duplicate function {fn.name!r}")
            self.functions[fn.name] = fn
        for cls in module.classes:
            if cls.name in self.classes:
                raise CompileError(f"duplicate class {cls.name!r}")
            base = None
            if cls.base is not None:
                base = self.classes.get(cls.base)
                if base is None:
                    raise CompileError(
                        f"class {cls.name!r}: unknown base {cls.base!r} "
                        "(bases must be declared first)"
                    )
            methods = {}
            for m in cls.methods:
                methods[m.name] = self._make_method(m)
            if cls.dtor is not None:
                methods["~"] = self._make_dtor(cls)
            self.classes[cls.name] = CxxClass(
                name=cls.name,
                base=base,
                fields=tuple(f.name for f in cls.fields),
                methods=methods,
                file=module.source_name,
                line=cls.line,
            )
        if self.entry not in self.functions:
            raise CompileError(f"module has no {self.entry!r} function")
        self._check_references()

    def _check_references(self) -> None:
        for node in A.walk(self.module):
            if isinstance(node, A.New) and node.class_name not in self.classes:
                raise CompileError(
                    f"new of unknown class {node.class_name!r} (line {node.line})"
                )
            if isinstance(node, (A.Call, A.Spawn)):
                name = node.func
                if name not in self.functions and name not in _BUILTIN_NAMES:
                    raise CompileError(
                        f"call to unknown function {name!r} (line {node.line})"
                    )

    def _make_method(self, decl: A.MethodDecl):
        program = self

        def impl(api, obj, *args, __decl=decl):
            if len(args) != len(__decl.params):
                raise GuestFault(
                    f"method {__decl.name} expects {len(__decl.params)} args, "
                    f"got {len(args)}",
                    tid=api.tid,
                )
            rt = program._runtime_of(api)
            env = _Env(rt)
            env.locals["this"] = obj
            env.locals.update(zip(__decl.params, args))
            with api.frame(
                f"{obj.cls.name}::{__decl.name}", program.module.source_name, __decl.line
            ):
                try:
                    program._exec_block(api, env, __decl.body)
                except _Return as r:
                    return r.value
            return None

        return impl

    def _make_dtor(self, decl: A.ClassDecl):
        program = self

        def impl(api, obj, *, __decl=decl):
            rt = program._runtime_of(api)
            env = _Env(rt)
            env.locals["this"] = obj
            try:
                program._exec_block(api, env, __decl.dtor)
            except _Return:
                pass

        return impl

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def main(self, api, *args):
        """VM entry point: allocate globals, run initialisers, call main."""
        rt = _Runtime(self, api)
        self._rt_by_vm = getattr(self, "_rt_by_vm", {})
        self._rt_by_vm[id(api.vm)] = rt
        if self.module.globals:
            base = api.malloc(len(self.module.globals), tag="globals")
            for i, g in enumerate(self.module.globals):
                rt.globals[g.name] = base + i
            env = _Env(rt)
            for g in self.module.globals:
                value = (
                    self._eval(api, env, g.init) if g.init is not None else 0
                )
                api.store(rt.globals[g.name], value)
        result = self._call_function(api, rt, self.functions[self.entry], list(args))
        self.last_output = rt.output
        return result

    def _runtime_of(self, api) -> _Runtime:
        return self._rt_by_vm[id(api.vm)]

    # ------------------------------------------------------------------
    # Interpreter
    # ------------------------------------------------------------------

    def _call_function(self, api, rt: _Runtime, decl: A.FunctionDecl, args: list):
        if len(args) != len(decl.params):
            raise GuestFault(
                f"function {decl.name} expects {len(decl.params)} args, got {len(args)}",
                tid=api.tid,
            )
        env = _Env(rt)
        env.locals.update(zip(decl.params, args))
        with api.frame(decl.name, self.module.source_name, decl.line):
            try:
                self._exec_block(api, env, decl.body)
            except _Return as r:
                return r.value
        return None

    def _exec_block(self, api, env: _Env, block: A.Block) -> None:
        for stmt in block.body:
            self._exec_stmt(api, env, stmt)

    def _exec_stmt(self, api, env: _Env, stmt: A.Stmt) -> None:
        api.at(stmt.line)
        if isinstance(stmt, A.VarDecl):
            env.locals[stmt.name] = self._eval(api, env, stmt.init)
        elif isinstance(stmt, A.Assign):
            value = self._eval(api, env, stmt.value)
            self._assign(api, env, stmt.target, value)
        elif isinstance(stmt, A.ExprStmt):
            self._eval(api, env, stmt.expr)
        elif isinstance(stmt, A.If):
            if self._truthy(self._eval(api, env, stmt.cond)):
                self._exec_block(api, env, stmt.then)
            elif stmt.otherwise is not None:
                self._exec_block(api, env, stmt.otherwise)
        elif isinstance(stmt, A.While):
            while self._truthy(self._eval(api, env, stmt.cond)):
                self._exec_block(api, env, stmt.body)
        elif isinstance(stmt, A.Return):
            value = self._eval(api, env, stmt.value) if stmt.value is not None else None
            raise _Return(value)
        elif isinstance(stmt, A.Delete):
            obj = self._eval(api, env, stmt.operand)
            if not isinstance(obj, CxxObject):
                raise GuestFault(
                    f"delete of non-object {obj!r} (line {stmt.line})", tid=api.tid
                )
            # NOTE: annotation happens *in source* (the rewritten operand
            # already emitted hg_destruct via the helper), so the runtime
            # delete itself never annotates — faithful to Figure 4.
            delete_object(
                api, obj, env.rt.allocator, annotate=False, truth=env.rt.truth
            )
        elif isinstance(stmt, A.Join):
            handle = self._eval(api, env, stmt.operand)
            api.join(handle)
        elif isinstance(stmt, A.Block):
            self._exec_block(api, env, stmt)
        else:  # pragma: no cover - parser produces no other nodes
            raise CompileError(f"unknown statement {stmt!r}")

    def _assign(self, api, env: _Env, target: A.Expr, value) -> None:
        if isinstance(target, A.Name):
            name = target.ident
            if name in env.locals:
                env.locals[name] = value
            elif name in env.rt.globals:
                api.store(env.rt.globals[name], value)
            else:
                env.locals[name] = value
        elif isinstance(target, A.Member):
            obj = self._eval(api, env, target.obj)
            self._require_object(api, obj, target)
            obj.set(api, target.field_name, value)
        else:  # pragma: no cover - parser enforces lvalues
            raise CompileError("bad assignment target")

    # -- expressions -----------------------------------------------------

    def _eval(self, api, env: _Env, expr: A.Expr):
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.StrLit):
            return expr.value
        if isinstance(expr, A.BoolLit):
            return expr.value
        if isinstance(expr, A.NullLit):
            return None
        if isinstance(expr, A.Name):
            return self._lookup(api, env, expr)
        if isinstance(expr, A.Member):
            obj = self._eval(api, env, expr.obj)
            self._require_object(api, obj, expr)
            return obj.get(api, expr.field_name)
        if isinstance(expr, A.Unary):
            operand = self._eval(api, env, expr.operand)
            if expr.op == "-":
                return -operand
            return not self._truthy(operand)
        if isinstance(expr, A.Binary):
            return self._binary(api, env, expr)
        if isinstance(expr, A.Call):
            return self._call(api, env, expr)
        if isinstance(expr, A.MethodCall):
            obj = self._eval(api, env, expr.obj)
            self._require_object(api, obj, expr)
            args = [self._eval(api, env, a) for a in expr.args]
            return obj.vcall(api, expr.method, *args)
        if isinstance(expr, A.New):
            cls = self.classes[expr.class_name]
            return new_object(api, cls, env.rt.allocator)
        if isinstance(expr, A.Spawn):
            return self._spawn(api, env, expr)
        raise CompileError(f"unknown expression {expr!r}")  # pragma: no cover

    def _lookup(self, api, env: _Env, expr: A.Name):
        name = expr.ident
        if name in env.locals:
            return env.locals[name]
        if name in env.rt.globals:
            return api.load(env.rt.globals[name])
        raise GuestFault(f"undefined variable {name!r} (line {expr.line})", tid=api.tid)

    def _binary(self, api, env: _Env, expr: A.Binary):
        op = expr.op
        if op == "&&":
            return self._truthy(self._eval(api, env, expr.left)) and self._truthy(
                self._eval(api, env, expr.right)
            )
        if op == "||":
            return self._truthy(self._eval(api, env, expr.left)) or self._truthy(
                self._eval(api, env, expr.right)
            )
        left = self._eval(api, env, expr.left)
        right = self._eval(api, env, expr.right)
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left // right
            if op == "%":
                return left % right
            if op == "==":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == ">":
                return left > right
            if op == "<=":
                return left <= right
            if op == ">=":
                return left >= right
        except (TypeError, ZeroDivisionError) as exc:
            raise GuestFault(
                f"arithmetic fault {left!r} {op} {right!r}: {exc} (line {expr.line})",
                tid=api.tid,
            ) from None
        raise CompileError(f"unknown operator {op!r}")  # pragma: no cover

    def _call(self, api, env: _Env, expr: A.Call):
        args = [self._eval(api, env, a) for a in expr.args]
        decl = self.functions.get(expr.func)
        if decl is not None:
            return self._call_function(api, env.rt, decl, args)
        builtin = _BUILTINS.get(expr.func)
        if builtin is None:  # pragma: no cover - compile-time checked
            raise CompileError(f"unknown function {expr.func!r}")
        return builtin(api, env, args, expr)

    def _spawn(self, api, env: _Env, expr: A.Spawn):
        decl = self.functions.get(expr.func)
        if decl is None:
            raise CompileError(f"spawn of unknown function {expr.func!r}")
        args = [self._eval(api, env, a) for a in expr.args]
        rt = env.rt
        program = self

        def thread_main(child_api):
            return program._call_function(child_api, rt, decl, args)

        return api.spawn(thread_main, name=expr.func)

    @staticmethod
    def _truthy(value) -> bool:
        return bool(value)

    @staticmethod
    def _require_object(api, obj, expr) -> None:
        if not isinstance(obj, CxxObject):
            raise GuestFault(
                f"member access on non-object {obj!r} (line {expr.line})",
                tid=api.tid,
            )


# ----------------------------------------------------------------------
# Builtins
# ----------------------------------------------------------------------


def _need(args, n, expr):
    if len(args) != n:
        raise GuestFault(
            f"builtin {expr.func} expects {n} args, got {len(args)} (line {expr.line})"
        )


def _bi_mutex(api, env, args, expr):
    return api.mutex()


def _bi_rwlock(api, env, args, expr):
    return api.rwlock()


def _bi_lock(api, env, args, expr):
    _need(args, 1, expr)
    api.lock(args[0])


def _bi_unlock(api, env, args, expr):
    _need(args, 1, expr)
    api.unlock(args[0])


def _bi_rdlock(api, env, args, expr):
    _need(args, 1, expr)
    api.rdlock(args[0])


def _bi_wrlock(api, env, args, expr):
    _need(args, 1, expr)
    api.wrlock(args[0])


def _bi_rwunlock(api, env, args, expr):
    _need(args, 1, expr)
    api.rw_unlock(args[0])


def _bi_queue(api, env, args, expr):
    return api.queue(maxsize=args[0] if args else None)


def _bi_put(api, env, args, expr):
    _need(args, 2, expr)
    api.put(args[0], args[1])


def _bi_take(api, env, args, expr):
    _need(args, 1, expr)
    return api.get(args[0])


def _bi_sem(api, env, args, expr):
    return api.semaphore(args[0] if args else 0)


def _bi_sem_post(api, env, args, expr):
    _need(args, 1, expr)
    api.sem_post(args[0])


def _bi_sem_wait(api, env, args, expr):
    _need(args, 1, expr)
    api.sem_wait(args[0])


def _bi_condvar(api, env, args, expr):
    return api.condvar()


def _bi_cond_wait(api, env, args, expr):
    _need(args, 2, expr)
    api.cond_wait(args[0], args[1])


def _bi_cond_signal(api, env, args, expr):
    _need(args, 1, expr)
    api.cond_signal(args[0])


def _bi_cond_broadcast(api, env, args, expr):
    _need(args, 1, expr)
    api.cond_broadcast(args[0])


def _bi_yield(api, env, args, expr):
    api.yield_()


def _bi_sleep(api, env, args, expr):
    _need(args, 1, expr)
    api.sleep(args[0])


def _bi_print(api, env, args, expr):
    env.rt.output.extend(args)


def _bi_hg_destruct(api, env, args, expr):
    _need(args, 1, expr)
    obj = args[0]
    if not isinstance(obj, CxxObject):
        raise GuestFault(
            f"hg_destruct of non-object {obj!r} (line {expr.line})", tid=api.tid
        )
    api.hg_destruct(obj.addr, obj.cls.size)
    return obj


def _bi_string(api, env, args, expr):
    _need(args, 1, expr)
    return CowString.create(api, args[0], env.rt.allocator, truth=env.rt.truth)


def _bi_scopy(api, env, args, expr):
    _need(args, 1, expr)
    return args[0].copy(api)


def _bi_svalue(api, env, args, expr):
    _need(args, 1, expr)
    return args[0].value(api)


def _bi_sdispose(api, env, args, expr):
    _need(args, 1, expr)
    args[0].dispose(api)


def _bi_localtime(api, env, args, expr):
    _need(args, 1, expr)
    return env.rt.libc.localtime(api, args[0])


def _bi_assert(api, env, args, expr):
    _need(args, 1, expr)
    if not args[0]:
        raise GuestFault(f"assertion failed (line {expr.line})", tid=api.tid)


_BUILTINS = {
    "mutex": _bi_mutex,
    "rwlock": _bi_rwlock,
    "lock": _bi_lock,
    "unlock": _bi_unlock,
    "rdlock": _bi_rdlock,
    "wrlock": _bi_wrlock,
    "rwunlock": _bi_rwunlock,
    "queue": _bi_queue,
    "put": _bi_put,
    "take": _bi_take,
    "sem": _bi_sem,
    "sem_post": _bi_sem_post,
    "sem_wait": _bi_sem_wait,
    "condvar": _bi_condvar,
    "cond_wait": _bi_cond_wait,
    "cond_signal": _bi_cond_signal,
    "cond_broadcast": _bi_cond_broadcast,
    "yield": _bi_yield,
    "sleep": _bi_sleep,
    "print": _bi_print,
    "hg_destruct": _bi_hg_destruct,
    "string": _bi_string,
    "scopy": _bi_scopy,
    "svalue": _bi_svalue,
    "sdispose": _bi_sdispose,
    "localtime": _bi_localtime,
    "assert": _bi_assert,
}

_BUILTIN_NAMES = frozenset(_BUILTINS)


def compile_module(
    module: A.Module,
    *,
    truth: GroundTruth | None = None,
    alloc_strategy: AllocStrategy = AllocStrategy.POOL,
    announce_reuse: bool = False,
    entry: str = "main",
) -> CompiledProgram:
    """Compile ``module``; see :class:`CompiledProgram`."""
    return CompiledProgram(
        module,
        truth=truth,
        alloc_strategy=alloc_strategy,
        announce_reuse=announce_reuse,
        entry=entry,
    )
