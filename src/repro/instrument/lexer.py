"""MiniCxx lexer.

Hand-rolled scanner producing a flat token list.  Tokens carry source
positions so that parse errors, the annotation pass and compiled stack
frames can all point back at the original line — the "debug symbols"
Helgrind wants (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "class",
        "field",
        "method",
        "dtor",
        "fn",
        "var",
        "global",
        "if",
        "else",
        "while",
        "return",
        "new",
        "delete",
        "spawn",
        "join",
        "true",
        "false",
        "null",
    }
)

_TWO_CHAR_OPS = ("==", "!=", "<=", ">=", "&&", "||")
_ONE_CHAR_OPS = "+-*/%<>=!(){},;.:&|"


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token: ``kind`` is 'ident', 'int', 'string', 'kw',
    'op' or 'eof'; ``value`` the lexeme (or decoded value)."""

    kind: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Scan ``source`` into tokens (with a trailing ``eof`` token)."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        # Whitespace / newlines --------------------------------------
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # Comments ----------------------------------------------------
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, col)
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # String literals ----------------------------------------------
        if ch == '"':
            j = i + 1
            buf = []
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise LexError("newline in string literal", line, col)
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise LexError("unterminated string literal", line, col)
            tokens.append(Token("string", "".join(buf), line, col))
            col += j + 1 - i
            i = j + 1
            continue
        # Numbers -------------------------------------------------------
        # ASCII digits only: str.isdigit() accepts characters like '²'
        # that int() rejects, so the checks must be explicit.
        if "0" <= ch <= "9":
            j = i
            while j < n and "0" <= source[j] <= "9":
                j += 1
            tokens.append(Token("int", int(source[i:j]), line, col))
            col += j - i
            i = j
            continue
        # Identifiers / keywords (ASCII only — MiniCxx is C++-flavoured)
        if "a" <= ch <= "z" or "A" <= ch <= "Z" or ch == "_":
            j = i
            while j < n and (
                "a" <= source[j] <= "z"
                or "A" <= source[j] <= "Z"
                or "0" <= source[j] <= "9"
                or source[j] == "_"
            ):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, col))
            col += j - i
            i = j
            continue
        # Operators ----------------------------------------------------
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("op", two, line, col))
            i += 2
            col += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("op", ch, line, col))
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", None, line, col))
    return tokens
