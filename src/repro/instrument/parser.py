"""MiniCxx recursive-descent parser.

Grammar (EBNF, ``{}`` = repetition, ``[]`` = option)::

    module      := { class_decl | fn_decl | global_decl }
    class_decl  := "class" IDENT [":" IDENT] "{" { member } "}" ";"
    member      := "field" IDENT ";"
                 | "method" IDENT "(" params ")" block
                 | "dtor" block
    fn_decl     := "fn" IDENT "(" params ")" block
    global_decl := "global" IDENT ["=" expr] ";"
    params      := [ IDENT { "," IDENT } ]
    block       := "{" { stmt } "}"
    stmt        := "var" IDENT "=" expr ";"
                 | "if" "(" expr ")" block [ "else" block ]
                 | "while" "(" expr ")" block
                 | "return" [expr] ";"
                 | "delete" expr ";"
                 | "join" expr ";"
                 | assign_or_expr ";"
    assign_or_expr := expr [ "=" expr ]      -- lhs must be Name/Member
    expr        := or_expr
    or_expr     := and_expr { "||" and_expr }
    and_expr    := cmp_expr { "&&" cmp_expr }
    cmp_expr    := add_expr { ("=="|"!="|"<"|">"|"<="|">=") add_expr }
    add_expr    := mul_expr { ("+"|"-") mul_expr }
    mul_expr    := unary { ("*"|"/"|"%") unary }
    unary       := ("-"|"!") unary | postfix
    postfix     := primary { "." IDENT [ "(" args ")" ] }
    primary     := INT | STRING | "true" | "false" | "null"
                 | "new" IDENT | "spawn" IDENT "(" args ")"
                 | IDENT [ "(" args ")" ] | "(" expr ")"

The parser is deliberately a plain LL(1)-with-peeking descent — the GLR
power of ELSA is only needed for real C++'s ambiguities, which MiniCxx
does not have.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.instrument import ast_nodes as A
from repro.instrument.lexer import Token, tokenize

__all__ = ["parse"]


def parse(source: str, *, source_name: str = "<minicxx>") -> A.Module:
    """Parse MiniCxx source text into a :class:`Module`."""
    return _Parser(tokenize(source), source_name).module()


class _Parser:
    def __init__(self, tokens: list[Token], source_name: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._source_name = source_name

    # -- token plumbing -------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _check(self, kind: str, value=None) -> bool:
        tok = self._cur
        return tok.kind == kind and (value is None or tok.value == value)

    def _accept(self, kind: str, value=None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value=None) -> Token:
        tok = self._cur
        if not self._check(kind, value):
            want = value if value is not None else kind
            raise ParseError(
                f"expected {want!r}, got {tok.value!r}", tok.line, tok.column
            )
        return self._advance()

    # -- module ----------------------------------------------------------

    def module(self) -> A.Module:
        mod = A.Module(source_name=self._source_name)
        while not self._check("eof"):
            if self._check("kw", "class"):
                mod.classes.append(self._class_decl())
            elif self._check("kw", "fn"):
                mod.functions.append(self._fn_decl())
            elif self._check("kw", "global"):
                mod.globals.append(self._global_decl())
            else:
                tok = self._cur
                raise ParseError(
                    f"expected 'class', 'fn' or 'global' at top level, got {tok.value!r}",
                    tok.line,
                    tok.column,
                )
        return mod

    def _class_decl(self) -> A.ClassDecl:
        kw = self._expect("kw", "class")
        name = self._expect("ident").value
        base = None
        if self._accept("op", ":"):
            base = self._expect("ident").value
        self._expect("op", "{")
        fields: list[A.FieldDecl] = []
        methods: list[A.MethodDecl] = []
        dtor: A.Block | None = None
        while not self._accept("op", "}"):
            if self._check("kw", "field"):
                f = self._advance()
                fname = self._expect("ident").value
                self._expect("op", ";")
                fields.append(A.FieldDecl(fname, line=f.line))
            elif self._check("kw", "method"):
                m = self._advance()
                mname = self._expect("ident").value
                params = self._params()
                body = self._block()
                methods.append(A.MethodDecl(mname, params, body, line=m.line))
            elif self._check("kw", "dtor"):
                d = self._advance()
                if dtor is not None:
                    raise ParseError("duplicate dtor", d.line, d.column)
                dtor = self._block()
            else:
                tok = self._cur
                raise ParseError(
                    f"expected class member, got {tok.value!r}", tok.line, tok.column
                )
        self._expect("op", ";")
        return A.ClassDecl(name, base, fields, methods, dtor, line=kw.line)

    def _fn_decl(self) -> A.FunctionDecl:
        kw = self._expect("kw", "fn")
        name = self._expect("ident").value
        params = self._params()
        body = self._block()
        return A.FunctionDecl(name, params, body, line=kw.line)

    def _global_decl(self) -> A.GlobalDecl:
        kw = self._expect("kw", "global")
        name = self._expect("ident").value
        init = None
        if self._accept("op", "="):
            init = self._expr()
        self._expect("op", ";")
        return A.GlobalDecl(name, init, line=kw.line)

    def _params(self) -> list[str]:
        self._expect("op", "(")
        params: list[str] = []
        if not self._check("op", ")"):
            params.append(self._expect("ident").value)
            while self._accept("op", ","):
                params.append(self._expect("ident").value)
        self._expect("op", ")")
        return params

    # -- statements --------------------------------------------------------

    def _block(self) -> A.Block:
        brace = self._expect("op", "{")
        body: list[A.Stmt] = []
        while not self._accept("op", "}"):
            body.append(self._stmt())
        return A.Block(line=brace.line, body=body)

    def _stmt(self) -> A.Stmt:
        tok = self._cur
        if self._accept("kw", "var"):
            name = self._expect("ident").value
            self._expect("op", "=")
            init = self._expr()
            self._expect("op", ";")
            return A.VarDecl(line=tok.line, name=name, init=init)
        if self._accept("kw", "if"):
            self._expect("op", "(")
            cond = self._expr()
            self._expect("op", ")")
            then = self._block()
            otherwise = None
            if self._accept("kw", "else"):
                otherwise = self._block()
            return A.If(line=tok.line, cond=cond, then=then, otherwise=otherwise)
        if self._accept("kw", "while"):
            self._expect("op", "(")
            cond = self._expr()
            self._expect("op", ")")
            body = self._block()
            return A.While(line=tok.line, cond=cond, body=body)
        if self._accept("kw", "return"):
            value = None
            if not self._check("op", ";"):
                value = self._expr()
            self._expect("op", ";")
            return A.Return(line=tok.line, value=value)
        if self._accept("kw", "delete"):
            operand = self._expr()
            self._expect("op", ";")
            return A.Delete(line=tok.line, operand=operand)
        if self._accept("kw", "join"):
            operand = self._expr()
            self._expect("op", ";")
            return A.Join(line=tok.line, operand=operand)
        # assignment or expression statement
        expr = self._expr()
        if self._accept("op", "="):
            if not isinstance(expr, (A.Name, A.Member)):
                raise ParseError(
                    "assignment target must be a variable or member",
                    tok.line,
                    tok.column,
                )
            value = self._expr()
            self._expect("op", ";")
            return A.Assign(line=tok.line, target=expr, value=value)
        self._expect("op", ";")
        return A.ExprStmt(line=tok.line, expr=expr)

    # -- expressions ---------------------------------------------------------

    def _expr(self) -> A.Expr:
        return self._or()

    def _binary_level(self, sub, ops) -> A.Expr:
        left = sub()
        while self._cur.kind == "op" and self._cur.value in ops:
            op = self._advance()
            right = sub()
            left = A.Binary(line=op.line, op=op.value, left=left, right=right)
        return left

    def _or(self) -> A.Expr:
        return self._binary_level(self._and, ("||",))

    def _and(self) -> A.Expr:
        return self._binary_level(self._cmp, ("&&",))

    def _cmp(self) -> A.Expr:
        return self._binary_level(self._add, ("==", "!=", "<", ">", "<=", ">="))

    def _add(self) -> A.Expr:
        return self._binary_level(self._mul, ("+", "-"))

    def _mul(self) -> A.Expr:
        return self._binary_level(self._unary, ("*", "/", "%"))

    def _unary(self) -> A.Expr:
        if self._cur.kind == "op" and self._cur.value in ("-", "!"):
            op = self._advance()
            return A.Unary(line=op.line, op=op.value, operand=self._unary())
        return self._postfix()

    def _postfix(self) -> A.Expr:
        expr = self._primary()
        while self._accept("op", "."):
            name_tok = self._expect("ident")
            if self._check("op", "("):
                args = self._args()
                expr = A.MethodCall(
                    line=name_tok.line, obj=expr, method=name_tok.value, args=args
                )
            else:
                expr = A.Member(
                    line=name_tok.line, obj=expr, field_name=name_tok.value
                )
        return expr

    def _args(self) -> list[A.Expr]:
        self._expect("op", "(")
        args: list[A.Expr] = []
        if not self._check("op", ")"):
            args.append(self._expr())
            while self._accept("op", ","):
                args.append(self._expr())
        self._expect("op", ")")
        return args

    def _primary(self) -> A.Expr:
        tok = self._cur
        if tok.kind == "int":
            self._advance()
            return A.IntLit(line=tok.line, value=tok.value)
        if tok.kind == "string":
            self._advance()
            return A.StrLit(line=tok.line, value=tok.value)
        if self._accept("kw", "true"):
            return A.BoolLit(line=tok.line, value=True)
        if self._accept("kw", "false"):
            return A.BoolLit(line=tok.line, value=False)
        if self._accept("kw", "null"):
            return A.NullLit(line=tok.line)
        if self._accept("kw", "new"):
            cls = self._expect("ident").value
            return A.New(line=tok.line, class_name=cls)
        if self._accept("kw", "spawn"):
            fname = self._expect("ident").value
            args = self._args()
            return A.Spawn(line=tok.line, func=fname, args=args)
        if tok.kind == "ident":
            self._advance()
            if self._check("op", "("):
                args = self._args()
                return A.Call(line=tok.line, func=tok.value, args=args)
            return A.Name(line=tok.line, ident=tok.value)
        if self._accept("op", "("):
            inner = self._expr()
            self._expect("op", ")")
            return inner
        raise ParseError(f"unexpected token {tok.value!r}", tok.line, tok.column)
