"""The three-stage build pipeline behind a compiler-wrapper façade.

§3.3: *"the instrumentation and compilation process has three stages.
First, the GNU compiler is used to preprocess the source file.  Then the
parser reads the preprocessed source file and generates the annotated
source file.  In the third and last step, the compiler generates object
code from the annotated source file.  This can be done in a shell script
that replaces the compiler call during the build process, making the
instrumentation transparent to the build tools and the programmer."*

:class:`BuildPipeline` is that shell script: call :meth:`build` with
source text and you get an executable program back.  Whether the
annotation stage runs is a single :class:`BuildOptions` switch — "in
most cases only a configuration switch for the build process has to be
set" (§5) — and the intermediate artefacts (preprocessed source,
annotated source) are kept for inspection, because the paper's whole
point is that a developer can diff them (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cxx.allocator import AllocStrategy
from repro.instrument.annotate import annotate_module, count_delete_sites
from repro.instrument.compiler import CompiledProgram, compile_module
from repro.instrument.parser import parse
from repro.instrument.preprocess import preprocess
from repro.instrument.render import render_module
from repro.oracle import GroundTruth

__all__ = ["BuildOptions", "BuildArtifacts", "BuildPipeline"]


@dataclass(frozen=True, slots=True)
class BuildOptions:
    """Build-time configuration (the Makefile variables).

    ``instrument`` is *the* switch of the paper: stage two on or off.
    ``force_new_allocator`` models the ``GLIBCPP_FORCE_NEW`` environment
    variable the paper says must be set "prior to calling Helgrind".
    """

    instrument: bool = True
    force_new_allocator: bool = False
    announce_pool_reuse: bool = False
    defines: dict[str, str] = field(default_factory=dict)
    entry: str = "main"

    def __hash__(self) -> int:  # dict field blocks the generated hash
        return hash((self.instrument, self.force_new_allocator, self.entry))


@dataclass(slots=True)
class BuildArtifacts:
    """Everything a build produces, intermediate stages included."""

    source: str
    preprocessed: str
    annotated_source: str
    program: CompiledProgram
    delete_sites: int
    annotated_sites: int


class BuildPipeline:
    """Preprocess → (annotate) → compile, like the §3.3 wrapper script."""

    def __init__(
        self,
        *,
        includes: dict[str, str] | None = None,
        truth: GroundTruth | None = None,
    ) -> None:
        self.includes = dict(includes or {})
        self.truth = truth

    def add_header(self, name: str, text: str) -> None:
        """Register a header for ``#include`` resolution."""
        self.includes[name] = text

    def build(
        self,
        source: str,
        options: BuildOptions | None = None,
        *,
        source_name: str = "<minicxx>",
    ) -> BuildArtifacts:
        """Run the full pipeline on one translation unit."""
        options = options or BuildOptions()
        # Stage 1: preprocess (paper: "the GNU compiler is used to
        # preprocess the source file").
        preprocessed = preprocess(
            source, includes=self.includes, defines=options.defines
        )
        module = parse(preprocessed, source_name=source_name)
        total_sites = count_delete_sites(module)
        # Stage 2: annotate (paper: "the parser reads the preprocessed
        # source file and generates the annotated source file").
        if options.instrument:
            module = annotate_module(module)
        annotated_source = render_module(module)
        annotated_sites = count_delete_sites(module, annotated=True)
        # Stage 3: compile (paper: "the compiler generates object code
        # from the annotated source file").
        program = compile_module(
            module,
            truth=self.truth,
            alloc_strategy=(
                AllocStrategy.FORCE_NEW
                if options.force_new_allocator
                else AllocStrategy.POOL
            ),
            announce_reuse=options.announce_pool_reuse,
            entry=options.entry,
        )
        return BuildArtifacts(
            source=source,
            preprocessed=preprocessed,
            annotated_source=annotated_source,
            program=program,
            delete_sites=total_sites,
            annotated_sites=annotated_sites,
        )
