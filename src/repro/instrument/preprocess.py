"""MiniCxx preprocessor — stage one of the §3.3 pipeline.

The paper: *"The input for the parser must be preprocessed, because
external files are not read by the parser and the parser requires all
information to be included in the source file."*  Exactly so here: the
parser sees one flat translation unit; this stage resolves

* ``#include "name"`` — textual inclusion from an in-memory header map
  (the build system's ``-I`` path), with double-inclusion protection via
  an include stack (cycles are an error, repeats are allowed once each
  per site, like plain C headers without guards — use ``#ifndef``
  guards in headers, like real code does);
* ``#define NAME replacement`` — object-like macros, substituted on
  word boundaries for the rest of the unit;
* ``#undef NAME``;
* ``#ifdef NAME`` / ``#ifndef NAME`` / ``#else`` / ``#endif`` —
  conditional sections (nestable).  This is how a build flags code in or
  out — e.g. a debug-only section — without touching the source.
"""

from __future__ import annotations

import re

from repro.errors import InstrumentError

__all__ = ["preprocess"]

_WORD = re.compile(r"\b[A-Za-z_][A-Za-z0-9_]*\b")


def preprocess(
    source: str,
    *,
    includes: dict[str, str] | None = None,
    defines: dict[str, str] | None = None,
    _stack: tuple[str, ...] = (),
    _macros: dict[str, str] | None = None,
) -> str:
    """Expand directives; returns the flat translation unit.

    ``includes`` maps header names to their text; ``defines`` seeds the
    macro table (the ``-D`` command-line flags).  ``_macros`` is the
    live macro table threaded through ``#include`` recursion so that a
    ``#define`` made inside a header (an include guard!) is visible to
    the rest of the translation unit.
    """
    includes = includes or {}
    macros: dict[str, str] = _macros if _macros is not None else dict(defines or {})
    out: list[str] = []
    #: Condition stack: each entry is (taking_this_branch, any_branch_taken).
    conds: list[list[bool]] = []

    def active() -> bool:
        return all(frame[0] for frame in conds)

    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("#"):
            parts = stripped[1:].split(None, 2)
            directive = parts[0] if parts else ""
            if directive == "include":
                if not active():
                    continue
                name = _include_name(stripped, lineno)
                if name in _stack:
                    raise InstrumentError(
                        f"circular #include of {name!r} (line {lineno})"
                    )
                try:
                    header = includes[name]
                except KeyError:
                    raise InstrumentError(
                        f"#include {name!r} not found (line {lineno})"
                    ) from None
                expanded = preprocess(
                    header,
                    includes=includes,
                    _stack=_stack + (name,),
                    _macros=macros,
                )
                out.append(expanded)
            elif directive == "define":
                if not active():
                    continue
                if len(parts) < 2:
                    raise InstrumentError(f"#define needs a name (line {lineno})")
                macros[parts[1]] = parts[2] if len(parts) > 2 else "1"
            elif directive == "undef":
                if not active():
                    continue
                if len(parts) < 2:
                    raise InstrumentError(f"#undef needs a name (line {lineno})")
                macros.pop(parts[1], None)
            elif directive in ("ifdef", "ifndef"):
                if len(parts) < 2:
                    raise InstrumentError(f"#{directive} needs a name (line {lineno})")
                defined = parts[1] in macros
                take = defined if directive == "ifdef" else not defined
                take = take and active()
                conds.append([take, take])
            elif directive == "else":
                if not conds:
                    raise InstrumentError(f"#else without #ifdef (line {lineno})")
                frame = conds[-1]
                parent_active = all(f[0] for f in conds[:-1])
                frame[0] = parent_active and not frame[1]
                frame[1] = frame[1] or frame[0]
            elif directive == "endif":
                if not conds:
                    raise InstrumentError(f"#endif without #ifdef (line {lineno})")
                conds.pop()
            else:
                raise InstrumentError(
                    f"unknown preprocessor directive #{directive} (line {lineno})"
                )
            # Directives keep line numbering roughly aligned by leaving
            # a blank line behind.
            out.append("")
            continue
        if not active():
            out.append("")
            continue
        out.append(_substitute(line, macros))
    if conds:
        raise InstrumentError("unterminated #ifdef block")
    return "\n".join(out)


def _include_name(line: str, lineno: int) -> str:
    match = re.search(r'#\s*include\s+"([^"]+)"', line)
    if match is None:
        raise InstrumentError(f'malformed #include, expected "name" (line {lineno})')
    return match.group(1)


def _substitute(line: str, macros: dict[str, str]) -> str:
    """Word-boundary macro substitution, iterated to a fixed point
    (bounded to avoid self-referential explosions)."""
    if not macros:
        return line
    for _ in range(8):
        replaced = _WORD.sub(lambda m: macros.get(m.group(0), m.group(0)), line)
        if replaced == line:
            return line
        line = replaced
    return line
