"""AST → MiniCxx source rendering (pretty-printer).

Stage two of the paper's pipeline emits an *annotated source file* that
then goes to the ordinary compiler — the artefact a developer can read
to see what the instrumentation did (the right-hand side of Figure 4).
``render_module`` produces that artefact; round-tripping
``parse(render_module(m))`` yields an equivalent module, which the tests
verify.
"""

from __future__ import annotations

from repro.instrument import ast_nodes as A

__all__ = ["render_module"]

_IND = "    "


def render_module(module: A.Module) -> str:
    parts: list[str] = []
    for g in module.globals:
        init = f" = {_expr(g.init)}" if g.init is not None else ""
        parts.append(f"global {g.name}{init};")
    if module.globals:
        parts.append("")
    for c in module.classes:
        parts.append(_class(c))
        parts.append("")
    for f in module.functions:
        parts.append(_function(f))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"


def _class(c: A.ClassDecl) -> str:
    head = f"class {c.name}"
    if c.base:
        head += f" : {c.base}"
    lines = [head + " {"]
    for f in c.fields:
        lines.append(f"{_IND}field {f.name};")
    if c.dtor is not None:
        lines.append(f"{_IND}dtor " + _block(c.dtor, 1).lstrip())
    for m in c.methods:
        params = ", ".join(m.params)
        lines.append(f"{_IND}method {m.name}({params}) " + _block(m.body, 1).lstrip())
    lines.append("};")
    return "\n".join(lines)


def _function(f: A.FunctionDecl) -> str:
    params = ", ".join(f.params)
    return f"fn {f.name}({params}) " + _block(f.body, 0).lstrip()


def _block(block: A.Block, depth: int) -> str:
    ind = _IND * depth
    inner = _IND * (depth + 1)
    lines = [ind + "{"]
    for stmt in block.body:
        lines.append(inner + _stmt(stmt, depth + 1))
    lines.append(ind + "}")
    return "\n".join(lines)


def _stmt(s: A.Stmt, depth: int) -> str:
    if isinstance(s, A.VarDecl):
        return f"var {s.name} = {_expr(s.init)};"
    if isinstance(s, A.Assign):
        return f"{_expr(s.target)} = {_expr(s.value)};"
    if isinstance(s, A.ExprStmt):
        return f"{_expr(s.expr)};"
    if isinstance(s, A.If):
        text = f"if ({_expr(s.cond)}) " + _block(s.then, depth).lstrip()
        if s.otherwise is not None:
            text += " else " + _block(s.otherwise, depth).lstrip()
        return text
    if isinstance(s, A.While):
        return f"while ({_expr(s.cond)}) " + _block(s.body, depth).lstrip()
    if isinstance(s, A.Return):
        return "return;" if s.value is None else f"return {_expr(s.value)};"
    if isinstance(s, A.Delete):
        return f"delete {_expr(s.operand)};"
    if isinstance(s, A.Join):
        return f"join {_expr(s.operand)};"
    raise TypeError(f"unknown statement {s!r}")  # pragma: no cover


def _expr(e: A.Expr) -> str:
    if isinstance(e, A.IntLit):
        return str(e.value)
    if isinstance(e, A.StrLit):
        escaped = e.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    if isinstance(e, A.BoolLit):
        return "true" if e.value else "false"
    if isinstance(e, A.NullLit):
        return "null"
    if isinstance(e, A.Name):
        return e.ident
    if isinstance(e, A.Member):
        return f"{_expr(e.obj)}.{e.field_name}"
    if isinstance(e, A.Unary):
        return f"{e.op}{_paren(e.operand)}"
    if isinstance(e, A.Binary):
        return f"{_paren(e.left)} {e.op} {_paren(e.right)}"
    if isinstance(e, A.Call):
        return f"{e.func}({', '.join(_expr(a) for a in e.args)})"
    if isinstance(e, A.MethodCall):
        return f"{_expr(e.obj)}.{e.method}({', '.join(_expr(a) for a in e.args)})"
    if isinstance(e, A.New):
        return f"new {e.class_name}"
    if isinstance(e, A.Spawn):
        return f"spawn {e.func}({', '.join(_expr(a) for a in e.args)})"
    raise TypeError(f"unknown expression {e!r}")  # pragma: no cover


def _paren(e: A.Expr) -> str:
    text = _expr(e)
    if isinstance(e, (A.Binary, A.Unary)):
        return f"({text})"
    return text
