"""The ground-truth oracle: what each warning *actually* is.

The paper's results (Figures 5 and 6) are counts of warning locations
triaged **by hand** into true positives and false-positive categories
("After inspecting individual warnings, it was clear that most of the
warnings are false positives resulting from ...").  We replace the
authors' manual inspection with an explicit oracle: the guest-level
libraries (:mod:`repro.cxx`) and the application (:mod:`repro.sip`)
*know* which memory they make intentionally racy-looking — string
reference counters, object headers rewritten during destruction, pool-
recycled ranges, queue-transferred messages, injected real bugs — and
register those ranges here as they allocate them.

:mod:`repro.detectors.classify` then joins a detector's report against
this oracle to produce exactly the decomposition of the paper's
Figure 5.

This module is deliberately free of detector and runtime imports so any
layer may depend on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._util.intervals import IntervalMap

__all__ = ["WarningCategory", "GroundTruthEntry", "GroundTruth"]


class WarningCategory(enum.Enum):
    """The paper's triage buckets for reported warning locations."""

    #: A real synchronisation failure (§4.1 — the bugs worth finding).
    TRUE_RACE = "true-race"
    #: §4.2.2 / Figure 8: plain reads of a bus-lock-protected word; the
    #: original mutex model of the LOCK prefix empties the lock-set.
    FP_HW_LOCK = "fp-hardware-lock"
    #: §4.2.1: vptr/header writes in base-class destructors of derived
    #: classes ("Destructor of Derived Classes").
    FP_DESTRUCTOR = "fp-destructor"
    #: §4.2.3 / Figure 11: ownership handed over through a message
    #: queue; the lock-set algorithm is unaware of the post/wait order.
    FP_OWNERSHIP = "fp-ownership-transfer"
    #: §4: memory recycled inside the guest allocator pool without the
    #: detector learning about the free/alloc boundary.
    FP_ALLOC_REUSE = "fp-allocator-reuse"
    #: A race that exists but is harmless by design (the paper's
    #: "benign race" bucket in §4.1's triage vocabulary).
    BENIGN = "benign"
    #: The oracle has no claim registered for this address.
    UNKNOWN = "unknown"

    @property
    def is_false_positive(self) -> bool:
        return self in (
            WarningCategory.FP_HW_LOCK,
            WarningCategory.FP_DESTRUCTOR,
            WarningCategory.FP_OWNERSHIP,
            WarningCategory.FP_ALLOC_REUSE,
        )


@dataclass(frozen=True, slots=True)
class GroundTruthEntry:
    """One oracle claim: ``[start, end)`` is ``category`` because ``note``.

    ``bug_id`` links a TRUE_RACE claim back to the injected fault in the
    :mod:`repro.sip.bugs` registry, so experiments can check that every
    *enabled* bug was actually reported (E9).
    """

    start: int
    end: int
    category: WarningCategory
    note: str = ""
    bug_id: str = ""


class GroundTruth:
    """Address-range claims registered by guest code as it allocates.

    The newest claim covering an address wins — memory reused for a new
    object carries the new object's category.
    """

    def __init__(self) -> None:
        self._map = IntervalMap()
        self._entries: list[GroundTruthEntry] = []

    def claim(
        self,
        start: int,
        size: int,
        category: WarningCategory,
        *,
        note: str = "",
        bug_id: str = "",
    ) -> GroundTruthEntry:
        """Register ``[start, start+size)`` as ``category``."""
        entry = GroundTruthEntry(start, start + size, category, note, bug_id)
        self._map.add(entry.start, entry.end, entry)
        self._entries.append(entry)
        return entry

    def category_of(self, addr: int) -> WarningCategory:
        entry = self.entry_for(addr)
        return entry.category if entry is not None else WarningCategory.UNKNOWN

    def entry_for(self, addr: int) -> GroundTruthEntry | None:
        """The newest claim covering ``addr``, or ``None``."""
        payload = self._map.lookup(addr)
        return payload  # type: ignore[return-value]

    def entries(self, category: WarningCategory | None = None) -> list[GroundTruthEntry]:
        if category is None:
            return list(self._entries)
        return [e for e in self._entries if e.category == category]

    def bug_ids(self) -> set[str]:
        """All bug ids with at least one TRUE_RACE claim."""
        return {e.bug_id for e in self._entries if e.bug_id}

    def __len__(self) -> int:
        return len(self._entries)
