"""The deterministic cooperative virtual machine (the "Valgrind" substrate).

The paper runs the application under test on Valgrind, a binary
instrumentation VM that (a) serialises all guest threads onto a single
carrier thread and (b) traps every memory access, synchronisation
operation and allocation so that a *tool* (Helgrind) can observe them.

:mod:`repro.runtime` rebuilds exactly that observation layer in Python:

* Guest programs are plain Python callables written against
  :class:`~repro.runtime.vm.GuestAPI`.
* Every guest-visible operation is a *trap*: it emits a typed
  :mod:`event <repro.runtime.events>` to the registered detector hooks and
  then hands control to a seeded :mod:`scheduler
  <repro.runtime.scheduler>`, which picks the next guest thread to run.
* Exactly one guest thread executes at any instant, so detectors observe
  a single serial event stream — the same vantage point Helgrind has —
  and a fixed seed reproduces the interleaving bit-for-bit.  This is the
  GIL-proof substitution called out in ``DESIGN.md``: interleaving is a
  property of the scheduler, not of the host's thread timing.

Public surface
--------------
:class:`~repro.runtime.vm.VM`, :class:`~repro.runtime.vm.GuestAPI`,
the event types in :mod:`repro.runtime.events`, the schedulers in
:mod:`repro.runtime.scheduler`, and the synchronisation objects in
:mod:`repro.runtime.sync`.
"""

from repro.runtime.addrspace import AddressSpace, MemoryBlock
from repro.runtime.explore import ExplorationResult, ScheduleOutcome, explore
from repro.runtime.events import (
    AccessKind,
    BarrierWait,
    ClientRequest,
    CondSignal,
    CondWait,
    Event,
    Frame,
    LockAcquire,
    LockMode,
    LockRelease,
    MemAlloc,
    MemFree,
    MemoryAccess,
    QueueGet,
    QueuePut,
    SemPost,
    SemWait,
    ThreadCreate,
    ThreadFinish,
    ThreadJoin,
)
from repro.runtime.scheduler import (
    FixedOrderScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    StickyScheduler,
)
from repro.runtime.sync import (
    SimBarrier,
    SimCondVar,
    SimMutex,
    SimQueue,
    SimRWLock,
    SimSemaphore,
)
from repro.runtime.thread import SimThread, ThreadState
from repro.runtime.vm import VM, GuestAPI, VMStats

__all__ = [
    "AccessKind",
    "AddressSpace",
    "BarrierWait",
    "ClientRequest",
    "CondSignal",
    "CondWait",
    "Event",
    "ExplorationResult",
    "ScheduleOutcome",
    "explore",
    "FixedOrderScheduler",
    "Frame",
    "GuestAPI",
    "LockAcquire",
    "LockMode",
    "LockRelease",
    "MemAlloc",
    "MemFree",
    "MemoryAccess",
    "MemoryBlock",
    "QueueGet",
    "QueuePut",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SemPost",
    "SemWait",
    "SimBarrier",
    "SimCondVar",
    "SimMutex",
    "SimQueue",
    "SimRWLock",
    "SimSemaphore",
    "SimThread",
    "StickyScheduler",
    "ThreadCreate",
    "ThreadFinish",
    "ThreadJoin",
    "ThreadState",
    "VM",
    "VMStats",
]
