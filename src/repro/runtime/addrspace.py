"""The guest address space: a flat, word-addressed simulated heap.

Valgrind shadows every byte of the real process; our guest "binary" is
Python code, so we give it an explicit heap instead.  Addresses are
plain integers; each address holds one *word*, which may store any
Python value (an int, a string fragment, a guest pointer, ...).  Race
detection is about *which* addresses are touched in what order, not
about the bit patterns stored, so word granularity loses nothing while
keeping the simulation fast.

Allocation policy
-----------------
The VM-level allocator is a monotone bump allocator: **addresses are
never reused**.  This is a deliberate modelling choice, not a
simplification:

* It makes "access to freed memory" trivially detectable (the memcheck
  facet the paper leans on in §4.2.1: *"Actual violations ... are
  detected by ordinary memory checking tools"*).
* It pushes address *reuse* — the thing that confuses Helgrind in the
  paper's libstdc++-pool discussion (§4) — up into the guest-level
  pooled allocator (:mod:`repro.cxx.allocator`), exactly where it lives
  in the real system: the C++ pool recycles memory *without telling the
  VM*, so the detector sees one long-lived block with stale state.

Blocks are retained after free for diagnostics (allocation site, freeing
thread), mirroring Valgrind's "Address ... is N bytes inside a block of
size M alloc'd by thread T" report lines (paper Figure 9).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import GuestFault
from repro.runtime.events import CallStack

__all__ = ["MemoryBlock", "AddressSpace"]

#: Unmapped guard gap between consecutive allocations, so off-by-one
#: pointer bugs in guest code fault instead of silently hitting the
#: neighbouring object.
_GUARD_WORDS = 4

#: Sentinel marking a word that was allocated but never stored.  A
#: dedicated object (not ``None``) so guests may legitimately store
#: ``None`` as a value.
_UNINIT = object()


@dataclass(slots=True)
class MemoryBlock:
    """Metadata for one heap allocation.

    ``tag`` is a human-readable label supplied by the allocating guest
    code (``"CowString.rep"``, ``"SipTransaction"``, ...); the
    classification layer (:mod:`repro.detectors.classify`) uses tags to
    attribute warnings to the paper's false-positive categories.
    """

    block_id: int
    base: int
    size: int
    tag: str = ""
    alloc_tid: int = -1
    alloc_step: int = -1
    alloc_stack: CallStack = ()
    freed: bool = False
    free_tid: int = -1
    free_step: int = -1
    free_stack: CallStack = ()
    #: Word storage, indexed by offset (``None`` after free).  Owned by
    #: the block so that :meth:`AddressSpace.free` drops *one* reference
    #: instead of popping a global dict once per word.
    words: list | None = field(default=None, repr=False, compare=False)
    #: How many words of this block have ever been stored (maintained by
    #: :meth:`AddressSpace.store_block`; lets ``free`` and
    #: ``live_words`` stay O(1)).
    inited: int = field(default=0, repr=False, compare=False)

    @property
    def end(self) -> int:
        """One past the last word of the block."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def offset_of(self, addr: int) -> int:
        """Word offset of ``addr`` within the block (no bounds check)."""
        return addr - self.base

    def describe(self, addr: int) -> str:
        """Figure-9 style one-liner locating ``addr`` inside this block."""
        state = "free'd" if self.freed else "alloc'd"
        return (
            f"Address {addr:#x} is {self.offset_of(addr)} words inside a block of "
            f"size {self.size} ({self.tag or 'untagged'}) {state} by thread {self.alloc_tid}"
        )


class AddressSpace:
    """Word-addressed heap with monotone (never-reusing) allocation."""

    #: First heap address; non-zero so that guest address 0 can serve as
    #: a null pointer.
    HEAP_BASE = 0x1000

    def __init__(self) -> None:
        self._next_addr = self.HEAP_BASE
        self._next_block_id = 0
        #: Initialised words across live blocks (O(1)-maintained; the
        #: storage itself lives per block in ``MemoryBlock.words``).
        self._live_words = 0
        self._blocks: dict[int, MemoryBlock] = {}
        #: Sorted block bases for O(log n) address → block lookup.
        self._bases: list[int] = []
        self._by_base: dict[int, MemoryBlock] = {}
        #: Two-entry lookup cache: guest accesses are strongly local —
        #: hot loops typically alternate between two blocks (a shared
        #: structure and thread-local scratch), so remembering the last
        #: two live blocks turns most ``check_access`` calls into a few
        #: integer compares, no bisect.
        self._last_block: MemoryBlock | None = None
        self._prev_block: MemoryBlock | None = None
        #: Cache effectiveness tallies (plain ints: one add per access,
        #: cheap enough to keep unconditionally; read by the telemetry
        #: layer via :meth:`cache_stats`).
        self._cache_hits_last = 0
        self._cache_hits_prev = 0
        self._cache_misses = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def alloc(
        self,
        size: int,
        *,
        tag: str = "",
        tid: int = -1,
        step: int = -1,
        stack: CallStack = (),
    ) -> MemoryBlock:
        """Allocate ``size`` words and return the new block.

        Words start *uninitialised*: loading a word that was never stored
        raises :class:`GuestFault` (catching real init-order bugs in guest
        code rather than silently yielding ``None``).
        """
        if size <= 0:
            raise GuestFault(f"malloc of non-positive size {size}", tid=tid)
        block = MemoryBlock(
            block_id=self._next_block_id,
            base=self._next_addr,
            size=size,
            tag=tag,
            alloc_tid=tid,
            alloc_step=step,
            alloc_stack=stack,
            words=[_UNINIT] * size,
        )
        self._next_block_id += 1
        self._next_addr = block.end + _GUARD_WORDS
        self._blocks[block.block_id] = block
        self._bases.append(block.base)
        self._by_base[block.base] = block
        return block

    def free(
        self,
        addr: int,
        *,
        tid: int = -1,
        step: int = -1,
        stack: CallStack = (),
    ) -> MemoryBlock:
        """Free the block whose *base* is ``addr``.

        Like ``free(3)``, the pointer must be exactly the value returned
        by the allocation; freeing an interior pointer or freeing twice
        is a guest fault.  Word contents are dropped eagerly so that a
        later load of freed memory faults as "uninitialised" even if the
        stale block metadata is still around.
        """
        block = self._by_base.get(addr)
        if block is None:
            inner = self.find_block(addr)
            if inner is not None:
                raise GuestFault(
                    f"free of interior pointer {addr:#x} "
                    f"({inner.offset_of(addr)} words into block {inner.block_id})",
                    tid=tid,
                )
            raise GuestFault(f"free of unallocated address {addr:#x}", tid=tid)
        if block.freed:
            raise GuestFault(
                f"double free of {addr:#x} (block {block.block_id}, "
                f"first freed by thread {block.free_tid} at step {block.free_step})",
                tid=tid,
            )
        block.freed = True
        block.free_tid = tid
        block.free_step = step
        block.free_stack = stack
        # O(1): the block owns its word storage, so dropping the one
        # list reference frees the contents (previously: one global
        # ``dict.pop`` per word, O(size)).
        self._live_words -= block.inited
        block.inited = 0
        block.words = None
        return block

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def find_block(self, addr: int) -> MemoryBlock | None:
        """Return the block containing ``addr`` (freed blocks included)."""
        idx = bisect_right(self._bases, addr) - 1
        if idx < 0:
            return None
        block = self._by_base[self._bases[idx]]
        return block if block.contains(addr) else None

    def check_access(self, addr: int, *, tid: int = -1) -> MemoryBlock:
        """Validate that ``addr`` is inside a live block and return it."""
        cached = self._last_block
        if (
            cached is not None
            and not cached.freed
            and cached.base <= addr < cached.base + cached.size
        ):
            self._cache_hits_last += 1
            return cached
        cached = self._prev_block
        if (
            cached is not None
            and not cached.freed
            and cached.base <= addr < cached.base + cached.size
        ):
            # Promote: keep the two hottest blocks in the cache.
            self._prev_block = self._last_block
            self._last_block = cached
            self._cache_hits_prev += 1
            return cached
        self._cache_misses += 1
        block = self.find_block(addr)
        if block is None:
            raise GuestFault(f"wild access to unmapped address {addr:#x}", tid=tid)
        if block.freed:
            raise GuestFault(
                f"access to freed memory: {block.describe(addr)} "
                f"(freed by thread {block.free_tid} at step {block.free_step})",
                tid=tid,
            )
        self._prev_block = self._last_block
        self._last_block = block
        return block

    def load(self, addr: int, *, tid: int = -1) -> object:
        """Load the word at ``addr``; faults on wild/freed/uninitialised."""
        return self.load_block(addr, tid=tid)[0]

    def store(self, addr: int, value: object, *, tid: int = -1) -> None:
        """Store ``value`` into the word at ``addr``."""
        self.store_block(addr, value, tid=tid)

    def load_block(self, addr: int, *, tid: int = -1) -> tuple[object, MemoryBlock]:
        """Load ``addr`` and return ``(value, containing block)``.

        One address lookup serves both the access check and the event's
        ``block_id`` — the VM hot path calls this instead of ``load`` +
        ``find_block`` (two binary searches per guest access).
        """
        block = self.check_access(addr, tid=tid)
        value = block.words[addr - block.base]
        if value is _UNINIT:
            raise GuestFault(
                f"load of uninitialised word: {block.describe(addr)}", tid=tid
            )
        return value, block

    def store_block(self, addr: int, value: object, *, tid: int = -1) -> MemoryBlock:
        """Store into ``addr`` and return the containing block (see
        :meth:`load_block`)."""
        block = self.check_access(addr, tid=tid)
        words = block.words
        offset = addr - block.base
        if words[offset] is _UNINIT:
            block.inited += 1
            self._live_words += 1
        words[offset] = value
        return block

    def peek(self, addr: int) -> object | None:
        """Non-faulting read for diagnostics/tests (``None`` if unset)."""
        block = self.find_block(addr)
        if block is None or block.words is None:
            return None
        value = block.words[addr - block.base]
        return None if value is _UNINIT else value

    def is_initialised(self, addr: int) -> bool:
        """True if the word at ``addr`` has ever been stored."""
        block = self.find_block(addr)
        if block is None or block.words is None:
            return False
        return block.words[addr - block.base] is not _UNINIT

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cache_stats(self) -> dict[str, int]:
        """Two-entry block-cache effectiveness (telemetry input).

        ``hits_last``/``hits_prev`` are hits on the most-recent / the
        promoted second entry; ``misses`` fell back to the bisect.
        """
        return {
            "hits_last": self._cache_hits_last,
            "hits_prev": self._cache_hits_prev,
            "misses": self._cache_misses,
        }

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def live_words(self) -> int:
        """Words currently holding a value (a memory-footprint proxy).

        Maintained incrementally by :meth:`store_block` / :meth:`free`
        — O(1) to read, never recomputed by scanning.
        """
        return self._live_words

    def block_by_id(self, block_id: int) -> MemoryBlock:
        return self._blocks[block_id]

    def blocks(self) -> list[MemoryBlock]:
        """All blocks ever allocated, in allocation order."""
        return [self._blocks[i] for i in sorted(self._blocks)]

    def live_blocks(self) -> list[MemoryBlock]:
        return [b for b in self.blocks() if not b.freed]

    def leak_report(self) -> list[MemoryBlock]:
        """Blocks still live — the memcheck 'definitely lost' analogue.

        The VM does not *enforce* leak-freedom (server code frequently
        holds allocations for its whole lifetime); tests assert on this
        where leak-freedom is part of the contract.
        """
        return self.live_blocks()
