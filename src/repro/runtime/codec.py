"""Binary trace codec — the compact offline tier of §4.5.

The paper's offline-vs-on-the-fly discussion warns that *"offline
techniques suffer from their need for large amount of data"*; the
JSON-lines trace the recorder originally spilled repeats every frame of
every call stack, every field name and every enum string once per
event.  This codec removes the redundancy the same way the in-memory
layer already does — by interning — and stores what remains as
fixed-width binary rows:

Format (``RPTR`` version 1)
---------------------------
A trace file is the 5-byte magic ``b"RPTR\\x01"`` followed by tagged
records.  Each record starts with a one-byte tag:

``0`` — **string definition**: varint byte length + UTF-8 bytes.
    Strings are interned; the n-th definition gets id ``n``.
``1`` — **frame definition**: varint function-string id, varint
    file-string id, varint line.  Frames get sequential ids.
``2`` — **stack definition**: varint frame count + that many varint
    frame ids (innermost first).  Stacks get sequential ids.
``3`` — **event block**: one byte event-type index (into
    :data:`repro.runtime.events.EVENT_TYPES`), one flags byte, varint
    row count, ``[varint base step]``, then ``count`` fixed-width
    little-endian rows (:mod:`struct`).  A row is
    ``[step:u32,] tid:i32, stack:u32`` followed by the type's own
    fields; strings and enums appear as table ids, so a row is pure
    numbers.  Flag bit 0 (*SEQ_STEP*): the rows' steps are consecutive
    — the per-row step column is dropped and reconstructed from the
    header's base step (the VM numbers events 0,1,2,…, so in practice
    every block qualifies).  Flag bit 1 (*NARROW*): the type's 64-bit
    fields (addresses, sizes) all fit in 32 bits for this block and are
    stored as u32.

All varints are unsigned LEB128.  Definitions always precede the first
row that references them.  Consecutive events of the same type coalesce
into one block, so the dominant ``MemoryAccess`` runs amortise the
block header to well under a byte per event — and decoding a block is
one :func:`struct.iter_unpack` call (C speed), which is what lets
replay-from-disk keep up with replay-from-memory.

The write path (:class:`TraceWriter`) is streaming — events go out as
encoded blocks, nothing is retained — and counts exact bytes written.
The read path (:func:`read_events`) is a generator over ``(event_class,
decoded fields...)`` rows; :func:`events_from_bytes` materialises real
frozen :class:`~repro.runtime.events.Event` objects with canonical
interned stacks, while :func:`repro.runtime.trace.replay_trace` skips
the per-event allocation entirely with reusable flyweight twins.
"""

from __future__ import annotations

import struct
from dataclasses import fields as dc_fields
from typing import BinaryIO, Iterator

from repro.runtime.events import (
    AccessKind,
    BarrierWait,
    ClientRequest,
    CondSignal,
    CondWait,
    EVENT_TYPES,
    Event,
    Frame,
    LockAcquire,
    LockMode,
    LockRelease,
    MemAlloc,
    MemFree,
    MemoryAccess,
    QueueGet,
    QueuePut,
    SemPost,
    SemWait,
    ThreadCreate,
    ThreadFinish,
    ThreadJoin,
    intern_frame,
    intern_stack,
)

__all__ = [
    "MAGIC",
    "TraceWriter",
    "StreamDecoder",
    "ReplayStats",
    "read_blocks",
    "read_events",
    "events_from_bytes",
    "build_flyweights",
    "build_block_loops",
    "replay_tables",
    "replay_blocks",
    "build_block_index",
    "page_histogram",
    "is_binary_trace",
    "trace_stats",
]

#: File magic + format version byte.
MAGIC = b"RPTR\x01"

# Record tags.
_TAG_STRING = 0
_TAG_FRAME = 1
_TAG_STACK = 2
_TAG_BLOCK = 3

#: Field codes: struct letter + how the value is (de)coded.
#: ``i``/``q`` plain ints, ``B`` bool, ``kind``/``mode`` enum index,
#: ``str`` string-table id.
_KINDS = (AccessKind.READ, AccessKind.WRITE)
_KIND_INDEX = {k: i for i, k in enumerate(_KINDS)}
_MODES = (LockMode.EXCLUSIVE, LockMode.READ, LockMode.WRITE)
_MODE_INDEX = {m: i for i, m in enumerate(_MODES)}
_BOOLS = (False, True)

#: Per-type extra fields (beyond step/tid/stack), in *dataclass field
#: order* — decoding passes them positionally to the constructor.
_SPECS: dict[type, tuple[tuple[str, str], ...]] = {
    MemoryAccess: (
        ("addr", "q"), ("kind", "kind"), ("bus_locked", "B"), ("block_id", "i"),
    ),
    MemAlloc: (("addr", "q"), ("size", "q"), ("block_id", "i"), ("tag", "str")),
    MemFree: (("addr", "q"), ("size", "q"), ("block_id", "i")),
    LockAcquire: (("lock_id", "i"), ("mode", "mode"), ("contended", "B")),
    LockRelease: (("lock_id", "i"), ("mode", "mode")),
    ThreadCreate: (("child_tid", "i"),),
    ThreadFinish: (),
    ThreadJoin: (("joined_tid", "i"),),
    CondWait: (("cond_id", "i"), ("mutex_id", "i"), ("phase", "str")),
    CondSignal: (("cond_id", "i"), ("broadcast", "B")),
    SemPost: (("sem_id", "i"),),
    SemWait: (("sem_id", "i"),),
    BarrierWait: (("barrier_id", "i"), ("generation", "i"), ("phase", "str")),
    QueuePut: (("queue_id", "i"), ("msg_id", "i")),
    QueueGet: (("queue_id", "i"), ("msg_id", "i")),
    ClientRequest: (("request", "str"), ("addr", "q"), ("size", "q")),
}

_STRUCT_LETTER = {"i": "i", "q": "q", "B": "B", "kind": "B", "mode": "B", "str": "I"}

# Block flags.
_FLAG_SEQ_STEP = 1  #: per-row step column elided (header carries base)
_FLAG_NARROW = 2  #: 64-bit fields stored as u32 for this block


def _row_struct(cls, *, seq: bool, narrow: bool) -> struct.Struct:
    letters = "".join(
        ("I" if narrow and code == "q" else _STRUCT_LETTER[code])
        for _, code in _SPECS[cls]
    )
    return struct.Struct("<" + ("" if seq else "I") + "iI" + letters)


#: Per-type row-struct variants indexed ``[type_idx][flags]`` — the
#: common prefix is ``[step:u32,] tid:i32, stack:u32``.
_ROW_STRUCTS: tuple[tuple[struct.Struct, ...], ...] = tuple(
    tuple(
        _row_struct(cls, seq=bool(f & _FLAG_SEQ_STEP), narrow=bool(f & _FLAG_NARROW))
        for f in range(4)
    )
    for cls in EVENT_TYPES
)

#: Positions (in the full ``(step, tid, stack, *fields)`` row tuple) of
#: each type's 64-bit fields — the writer checks these for NARROW.
_Q_POSITIONS: tuple[tuple[int, ...], ...] = tuple(
    tuple(i for i, (_, code) in enumerate(_SPECS[cls], start=3) if code == "q")
    for cls in EVENT_TYPES
)

_TYPE_INDEX: dict[type, int] = {cls: i for i, cls in enumerate(EVENT_TYPES)}

# Sanity: specs must list every field, in declaration order.
for _cls, _spec in _SPECS.items():
    _declared = tuple(
        f.name for f in dc_fields(_cls) if f.name not in ("step", "tid", "stack")
    )
    assert _declared == tuple(name for name, _ in _spec), _cls


def _write_varint(buf: bytearray, n: int) -> None:
    """Append unsigned LEB128."""
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Read unsigned LEB128 at ``pos`` → (value, next pos)."""
    result = 0
    shift = 0
    while True:
        b = data[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7


class TraceWriter:
    """Streaming binary trace encoder with interned string/frame/stack
    tables and an exact :attr:`bytes_written` counter.

    Consecutive events of one type accumulate into a pending block that
    is flushed when the type changes (or on :meth:`close`); table
    definitions triggered while encoding a block are emitted *before*
    it, so a reader never sees a forward reference.

    ``block_rows`` caps how many rows one block may hold: a long
    same-type run (the dominant ``MemoryAccess`` stretches) is split
    into multiple consecutive blocks of that size.  The cap bounds the
    writer's pending buffer and — more importantly — sets the
    granularity of the page-aware block index
    (:func:`build_block_index`): sharded replay can only skip *whole*
    blocks, so smaller blocks mean a shard worker seeks past more
    foreign data undecoded.  The header overhead stays amortised to
    well under a byte per event at the default size.
    """

    #: Default block cap — large enough that the ~6-byte block header
    #: is noise, small enough that single-page access runs produce
    #: single-shard blocks.
    DEFAULT_BLOCK_ROWS = 4096

    def __init__(
        self, fh: BinaryIO, *, block_rows: int | None = DEFAULT_BLOCK_ROWS
    ) -> None:
        if block_rows is not None and block_rows < 1:
            raise ValueError("block_rows must be >= 1 (or None)")
        self._block_rows = block_rows
        self._fh = fh
        self._strings: dict[str, int] = {}
        self._frames: dict[Frame, int] = {}
        self._stacks: dict[tuple, int] = {}
        #: Definition records produced while encoding the pending block.
        self._defs = bytearray()
        #: Pending same-type rows (value tuples) and their type index.
        self._rows: list[tuple] = []
        self._row_type = -1
        self.events_written = 0
        self.bytes_written = 0
        fh.write(MAGIC)
        self.bytes_written += len(MAGIC)

    # -- interning (emits definition records on first sight) ----------

    def _string_id(self, s: str) -> int:
        sid = self._strings.get(s)
        if sid is None:
            sid = len(self._strings)
            self._strings[s] = sid
            raw = s.encode("utf-8")
            defs = self._defs
            defs.append(_TAG_STRING)
            _write_varint(defs, len(raw))
            defs += raw
        return sid

    def _frame_id(self, frame: Frame) -> int:
        fid = self._frames.get(frame)
        if fid is None:
            func = self._string_id(frame.function)
            file = self._string_id(frame.file)
            fid = len(self._frames)
            self._frames[frame] = fid
            defs = self._defs
            defs.append(_TAG_FRAME)
            _write_varint(defs, func)
            _write_varint(defs, file)
            _write_varint(defs, frame.line)
        return fid

    def _stack_id(self, stack: tuple) -> int:
        sid = self._stacks.get(stack)
        if sid is None:
            frame_ids = [self._frame_id(f) for f in stack]
            sid = len(self._stacks)
            self._stacks[stack] = sid
            defs = self._defs
            defs.append(_TAG_STACK)
            _write_varint(defs, len(frame_ids))
            for fid in frame_ids:
                _write_varint(defs, fid)
        return sid

    # -- encoding ------------------------------------------------------

    def write(self, event: Event) -> None:
        """Encode one event (buffered until the block flushes)."""
        cls = type(event)
        idx = _TYPE_INDEX[cls]
        if idx != self._row_type:
            if self._rows:
                self._flush_block()
            self._row_type = idx
        row = [event.step, event.tid, self._stack_id(event.stack)]
        for name, code in _SPECS[cls]:
            value = getattr(event, name)
            if code == "str":
                value = self._string_id(value)
            elif code == "kind":
                value = _KIND_INDEX[value]
            elif code == "mode":
                value = _MODE_INDEX[value]
            row.append(value)
        self._rows.append(tuple(row))
        self.events_written += 1
        if self._block_rows is not None and len(self._rows) >= self._block_rows:
            self._flush_block()

    def _flush_block(self) -> None:
        rows = self._rows
        idx = self._row_type
        base = rows[0][0]
        flags = 0
        if all(row[0] == base + i for i, row in enumerate(rows)):
            flags |= _FLAG_SEQ_STEP
        q_positions = _Q_POSITIONS[idx]
        if q_positions and all(
            0 <= row[p] < 0x1_0000_0000 for row in rows for p in q_positions
        ):
            flags |= _FLAG_NARROW
        header = bytearray()
        if self._defs:
            header += self._defs
            self._defs = bytearray()
        header.append(_TAG_BLOCK)
        header.append(idx)
        header.append(flags)
        _write_varint(header, len(rows))
        pack = _ROW_STRUCTS[idx][flags].pack
        if flags & _FLAG_SEQ_STEP:
            _write_varint(header, base)
            body = b"".join(pack(*row[1:]) for row in rows)
        else:
            body = b"".join(pack(*row) for row in rows)
        self._fh.write(header)
        self._fh.write(body)
        self.bytes_written += len(header) + len(body)
        self._rows = []

    def flush(self) -> None:
        """Flush the pending block (and any pending definitions)."""
        if self._rows:
            self._flush_block()
        elif self._defs:
            self._fh.write(self._defs)
            self.bytes_written += len(self._defs)
            self._defs = bytearray()

    def close(self) -> None:
        """Flush; the caller owns (and closes) the file object."""
        self.flush()

    def table_sizes(self) -> dict[str, int]:
        """Interning-table populations (``repro trace stat`` input)."""
        return {
            "strings": len(self._strings),
            "frames": len(self._frames),
            "stacks": len(self._stacks),
        }


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def is_binary_trace(path) -> bool:
    """True if the file starts with the :data:`MAGIC` bytes."""
    with open(path, "rb") as fh:
        return fh.read(len(MAGIC)) == MAGIC


def read_blocks(data: bytes) -> Iterator[tuple]:
    """Block-level generator over an in-memory trace image.

    Yields ``(type_idx, stacks, strings, row_struct, block, base_step)``
    per event block; ``stacks`` / ``strings`` are the decoder's live
    interning tables (``stacks[i]`` is a canonical interned
    ``CallStack``), ``block`` is a zero-copy memoryview, and the
    consumer runs ``row_struct.iter_unpack`` over it — one C call per
    block, not per event.  ``base_step`` is the SEQ_STEP base (row ``i``
    has step ``base_step + i`` and no step column) or ``None`` when the
    rows carry their own steps.  Consumers can also *skip* whole blocks
    whose type nobody subscribes to without decoding a single row (the
    fast replay path does).
    """
    if not data.startswith(MAGIC):
        raise ValueError("not a binary trace (bad magic)")
    view = memoryview(data)
    pos = len(MAGIC)
    end = len(data)
    strings: list[str] = []
    frames: list[Frame] = []
    stacks: list[tuple] = []
    row_structs = _ROW_STRUCTS
    while pos < end:
        tag = data[pos]
        pos += 1
        if tag == _TAG_BLOCK:
            type_idx = data[pos]
            flags = data[pos + 1]
            pos += 2
            count, pos = _read_varint(data, pos)
            if flags & _FLAG_SEQ_STEP:
                base, pos = _read_varint(data, pos)
            else:
                base = None
            s = row_structs[type_idx][flags]
            size = s.size * count
            yield type_idx, stacks, strings, s, view[pos:pos + size], base
            pos += size
        elif tag == _TAG_STRING:
            length, pos = _read_varint(data, pos)
            strings.append(data[pos:pos + length].decode("utf-8"))
            pos += length
        elif tag == _TAG_FRAME:
            func, pos = _read_varint(data, pos)
            file, pos = _read_varint(data, pos)
            line, pos = _read_varint(data, pos)
            frames.append(Frame(strings[func], strings[file], line))
        elif tag == _TAG_STACK:
            count, pos = _read_varint(data, pos)
            frame_ids = []
            for _ in range(count):
                fid, pos = _read_varint(data, pos)
                frame_ids.append(fid)
            stacks.append(intern_stack(tuple(frames[i] for i in frame_ids)))
        else:
            raise ValueError(f"corrupt trace: unknown record tag {tag}")


def read_events(data: bytes) -> Iterator[tuple]:
    """Row generator: yields ``(event_class, stacks, strings, row)``.

    ``row`` is the full tuple ``(step, tid, stack_id, *fields)`` —
    string and enum fields still table ids; SEQ_STEP blocks have their
    steps reconstituted here.  Consumers that want real events use
    :func:`events_from_bytes`.
    """
    types = EVENT_TYPES
    for type_idx, stacks, strings, s, block, base in read_blocks(data):
        cls = types[type_idx]
        if base is None:
            for row in s.iter_unpack(block):
                yield cls, stacks, strings, row
        else:
            for i, row in enumerate(s.iter_unpack(block)):
                yield cls, stacks, strings, (base + i, *row)


#: Per-type decoders turning a raw row into constructor positionals.
#: ``None`` entries pass through; callables transform.
def _decoders_for(cls) -> tuple:
    out = []
    for _, code in _SPECS[cls]:
        if code == "B":
            out.append("B")
        elif code == "kind":
            out.append("kind")
        elif code == "mode":
            out.append("mode")
        elif code == "str":
            out.append("str")
        else:
            out.append(None)
    return tuple(out)


_DECODERS: dict[type, tuple] = {cls: _decoders_for(cls) for cls in EVENT_TYPES}


def decode_row(cls, stacks, strings, row) -> Event:
    """Materialise one frozen event from a raw row."""
    args = []
    codes = _DECODERS[cls]
    for value, code in zip(row[3:], codes):
        if code is None:
            args.append(value)
        elif code == "B":
            args.append(_BOOLS[value])
        elif code == "str":
            args.append(strings[value])
        elif code == "kind":
            args.append(_KINDS[value])
        else:
            args.append(_MODES[value])
    return cls(row[0], row[1], *args, stack=stacks[row[2]])


def events_from_bytes(data: bytes) -> Iterator[Event]:
    """Generator of real frozen events (canonical interned stacks)."""
    for cls, stacks, strings, row in read_events(data):
        yield decode_row(cls, stacks, strings, row)


# ----------------------------------------------------------------------
# Flyweight decoding (the allocation-free replay fast path)
# ----------------------------------------------------------------------


def _flyweight_class(cls) -> type:
    """A mutable twin of a frozen event class.

    Same attribute names (plus the ``is_write`` / ``site`` conveniences
    detectors use), but one instance is *reused* for every event of the
    type — replay allocates zero event objects.  Handlers must treat it
    as borrowed for the duration of the call; all of ours copy out the
    scalar fields and the (immutable, canonical) stack tuple.
    """
    names = tuple(f.name for f in dc_fields(cls))
    ns: dict = {
        "__slots__": names,
        "site": property(lambda self: self.stack[0] if self.stack else None),
    }
    if cls is MemoryAccess:
        ns["is_write"] = property(lambda self: self.kind is AccessKind.WRITE)
    return type("Replay" + cls.__name__, (), ns)


_FILL_EXPR = {
    "i": "row[{i}]",
    "q": "row[{i}]",
    "B": "_BOOLS[row[{i}]]",
    "str": "strings[row[{i}]]",
    "kind": "_KINDS[row[{i}]]",
    "mode": "_MODES[row[{i}]]",
}


def _make_filler(cls, fly):
    """Code-generate ``fill(stacks, strings, row) -> flyweight``.

    Direct attribute assignments (no setattr loop) keep the per-event
    decode cost at a handful of stores — the same trick namedtuple uses
    for its generated ``__new__``.
    """
    lines = [
        "def _fill(stacks, strings, row, fly=fly):",
        "    fly.step = row[0]",
        "    fly.tid = row[1]",
        "    fly.stack = stacks[row[2]]",
    ]
    for i, (name, code) in enumerate(_SPECS[cls], start=3):
        lines.append(f"    fly.{name} = " + _FILL_EXPR[code].format(i=i))
    lines.append("    return fly")
    ns = {"fly": fly, "_BOOLS": _BOOLS, "_KINDS": _KINDS, "_MODES": _MODES}
    exec("\n".join(lines), ns)  # noqa: S102 - static template, no user input
    return ns["_fill"]


def _make_seq_filler(cls, fly):
    """The SEQ_STEP twin of :func:`_make_filler`: rows carry no step
    column, the caller passes the reconstructed step — no ``(step,
    *row)`` tuple rebuild per event."""
    lines = [
        "def _fill(stacks, strings, row, step, fly=fly):",
        "    fly.step = step",
        "    fly.tid = row[0]",
        "    fly.stack = stacks[row[1]]",
    ]
    for i, (name, code) in enumerate(_SPECS[cls], start=2):
        lines.append(f"    fly.{name} = " + _FILL_EXPR[code].format(i=i))
    lines.append("    return fly")
    ns = {"fly": fly, "_BOOLS": _BOOLS, "_KINDS": _KINDS, "_MODES": _MODES}
    exec("\n".join(lines), ns)  # noqa: S102 - static template, no user input
    return ns["_fill"]


def build_flyweights() -> list:
    """Per-type ``fill`` functions, indexed like :data:`EVENT_TYPES`.

    Each call returns fresh flyweight instances (callers that interleave
    two decoders must not share them).
    """
    fillers = []
    for cls in EVENT_TYPES:
        fly = _flyweight_class(cls)()
        fillers.append(_make_filler(cls, fly))
    return fillers


def _make_block_loop(cls, fly, *, seq: bool):
    """Code-generate one fused single-handler block loop.

    ``loop(block, s, stacks, strings, fn, vm[, base])`` iterates one
    event block with ``s.iter_unpack`` and calls ``fn(flyweight, vm)``
    per row.  Plain-int fields are unpacked *directly into flyweight
    attributes in the for-statement target* — Python allows attribute
    references as unpack targets — so the hot loop has no per-row
    function call, no row tuple, and no subscript chain.  Only
    table-indexed fields (stack, strings, enums, bools) take one temp +
    one indexed store each.  The ``seq`` variant decodes SEQ_STEP
    blocks: rows have no step column, ``fly.step`` comes from a local
    counter seeded with the block's base step.
    """
    targets = [] if seq else ["fly.step"]
    targets += ["fly.tid", "_s"]
    body = ["        fly.stack = stacks[_s]"]
    if seq:
        body.insert(0, "        fly.step = step")
        body.insert(1, "        step += 1")
    for name, code in _SPECS[cls]:
        if code in ("i", "q", "B"):
            # Bool-coded fields stay raw 0/1 ints on the flyweight: every
            # consumer treats them as truth flags, and skipping the
            # ``_BOOLS`` lookup keeps the fill at a bare store.
            targets.append(f"fly.{name}")
        else:
            targets.append(f"_{name}")
            table = {"kind": "_KINDS", "mode": "_MODES", "str": "strings"}[code]
            body.append(f"        fly.{name} = {table}[_{name}]")
    target = ", ".join(targets)
    lines = [
        "def _loop(block, s, stacks, strings, fn, vm, base, fly=fly):",
        *(["    step = base"] if seq else []),
        f"    for {target} in s.iter_unpack(block):",
        *body,
        "        fn(fly, vm)",
    ]
    ns = {"fly": fly, "_BOOLS": _BOOLS, "_KINDS": _KINDS, "_MODES": _MODES}
    exec("\n".join(lines), ns)  # noqa: S102 - static template, no user input
    return ns["_loop"]


def build_block_loops() -> list:
    """Per-type fused block loops, indexed like :data:`EVENT_TYPES`.

    Each entry is a ``(plain, seq)`` pair — pick by whether the block
    carries a base step.  Both share one private flyweight instance per
    type.  The single-subscriber fast path of
    :func:`repro.runtime.trace.replay_trace` uses these.
    """
    loops = []
    for cls in EVENT_TYPES:
        fly = _flyweight_class(cls)()
        loops.append(
            (
                _make_block_loop(cls, fly, seq=False),
                _make_block_loop(cls, fly, seq=True),
            )
        )
    return loops


#: Lazily-built shared decode tables for :func:`replay_trace` — the
#: codegen (~48 ``exec`` calls) costs a few milliseconds, which would
#: otherwise dwarf the decode itself on small traces.  The flyweights
#: inside are shared: fine for any number of *sequential* replays in a
#: process, not for concurrent ones (use :func:`build_block_loops` /
#: :func:`build_flyweights` for private instances).
_REPLAY_TABLES: tuple[list, list, list] | None = None


def replay_tables() -> tuple[list, list, list]:
    """``(block_loops, fillers, seq_fillers)``, built once and cached.

    The two filler lists share one flyweight per type (a plain and a
    SEQ_STEP decode of the same block must populate the same object);
    the block loops keep their own.
    """
    global _REPLAY_TABLES
    if _REPLAY_TABLES is None:
        fillers = []
        seq_fillers = []
        for cls in EVENT_TYPES:
            fly = _flyweight_class(cls)()
            fillers.append(_make_filler(cls, fly))
            seq_fillers.append(_make_seq_filler(cls, fly))
        _REPLAY_TABLES = (build_block_loops(), fillers, seq_fillers)
    return _REPLAY_TABLES


class ReplayStats:
    """Per-replay block accounting for :func:`replay_blocks`.

    Splits the skipped-undecoded tally by *why* the block was skipped:

    ``blocks_skipped_type``
        no handler subscribes to the block's event type (the classic
        fast path — e.g. ``BarrierWait`` under every helgrind config);
    ``blocks_skipped_shard``
        the caller's ``skip_blocks`` set named the block — sharded
        replay seeking past blocks whose pages belong to other shards.

    ``events_skipped`` counts the rows inside skipped blocks (of either
    kind); they still count toward the replay's returned event total.
    """

    __slots__ = (
        "blocks_decoded",
        "blocks_skipped_type",
        "blocks_skipped_shard",
        "events_skipped",
    )

    def __init__(self) -> None:
        self.blocks_decoded = 0
        self.blocks_skipped_type = 0
        self.blocks_skipped_shard = 0
        self.events_skipped = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


def _bulk_for(type_idx: int, fns) -> "object | None":
    """Resolve a batched block consumer for one dispatch entry.

    Only the sole-subscriber ``MemoryAccess`` shape qualifies: the
    handler must be a bound method (closures from telemetry wrappers or
    shard page filters have no ``__self__`` and fall through), and its
    owner must publish ``bulk_access_ready()`` and opt in.  Everything
    else returns ``None`` and the per-event loops run unchanged.
    """
    if type_idx != _ACCESS_TYPE_IDX or len(fns) != 1:
        return None
    owner = getattr(fns[0], "__self__", None)
    if owner is None:
        return None
    ready = getattr(owner, "bulk_access_ready", None)
    if ready is None or not ready():
        return None
    return owner.bulk_access


def replay_blocks(
    data: bytes,
    handler_table,
    vm,
    *,
    skip_blocks: frozenset | set | None = None,
    stats: ReplayStats | None = None,
) -> int:
    """The replay-from-binary hot loop; returns the event count.

    A manually inlined variant of :func:`read_blocks` + dispatch —
    no generator suspension, no per-block tuple, zero-copy memoryview
    rows, and single-byte varints (the overwhelmingly common case)
    read without a function call.  ``handler_table[type_idx]`` is a
    tuple of handler callables (empty → the block is skipped without
    decoding a row); one subscriber takes the fused codegen loop,
    several share a flyweight per row.

    ``skip_blocks`` is a set of block record offsets (the tag byte's
    offset, as reported by :func:`build_block_index`) to seek past
    undecoded — the sharded-replay fast path.  Skipped rows still count
    toward the returned event total, so every shard reports the same
    trace length.  ``stats`` (a :class:`ReplayStats`) receives the
    block accounting when given; the default path pays nothing for it.
    """
    if not data.startswith(MAGIC):
        raise ValueError("not a binary trace (bad magic)")
    loops, fillers, seq_fillers = replay_tables()
    # One merged per-type dispatch entry — a single list index per block
    # instead of separate struct/handler/loop/filler lookups:
    # ``(struct variants, single handler or None, handlers, (plain,
    # seq) loops, filler, seq filler, bulk consumer or None)``.
    dispatch = [
        (
            _ROW_STRUCTS[i],
            fns[0] if len(fns) == 1 else None,
            fns,
            loops[i],
            fillers[i],
            seq_fillers[i],
            _bulk_for(i, fns),
        )
        for i, fns in enumerate(handler_table)
    ]
    view = memoryview(data)
    pos = len(MAGIC)
    end = len(data)
    strings: list[str] = []
    frames: list[Frame] = []
    stacks: list[tuple] = []
    count = 0
    while pos < end:
        tag = data[pos]
        record_at = pos
        pos += 1
        if tag == _TAG_BLOCK:
            entry = dispatch[data[pos]]
            flags = data[pos + 1]
            pos += 2
            n = data[pos]
            pos += 1
            if n & 0x80:
                n, pos = _read_varint(data, pos - 1)
            if flags & _FLAG_SEQ_STEP:
                base = data[pos]
                pos += 1
                if base & 0x80:
                    base, pos = _read_varint(data, pos - 1)
            else:
                base = None
            s = entry[0][flags]
            size = s.size * n
            count += n
            if skip_blocks is not None and record_at in skip_blocks:
                if stats is not None:
                    stats.blocks_skipped_shard += 1
                    stats.events_skipped += n
                pos += size
                continue
            single = entry[1]
            if stats is not None:
                if single is None and not entry[2]:
                    stats.blocks_skipped_type += 1
                    stats.events_skipped += n
                else:
                    stats.blocks_decoded += 1
            if single is not None:
                if n == 1:
                    # Single-row block (types alternating in the stream
                    # fragment blocks): unpack straight from the backing
                    # bytes — no memoryview slice, no iterator.
                    row = s.unpack_from(data, pos)
                    if base is None:
                        single(entry[4](stacks, strings, row), vm)
                    else:
                        single(entry[5](stacks, strings, row, base), vm)
                else:
                    block = view[pos:pos + size]
                    bulk = entry[6]
                    if bulk is None or not bulk(block, s, base, stacks, vm):
                        pair = entry[3]
                        if base is None:
                            pair[0](block, s, stacks, strings, single, vm, 0)
                        else:
                            pair[1](block, s, stacks, strings, single, vm, base)
            elif entry[2]:
                fns = entry[2]
                block = view[pos:pos + size]
                if base is None:
                    fill = entry[4]
                    for row in s.iter_unpack(block):
                        event = fill(stacks, strings, row)
                        for fn in fns:
                            fn(event, vm)
                else:
                    fill = entry[5]
                    for i, row in enumerate(s.iter_unpack(block)):
                        event = fill(stacks, strings, row, base + i)
                        for fn in fns:
                            fn(event, vm)
            pos += size
        elif tag == _TAG_STRING:
            length, pos = _read_varint(data, pos)
            strings.append(data[pos:pos + length].decode("utf-8"))
            pos += length
        elif tag == _TAG_FRAME:
            func, pos = _read_varint(data, pos)
            file, pos = _read_varint(data, pos)
            line, pos = _read_varint(data, pos)
            frames.append(Frame(strings[func], strings[file], line))
        elif tag == _TAG_STACK:
            n, pos = _read_varint(data, pos)
            frame_ids = []
            for _ in range(n):
                fid, pos = _read_varint(data, pos)
                frame_ids.append(fid)
            stacks.append(intern_stack(tuple(frames[i] for i in frame_ids)))
        else:
            raise ValueError(f"corrupt trace: unknown record tag {tag}")
    return count


# ----------------------------------------------------------------------
# Page-aware block index (the sharded-replay seek table)
# ----------------------------------------------------------------------

#: Shadow-page size must agree with the lock-set machine's
#: (:mod:`repro.detectors.lockset` uses 2**10-word pages); the shard
#: partition keys on the same pages so every word's whole access
#: history lands in exactly one shard.
DEFAULT_PAGE_BITS = 10

#: ``MemoryAccess`` is the partitioned event type; everything else is
#: skeleton, replicated to every shard.
_ACCESS_TYPE_IDX = _TYPE_INDEX[MemoryAccess]


def build_block_index(
    data: bytes,
    num_shards: int,
    *,
    page_bits: int = DEFAULT_PAGE_BITS,
) -> dict[int, int]:
    """Map each ``MemoryAccess`` block to the set of shards it touches.

    One pass over the trace image: for every access block, the ``addr``
    column is scanned and each row's shard — ``(addr >> page_bits) %
    num_shards`` — is OR-ed into a bitmask.  Returns ``{block record
    offset: shard bitmask}`` where the offset is that of the block's
    tag byte, the same coordinate :func:`replay_blocks` checks its
    ``skip_blocks`` set against.  A shard worker derives its skip set
    as every block whose mask misses its bit, and needs a per-row page
    filter only for *mixed* blocks (mask with more than one bit).

    Non-access blocks are not indexed — they are skeleton (sync, lock,
    thread-lifecycle, allocation) and every shard must replay them.
    The scan early-exits a block once its mask saturates.
    """
    if not data.startswith(MAGIC):
        raise ValueError("not a binary trace (bad magic)")
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    index: dict[int, int] = {}
    full_mask = (1 << num_shards) - 1
    pos = len(MAGIC)
    end = len(data)
    while pos < end:
        tag = data[pos]
        record_at = pos
        pos += 1
        if tag == _TAG_BLOCK:
            type_idx = data[pos]
            flags = data[pos + 1]
            pos += 2
            n, pos = _read_varint(data, pos)
            if flags & _FLAG_SEQ_STEP:
                _, pos = _read_varint(data, pos)
            s = _ROW_STRUCTS[type_idx][flags]
            size = s.size * n
            if type_idx == _ACCESS_TYPE_IDX:
                addr_col = 2 if flags & _FLAG_SEQ_STEP else 3
                mask = 0
                for row in s.iter_unpack(data[pos:pos + size]):
                    mask |= 1 << ((row[addr_col] >> page_bits) % num_shards)
                    if mask == full_mask:
                        break
                index[record_at] = mask
            pos += size
        elif tag == _TAG_STRING:
            length, pos = _read_varint(data, pos)
            pos += length
        elif tag == _TAG_FRAME:
            _, pos = _read_varint(data, pos)
            _, pos = _read_varint(data, pos)
            _, pos = _read_varint(data, pos)
        elif tag == _TAG_STACK:
            n, pos = _read_varint(data, pos)
            for _ in range(n):
                _, pos = _read_varint(data, pos)
        else:
            raise ValueError(f"corrupt trace: unknown record tag {tag}")
    return index


def page_histogram(
    data: bytes,
    *,
    page_bits: int = DEFAULT_PAGE_BITS,
    top: int = 10,
) -> dict:
    """Events-per-shadow-page distribution of a trace's memory accesses.

    The shard-balance predictor behind ``repro trace stat``: accesses
    partition across shards by page, so a trace whose accesses pile
    onto one page cannot parallelise.  Returns::

        {"accesses": int,           # MemoryAccess rows in the trace
         "pages": int,              # distinct shadow pages touched
         "top": [(page, count)],    # hottest pages, descending
         "skew": float}             # hottest page / mean page load

    ``skew`` is 1.0 for a perfectly uniform trace and approaches
    ``pages`` as everything collapses onto one page; 0.0 when there
    are no accesses at all.
    """
    if not data.startswith(MAGIC):
        raise ValueError("not a binary trace (bad magic)")
    counts: dict[int, int] = {}
    pos = len(MAGIC)
    end = len(data)
    while pos < end:
        tag = data[pos]
        pos += 1
        if tag == _TAG_BLOCK:
            type_idx = data[pos]
            flags = data[pos + 1]
            pos += 2
            n, pos = _read_varint(data, pos)
            if flags & _FLAG_SEQ_STEP:
                _, pos = _read_varint(data, pos)
            s = _ROW_STRUCTS[type_idx][flags]
            size = s.size * n
            if type_idx == _ACCESS_TYPE_IDX:
                addr_col = 2 if flags & _FLAG_SEQ_STEP else 3
                for row in s.iter_unpack(data[pos:pos + size]):
                    page = row[addr_col] >> page_bits
                    counts[page] = counts.get(page, 0) + 1
            pos += size
        elif tag == _TAG_STRING:
            length, pos = _read_varint(data, pos)
            pos += length
        elif tag == _TAG_FRAME:
            _, pos = _read_varint(data, pos)
            _, pos = _read_varint(data, pos)
            _, pos = _read_varint(data, pos)
        elif tag == _TAG_STACK:
            n, pos = _read_varint(data, pos)
            for _ in range(n):
                _, pos = _read_varint(data, pos)
        else:
            raise ValueError(f"corrupt trace: unknown record tag {tag}")
    accesses = sum(counts.values())
    pages = len(counts)
    hottest = max(counts.values()) if counts else 0
    mean = accesses / pages if pages else 0.0
    return {
        "accesses": accesses,
        "pages": pages,
        "top": sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top],
        "skew": (hottest / mean) if mean else 0.0,
    }


# ----------------------------------------------------------------------
# Streaming decoding (the service ingest tier)
# ----------------------------------------------------------------------


def _try_varint(data: bytes, pos: int, end: int) -> tuple[int, int] | None:
    """Read unsigned LEB128 at ``pos``; ``None`` if it runs off ``end``."""
    result = 0
    shift = 0
    while pos < end:
        b = data[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7
    return None


class StreamDecoder:
    """Incremental, resumable RPTR v1 decoder tolerant of partial reads.

    :func:`replay_blocks` wants the whole trace as one bytes object; a
    network ingest path gets the same byte stream in arbitrary chunks —
    a record (or even a varint inside one) can straddle any boundary.
    :meth:`feed` buffers input and decodes every *complete* record,
    leaving the trailing fragment buffered for the next chunk, so the
    chunking of the transport never changes what the detectors see.

    Dispatch uses the exact machinery of :func:`replay_blocks` — fused
    codegen loops for single-subscriber types, shared flyweights for
    multi-subscriber ones, undecoded skipping for types nobody wants —
    but with *private* tables (built at :meth:`bind` time), so any
    number of decoders can run on concurrent threads (one per analysis
    session) without sharing mutable flyweight state.

    The decoder is picklable mid-stream: its interning tables, counters
    and buffered fragment travel; the unpicklable codegen tables and
    bound handlers are rebuilt by calling :meth:`bind` again after
    unpickling.  This is what lets the analysis service checkpoint a
    session and resume it in a fresh process — the client continues
    streaming from :attr:`bytes_fed` and the decode picks up exactly
    where it left off.

    Byte accounting is exact and two-level: :attr:`bytes_fed` counts
    everything ever passed to :meth:`feed`; :attr:`bytes_consumed`
    counts complete decoded records (including the magic).  At any
    moment ``bytes_fed == bytes_consumed + pending_bytes``, and after a
    whole trace has been fed, both equal the
    :attr:`TraceWriter.bytes_written` of the writer that produced it.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._magic_seen = False
        self._strings: list[str] = []
        self._frames: list[Frame] = []
        self._stacks: list[tuple] = []
        #: Bytes ever fed, and bytes of fully-decoded records.
        self.bytes_fed = 0
        self.bytes_consumed = 0
        self.events_decoded = 0
        self.blocks_decoded = 0
        self._dispatch: list | None = None
        self._vm = None

    # -- handler wiring ------------------------------------------------

    def bind(self, handler_table, vm=None) -> None:
        """Attach per-type handlers (the shape ``replay_trace`` builds:
        one tuple of callables per :data:`EVENT_TYPES` index).

        Builds private flyweight/loop tables — a few dozen ``exec``
        calls, milliseconds — so call it once per decoder, not per
        chunk.  Must be called again after unpickling.  A decoder that
        is never bound still decodes (and counts) records; it just
        dispatches to nobody, which is what pure accounting consumers
        (``trace stat``-style) want.
        """
        fillers = []
        seq_fillers = []
        for cls in EVENT_TYPES:
            fly = _flyweight_class(cls)()
            fillers.append(_make_filler(cls, fly))
            seq_fillers.append(_make_seq_filler(cls, fly))
        loops = build_block_loops()
        self._dispatch = [
            (
                _ROW_STRUCTS[i],
                fns[0] if len(fns) == 1 else None,
                tuple(fns),
                loops[i],
                fillers[i],
                seq_fillers[i],
                _bulk_for(i, fns),
            )
            for i, fns in enumerate(handler_table)
        ]
        self._vm = vm

    # -- pickling (checkpoint support) ---------------------------------

    def __getstate__(self) -> dict:
        return {
            "buf": bytes(self._buf),
            "magic_seen": self._magic_seen,
            "strings": list(self._strings),
            "frames": list(self._frames),
            "stacks": [tuple(s) for s in self._stacks],
            "bytes_fed": self.bytes_fed,
            "bytes_consumed": self.bytes_consumed,
            "events_decoded": self.events_decoded,
            "blocks_decoded": self.blocks_decoded,
        }

    def __setstate__(self, state: dict) -> None:
        self._buf = bytearray(state["buf"])
        self._magic_seen = state["magic_seen"]
        self._strings = list(state["strings"])
        # Re-intern: unpickled frames/stacks are equal but not canonical;
        # putting them back through the tables restores the one-object-
        # per-program-point invariant the detectors rely on for cheap
        # report deduplication.
        self._frames = [intern_frame(f) for f in state["frames"]]
        self._stacks = [intern_stack(s) for s in state["stacks"]]
        self.bytes_fed = state["bytes_fed"]
        self.bytes_consumed = state["bytes_consumed"]
        self.events_decoded = state["events_decoded"]
        self.blocks_decoded = state["blocks_decoded"]
        self._dispatch = None
        self._vm = None

    # -- introspection -------------------------------------------------

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes of the trailing incomplete record."""
        return len(self._buf)

    def table_sizes(self) -> dict[str, int]:
        """Interning-table populations (mirrors ``TraceWriter``'s)."""
        return {
            "strings": len(self._strings),
            "frames": len(self._frames),
            "stacks": len(self._stacks),
        }

    # -- decoding ------------------------------------------------------

    def feed(self, data: bytes) -> int:
        """Buffer ``data``, decode every complete record, dispatch the
        events to the bound handlers; returns the number of events
        decoded by *this* call."""
        self._buf += data
        self.bytes_fed += len(data)
        return self._drain()

    def _drain(self) -> int:
        buf = self._buf
        if not self._magic_seen:
            if len(buf) < len(MAGIC):
                return 0
            if bytes(buf[: len(MAGIC)]) != MAGIC:
                raise ValueError("not a binary trace (bad magic)")
            del buf[: len(MAGIC)]
            self.bytes_consumed += len(MAGIC)
            self._magic_seen = True
        if not buf:
            return 0
        data = bytes(buf)
        view = memoryview(data)
        pos = 0
        end = len(data)
        dispatch = self._dispatch
        vm = self._vm
        strings = self._strings
        frames = self._frames
        stacks = self._stacks
        events = 0
        blocks = 0
        while pos < end:
            tag = data[pos]
            npos = pos + 1
            if tag == _TAG_BLOCK:
                if end - npos < 2:
                    break
                type_idx = data[npos]
                flags = data[npos + 1]
                npos += 2
                r = _try_varint(data, npos, end)
                if r is None:
                    break
                n, npos = r
                if flags & _FLAG_SEQ_STEP:
                    r = _try_varint(data, npos, end)
                    if r is None:
                        break
                    base, npos = r
                else:
                    base = None
                s = _ROW_STRUCTS[type_idx][flags]
                size = s.size * n
                if end - npos < size:
                    break
                if dispatch is not None:
                    entry = dispatch[type_idx]
                    single = entry[1]
                    if single is not None:
                        block = view[npos:npos + size]
                        bulk = entry[6]
                        if bulk is None or not bulk(block, s, base, stacks, vm):
                            pair = entry[3]
                            if base is None:
                                pair[0](
                                    block, s, stacks, strings, single, vm, 0
                                )
                            else:
                                pair[1](
                                    block, s, stacks, strings, single, vm, base
                                )
                    elif entry[2]:
                        fns = entry[2]
                        block = view[npos:npos + size]
                        if base is None:
                            fill = entry[4]
                            for row in s.iter_unpack(block):
                                event = fill(stacks, strings, row)
                                for fn in fns:
                                    fn(event, vm)
                        else:
                            fill = entry[5]
                            for i, row in enumerate(s.iter_unpack(block)):
                                event = fill(stacks, strings, row, base + i)
                                for fn in fns:
                                    fn(event, vm)
                events += n
                blocks += 1
                npos += size
            elif tag == _TAG_STRING:
                r = _try_varint(data, npos, end)
                if r is None:
                    break
                length, npos = r
                if end - npos < length:
                    break
                strings.append(data[npos:npos + length].decode("utf-8"))
                npos += length
            elif tag == _TAG_FRAME:
                r = _try_varint(data, npos, end)
                if r is None:
                    break
                func, npos = r
                r = _try_varint(data, npos, end)
                if r is None:
                    break
                file, npos = r
                r = _try_varint(data, npos, end)
                if r is None:
                    break
                line, npos = r
                frames.append(
                    intern_frame(Frame(strings[func], strings[file], line))
                )
            elif tag == _TAG_STACK:
                r = _try_varint(data, npos, end)
                if r is None:
                    break
                count, npos = r
                frame_ids = []
                incomplete = False
                for _ in range(count):
                    r = _try_varint(data, npos, end)
                    if r is None:
                        incomplete = True
                        break
                    fid, npos = r
                    frame_ids.append(fid)
                if incomplete:
                    break
                stacks.append(intern_stack(tuple(frames[i] for i in frame_ids)))
            else:
                raise ValueError(f"corrupt trace: unknown record tag {tag}")
            pos = npos
        if pos:
            del buf[:pos]
            self.bytes_consumed += pos
        self.events_decoded += events
        self.blocks_decoded += blocks
        return events


def trace_stats(path) -> dict:
    """Summary of a binary trace for ``repro trace stat``.

    One pass over the file: event counts by type, interning-table
    populations, file size, and bytes/event.
    """
    import os

    data = open(path, "rb").read()
    by_type: dict[str, int] = {}
    strings = stacks = 0
    total = 0
    for cls, _stacks, _strings, _row in read_events(data):
        name = cls.__name__
        by_type[name] = by_type.get(name, 0) + 1
        total += 1
        strings = len(_strings)
        stacks = len(_stacks)
    return {
        "path": str(path),
        "file_bytes": os.path.getsize(path),
        "events": total,
        "by_type": dict(sorted(by_type.items(), key=lambda kv: -kv[1])),
        "strings": strings,
        "stacks": stacks,
        "bytes_per_event": (os.path.getsize(path) / total) if total else 0.0,
    }
