"""Typed event records — the ABI between the VM and the detectors.

Helgrind observes the guest through Valgrind's instrumentation: every
load, store, pthread call and allocation becomes a callback into the
tool.  Our VM emits one event object per trap; detectors are plain
objects with a ``handle(event, vm)`` method registered on the VM.

Design notes
------------
* Events are immutable (``frozen=True``) dataclasses with ``slots`` —
  they are created millions of times per run and are the dominant
  allocation, so they stay small, and immutability lets the trace
  recorder and several detectors share them without copying.
* Every event carries the logical ``step`` (the VM's trap counter — the
  only clock in the simulated world), the acting thread id and a call
  stack snapshot.  Call stacks are what turn raw addresses into the
  "reported locations" the paper counts (its §4 metric is *distinct
  warning locations*, not dynamic warning instances).
* Memory accesses carry a ``bus_locked`` flag — the x86 ``LOCK`` prefix.
  How that flag is *interpreted* is precisely the paper's HWLC
  improvement and therefore lives in the detector, not here.
* ``ClientRequest`` models Valgrind's client-request mechanism: a
  sequence of no-op instructions the VM recognises as a message from the
  guest (Figure 4's ``VALGRIND_HG_DESTRUCT``).  Under "native" execution
  (no detectors registered) the request costs one dictionary-free method
  call and does nothing, matching the paper's "no-op under normal
  program execution with negligible execution time".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields

__all__ = [
    "AccessKind",
    "LockMode",
    "Frame",
    "CallStack",
    "intern_frame",
    "intern_stack",
    "intern_stats",
    "Event",
    "MemoryAccess",
    "MemAlloc",
    "MemFree",
    "LockAcquire",
    "LockRelease",
    "ThreadCreate",
    "ThreadFinish",
    "ThreadJoin",
    "CondWait",
    "CondSignal",
    "SemPost",
    "SemWait",
    "BarrierWait",
    "QueuePut",
    "QueueGet",
    "ClientRequest",
    "EVENT_TYPES",
    "event_from_dict",
]


class AccessKind(enum.Enum):
    """Direction of a memory access."""

    READ = "read"
    WRITE = "write"


class LockMode(enum.Enum):
    """Mode in which a lock is held.

    ``EXCLUSIVE`` is a plain mutex; ``READ``/``WRITE`` are the two modes
    of a read-write lock.  The Eraser refinement treats ``EXCLUSIVE`` and
    ``WRITE`` identically ("held in write mode") and ``READ`` as "held in
    any mode" only.
    """

    EXCLUSIVE = "exclusive"
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class Frame:
    """One guest call-stack frame: ``function`` at ``file:line``."""

    function: str
    file: str = "<guest>"
    line: int = 0

    def __str__(self) -> str:
        return f"{self.function} ({self.file}:{self.line})"


#: A call stack, innermost frame first (index 0 = the access site),
#: mirroring the order Valgrind prints them.
CallStack = tuple[Frame, ...]

_EMPTY_STACK: CallStack = ()


# ----------------------------------------------------------------------
# ExeContext-style interning (Valgrind's m_execontext)
# ----------------------------------------------------------------------
#
# Valgrind deduplicates call stacks by interning them as ``ExeContext``
# records: taking a stack snapshot first looks the frames up in a hash
# table, so the millions of events recorded at the same program point
# all share one object.  We do the same for :class:`Frame` objects and
# :data:`CallStack` tuples.  The tables are process-wide and append-only
# — guest programs have a bounded number of distinct program points, so
# the tables stay small while the event stream is unbounded.
#
# Interning buys three things on the hot path:
#
# * one allocation per *distinct* stack instead of one per event,
# * report-location deduplication compares one canonical object per
#   program point (equal stacks are the *same* tuple), and
# * serialised traces replayed through :func:`event_from_dict` collapse
#   back onto the same canonical objects as a live run.

_FRAME_INTERN: dict[Frame, Frame] = {}
_STACK_INTERN: dict[CallStack, CallStack] = {_EMPTY_STACK: _EMPTY_STACK}

#: Interning effectiveness tallies (telemetry input; ``intern_stack``
#: only runs on guest frame-stack *changes*, so the counting is off the
#: per-event fast path).
_STACK_HITS = 0
_STACK_MISSES = 0


def intern_frame(frame: Frame) -> Frame:
    """Return the canonical instance equal to ``frame``."""
    return _FRAME_INTERN.setdefault(frame, frame)


def intern_stack(stack: CallStack) -> CallStack:
    """Return the canonical instance equal to ``stack``.

    The frames of a newly-interned stack are interned individually as
    well, so shared prefixes/suffixes across different stacks also share
    their :class:`Frame` objects.
    """
    global _STACK_HITS, _STACK_MISSES
    cached = _STACK_INTERN.get(stack)
    if cached is not None:
        _STACK_HITS += 1
        return cached
    _STACK_MISSES += 1
    canonical: CallStack = tuple(_FRAME_INTERN.setdefault(f, f) for f in stack)
    return _STACK_INTERN.setdefault(canonical, canonical)


def intern_table_sizes() -> tuple[int, int]:
    """(distinct frames, distinct stacks) — introspection for tests."""
    return len(_FRAME_INTERN), len(_STACK_INTERN)


def intern_stats() -> dict[str, int]:
    """ExeContext-table effectiveness (telemetry input).

    ``stack_hits`` are :func:`intern_stack` calls answered from the
    table, ``stack_misses`` interned a new canonical stack; the two
    sizes are the distinct-object populations.
    """
    return {
        "frames": len(_FRAME_INTERN),
        "stacks": len(_STACK_INTERN),
        "stack_hits": _STACK_HITS,
        "stack_misses": _STACK_MISSES,
    }


@dataclass(frozen=True, slots=True)
class Event:
    """Base class for all VM events.

    ``step`` is the VM's logical clock (one tick per trap), ``tid`` the
    id of the guest thread that performed the operation, and ``stack``
    its call stack at that instant (innermost first).
    """

    step: int
    tid: int
    stack: CallStack = field(default=_EMPTY_STACK, kw_only=True)

    @property
    def site(self) -> Frame | None:
        """The innermost frame — the 'location' used for deduplication."""
        return self.stack[0] if self.stack else None

    def to_dict(self) -> dict:
        """Serialise for the trace log (offline / post-mortem analysis)."""
        out: dict = {"type": type(self).__name__}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "stack":
                value = [(fr.function, fr.file, fr.line) for fr in value]
            elif isinstance(value, enum.Enum):
                value = value.value
            out[f.name] = value
        return out


@dataclass(frozen=True, slots=True)
class MemoryAccess(Event):
    """A load or store of one guest word.

    ``bus_locked`` marks the x86 ``LOCK`` prefix (atomic read-modify-write
    operations emit a locked READ followed by a locked WRITE).  ``block_id``
    identifies the containing allocation, or ``-1`` for a wild access.
    """

    addr: int = 0
    kind: AccessKind = AccessKind.READ
    bus_locked: bool = False
    block_id: int = -1

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE


@dataclass(frozen=True, slots=True)
class MemAlloc(Event):
    """A VM-level allocation of ``size`` words at ``addr``."""

    addr: int = 0
    size: int = 0
    block_id: int = -1
    tag: str = ""


@dataclass(frozen=True, slots=True)
class MemFree(Event):
    """A VM-level free of the block at ``addr``."""

    addr: int = 0
    size: int = 0
    block_id: int = -1


@dataclass(frozen=True, slots=True)
class LockAcquire(Event):
    """A lock was acquired in ``mode`` (emitted after the wait, if any)."""

    lock_id: int = -1
    mode: LockMode = LockMode.EXCLUSIVE
    #: True when the acquisition had to wait for another holder first —
    #: useful for contention statistics, ignored by the race detectors.
    contended: bool = False


@dataclass(frozen=True, slots=True)
class LockRelease(Event):
    """A lock was released (mode recorded for rw-locks)."""

    lock_id: int = -1
    mode: LockMode = LockMode.EXCLUSIVE


@dataclass(frozen=True, slots=True)
class ThreadCreate(Event):
    """Thread ``tid`` created ``child_tid`` (pthread_create)."""

    child_tid: int = -1


@dataclass(frozen=True, slots=True)
class ThreadFinish(Event):
    """Thread ``tid`` ran to completion (its start routine returned)."""


@dataclass(frozen=True, slots=True)
class ThreadJoin(Event):
    """Thread ``tid`` observed the termination of ``joined_tid``."""

    joined_tid: int = -1


@dataclass(frozen=True, slots=True)
class CondWait(Event):
    """A condition-variable wait.

    Emitted twice per wait: ``phase='enter'`` just before the atomic
    release-and-block, ``phase='leave'`` after the thread was signalled
    and reacquired the mutex.  The mutex release/reacquire themselves are
    also emitted as ordinary lock events, which is all the lock-set
    algorithm ever looks at — the paper notes (§2.2) that the
    signal/wait relation is *not* strong enough to impose an order, so
    Helgrind ignores these; our happens-before detectors may not.
    """

    cond_id: int = -1
    mutex_id: int = -1
    phase: str = "enter"


@dataclass(frozen=True, slots=True)
class CondSignal(Event):
    """A condition-variable signal (``broadcast`` wakes all waiters)."""

    cond_id: int = -1
    broadcast: bool = False


@dataclass(frozen=True, slots=True)
class SemPost(Event):
    """Semaphore V operation."""

    sem_id: int = -1


@dataclass(frozen=True, slots=True)
class SemWait(Event):
    """Semaphore P operation (emitted after the count was taken)."""

    sem_id: int = -1


@dataclass(frozen=True, slots=True)
class BarrierWait(Event):
    """A barrier operation; ``generation`` counts barrier cycles.

    Emitted twice per thread per cycle: ``phase='arrive'`` when the
    thread reaches the barrier and ``phase='leave'`` once the cycle
    completes and the thread continues.  Happens-before detectors order
    every arrival of a generation before every departure of the same
    generation.
    """

    barrier_id: int = -1
    generation: int = 0
    phase: str = "arrive"


@dataclass(frozen=True, slots=True)
class QueuePut(Event):
    """A message was deposited into a message queue.

    ``msg_id`` pairs this put with the :class:`QueueGet` that removes the
    same message — the higher-level synchronisation the paper's Figure 11
    shows the lock-set algorithm being unaware of, and which the
    "future work" queue-aware detector configuration consumes.
    """

    queue_id: int = -1
    msg_id: int = -1


@dataclass(frozen=True, slots=True)
class QueueGet(Event):
    """A message was removed from a message queue (see :class:`QueuePut`)."""

    queue_id: int = -1
    msg_id: int = -1


@dataclass(frozen=True, slots=True)
class ClientRequest(Event):
    """A Valgrind-style client request from the guest.

    ``request`` names the operation; the ones the detectors understand:

    * ``"hg_destruct"`` — Figure 4's ``VALGRIND_HG_DESTRUCT(addr, size)``:
      the guest is about to run destructors over ``[addr, addr+size)``;
      mark that range exclusively owned by the current thread (segment).
    * ``"hg_clean"`` — forget all detector state for the range (used by
      custom allocators that recycle memory, §4's libstdc++ pool issue).
    * ``"benign_race"`` — the developer vouches for the range; suppress
      race reports on it (the annotation-free analogue of a suppression
      entry scoped to data rather than code).
    """

    request: str = ""
    addr: int = 0
    size: int = 0


_EVENT_TYPES = {
    cls.__name__: cls
    for cls in (
        MemoryAccess,
        MemAlloc,
        MemFree,
        LockAcquire,
        LockRelease,
        ThreadCreate,
        ThreadFinish,
        ThreadJoin,
        CondWait,
        CondSignal,
        SemPost,
        SemWait,
        BarrierWait,
        QueuePut,
        QueueGet,
        ClientRequest,
    )
}

#: All concrete event types in a *stable, append-only* order.  The
#: binary trace codec (:mod:`repro.runtime.codec`) indexes event blocks
#: by position in this tuple, so reordering it would break every trace
#: on disk — add new types at the end only.
EVENT_TYPES = tuple(_EVENT_TYPES.values())

_ENUM_FIELDS = {"kind": AccessKind, "mode": LockMode}


def event_from_dict(data: dict) -> Event:
    """Inverse of :meth:`Event.to_dict` (used by trace replay)."""
    data = dict(data)
    type_name = data.pop("type")
    try:
        cls = _EVENT_TYPES[type_name]
    except KeyError:
        raise ValueError(f"unknown event type in trace: {type_name!r}") from None
    if "stack" in data:
        data["stack"] = intern_stack(
            tuple(Frame(fn, fi, ln) for fn, fi, ln in data["stack"])
        )
    for name, enum_cls in _ENUM_FIELDS.items():
        if name in data:
            data[name] = enum_cls(data[name])
    return cls(**data)
