"""Bounded systematic schedule exploration (CHESS-style).

The paper's §4.3 remedy for schedule-dependent detection is hopeful:
"Repeated tests with different test data (resulting in different
interleavings) could help find such data-races, if they exist."  Random
seed sweeps (:func:`repro.experiments.studies.false_negative_study`) do
exactly that — but for small programs we can do better than hope:
**enumerate** the schedule space.

:func:`explore` performs stateless depth-first exploration over the
scheduler's decision points, the way Microsoft's CHESS does for real
binaries: run the program once taking the default choice everywhere and
record, at every decision point, how many runnable threads there were;
then branch — re-run with one decision flipped, discover the new run's
decision points, branch again — until the space is exhausted or the run
budget is spent.  Every run is deterministic (the VM is), so each
explored schedule is exactly reproducible from its choice prefix.

No partial-order reduction is attempted: the point here is a *complete*
verdict on small scenarios (does ANY schedule trigger the race / tear
the record / wedge the program?), not scalability.  Exhaustiveness is
reported honestly via :attr:`ExplorationResult.exhausted`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import DeadlockError, GuestFault, StepLimitExceeded
from repro.runtime.scheduler import Scheduler
from repro.runtime.vm import VM

__all__ = ["explore", "ExplorationResult", "ScheduleOutcome"]


class _ExploringScheduler(Scheduler):
    """Follows a prefix of *choice indices*; index 0 (lowest runnable
    tid) after the prefix.  Records the arity of every decision point so
    the explorer knows where it can branch."""

    def __init__(self, prefix: Sequence[int]) -> None:
        self.prefix = list(prefix)
        #: Choice index actually taken at each decision point.
        self.taken: list[int] = []
        #: Number of runnable threads at each decision point.
        self.arity: list[int] = []

    def pick(self, runnable, current):
        depth = len(self.taken)
        index = self.prefix[depth] if depth < len(self.prefix) else 0
        if index >= len(runnable):
            index = 0  # the branch point no longer exists on this path
        self.taken.append(index)
        self.arity.append(len(runnable))
        return runnable[index]


@dataclass(slots=True)
class ScheduleOutcome:
    """One explored schedule."""

    #: Choice-index prefix reproducing this run (feed back to explore or
    #: to :class:`_ExploringScheduler` directly).
    choices: tuple[int, ...]
    #: The guest result, if the run completed.
    result: object = None
    #: "ok" | "deadlock" | "fault" | "steplimit"
    status: str = "ok"
    #: Reported race locations per detector index (when detectors used).
    race_locations: tuple[int, ...] = ()

    @property
    def found_race(self) -> bool:
        return any(self.race_locations)


@dataclass(slots=True)
class ExplorationResult:
    """Aggregate of a bounded exploration."""

    outcomes: list[ScheduleOutcome] = field(default_factory=list)
    #: True when the whole bounded space was covered within the budget.
    exhausted: bool = True
    #: Branch points that existed beyond ``max_depth`` (never flipped).
    truncated_depth: bool = False

    @property
    def schedules_run(self) -> int:
        return len(self.outcomes)

    def with_status(self, status: str) -> list[ScheduleOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def races_found(self) -> int:
        return sum(1 for o in self.outcomes if o.found_race)

    @property
    def deadlocks_found(self) -> int:
        return len(self.with_status("deadlock"))

    def distinct_results(self) -> set:
        return {o.result for o in self.outcomes if o.status == "ok"}

    def format(self) -> str:
        lines = [
            f"explored {self.schedules_run} schedules "
            f"({'exhaustive' if self.exhausted else 'budget-bounded'}"
            f"{', depth-truncated' if self.truncated_depth else ''})",
            f"  completed: {len(self.with_status('ok'))}"
            f"  deadlocked: {self.deadlocks_found}"
            f"  faulted: {len(self.with_status('fault'))}",
        ]
        if any(o.race_locations for o in self.outcomes):
            lines.append(
                f"  schedules with race reports: {self.races_found}"
                f"/{self.schedules_run}"
            )
        results = self.distinct_results()
        if len(results) > 1:
            lines.append(f"  distinct guest results: {sorted(map(repr, results))}")
        return "\n".join(lines)


def explore(
    program: Callable,
    *args,
    detector_factories: Sequence[Callable] = (),
    max_schedules: int = 256,
    max_depth: int = 64,
    step_limit: int = 100_000,
) -> ExplorationResult:
    """Systematically explore ``program``'s schedules.

    ``program`` must be re-runnable (each run gets a fresh VM; shared
    *host* state between runs is the caller's responsibility).
    ``detector_factories`` build fresh detectors per run; each outcome
    records the per-detector race-location counts.

    Branching is bounded twice: at most ``max_schedules`` runs, and only
    the first ``max_depth`` decision points are ever flipped.
    """
    result = ExplorationResult()
    stack: list[tuple[int, ...]] = [()]
    seen: set[tuple[int, ...]] = set()
    while stack:
        if result.schedules_run >= max_schedules:
            result.exhausted = False
            break
        prefix = stack.pop()
        scheduler = _ExploringScheduler(prefix)
        detectors = tuple(factory() for factory in detector_factories)
        vm = VM(scheduler=scheduler, detectors=detectors, step_limit=step_limit)
        outcome = ScheduleOutcome(choices=prefix)
        try:
            outcome.result = vm.run(program, *args)
        except DeadlockError:
            outcome.status = "deadlock"
        except StepLimitExceeded:
            outcome.status = "steplimit"
        except GuestFault:
            outcome.status = "fault"
        outcome.race_locations = tuple(
            d.report.location_count for d in detectors if hasattr(d, "report")
        )
        result.outcomes.append(outcome)

        # Branch: flip each not-yet-fixed decision point of this run.
        taken = scheduler.taken
        arity = scheduler.arity
        depth_cap = min(len(taken), max_depth)
        if len(taken) > max_depth and any(a > 1 for a in arity[max_depth:]):
            result.truncated_depth = True
        for depth in range(len(prefix), depth_cap):
            for alternative in range(1, arity[depth]):
                branch = tuple(taken[:depth]) + (alternative,)
                if branch not in seen:
                    seen.add(branch)
                    stack.append(branch)
    return result
