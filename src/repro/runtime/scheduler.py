"""Seeded guest-thread schedulers.

The VM asks its scheduler which runnable thread to step at every trap
(the finest preemption granularity a serialising VM can offer).  All
schedulers are deterministic functions of their seed and the sequence of
runnable sets they were shown, which is what makes every experiment in
``EXPERIMENTS.md`` reproducible and what enables the paper's §4.3
false-negative study: the *same* program probed under *different*
schedules ("Repeated tests with different test data (resulting in
different interleavings) could help find such data-races").

Available policies
------------------
:class:`RoundRobinScheduler`
    Fair rotation by thread id — the maximally-interleaving schedule;
    good default for flushing out ordering bugs.
:class:`RandomScheduler`
    Uniform choice among runnable threads; seed sweeps explore distinct
    interleavings.
:class:`StickyScheduler`
    Keeps running the current thread and switches only with probability
    ``switch_prob`` — models coarse OS time-slicing, where whole critical
    phases execute without preemption.  Low ``switch_prob`` is how we
    reproduce schedules in which the Eraser delayed-initialisation false
    negative hides (§4.3).
:class:`FixedOrderScheduler`
    Replays a recorded decision sequence; used by trace replay and by
    tests that need one exact interleaving.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro._util.rng import SplitMix64

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.runtime.thread import SimThread

__all__ = [
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "StickyScheduler",
    "FixedOrderScheduler",
]


class Scheduler(ABC):
    """Strategy interface: pick the next thread to run.

    ``runnable`` is non-empty and sorted by thread id (the VM guarantees
    both); ``current`` is the thread that just trapped, or ``None`` if it
    blocked or finished.  Implementations must be side-effect free apart
    from their own internal state.
    """

    @abstractmethod
    def pick(
        self, runnable: Sequence["SimThread"], current: "SimThread | None"
    ) -> "SimThread":
        """Return one element of ``runnable``."""

    def record(self) -> list[int] | None:
        """Decision log (tids picked) if the scheduler keeps one."""
        return None


class _RecordingMixin:
    """Keeps the tid decision log that :meth:`Scheduler.record` exposes."""

    def __init__(self) -> None:
        self._log: list[int] = []

    def _note(self, thread: "SimThread") -> "SimThread":
        self._log.append(thread.tid)
        return thread

    def record(self) -> list[int]:
        return list(self._log)


class RoundRobinScheduler(_RecordingMixin, Scheduler):
    """Rotate fairly through runnable threads by tid."""

    def __init__(self) -> None:
        super().__init__()
        self._last_tid = -1

    def pick(
        self, runnable: Sequence["SimThread"], current: "SimThread | None"
    ) -> "SimThread":
        # Choose the first runnable tid strictly greater than the last
        # one we picked, wrapping around — classic cyclic fairness.
        for thread in runnable:
            if thread.tid > self._last_tid:
                self._last_tid = thread.tid
                return self._note(thread)
        chosen = runnable[0]
        self._last_tid = chosen.tid
        return self._note(chosen)


class RandomScheduler(_RecordingMixin, Scheduler):
    """Uniform random choice among runnable threads."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = SplitMix64(seed)

    def pick(
        self, runnable: Sequence["SimThread"], current: "SimThread | None"
    ) -> "SimThread":
        return self._note(self._rng.choice(runnable))


class StickyScheduler(_RecordingMixin, Scheduler):
    """Prefer the current thread; switch with probability ``switch_prob``.

    With ``switch_prob=0`` a thread runs until it blocks or exits
    (pure cooperative batching); with ``switch_prob=1`` this degenerates
    to :class:`RandomScheduler`.
    """

    def __init__(self, seed: int = 0, switch_prob: float = 0.05) -> None:
        super().__init__()
        if not 0.0 <= switch_prob <= 1.0:
            raise ValueError(f"switch_prob must be in [0, 1], got {switch_prob}")
        self._rng = SplitMix64(seed)
        self.switch_prob = switch_prob

    def pick(
        self, runnable: Sequence["SimThread"], current: "SimThread | None"
    ) -> "SimThread":
        if (
            current is not None
            and current in runnable
            and self._rng.random() >= self.switch_prob
        ):
            return self._note(current)
        return self._note(self._rng.choice(runnable))


class FixedOrderScheduler(Scheduler):
    """Replay an explicit decision sequence of thread ids.

    Each entry is consumed when its tid is runnable; if the scripted tid
    is not currently runnable the scheduler falls back to the lowest
    runnable tid *without* consuming the entry, so scripts only need to
    pin the decision points they care about.  When the script is
    exhausted it keeps choosing the lowest runnable tid.
    """

    def __init__(self, order: Sequence[int]) -> None:
        self._order = list(order)
        self._pos = 0

    def pick(
        self, runnable: Sequence["SimThread"], current: "SimThread | None"
    ) -> "SimThread":
        if self._pos < len(self._order):
            wanted = self._order[self._pos]
            for thread in runnable:
                if thread.tid == wanted:
                    self._pos += 1
                    return thread
        return runnable[0]

    @property
    def exhausted(self) -> bool:
        """True once every scripted decision has been consumed."""
        return self._pos >= len(self._order)
