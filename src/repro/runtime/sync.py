"""Simulated POSIX-style synchronisation objects.

These are the guest-visible counterparts of ``pthread_mutex_t``,
``pthread_rwlock_t``, ``pthread_cond_t``, POSIX semaphores, barriers and
a message queue (the higher-level primitive of the paper's Figure 11).

The objects here are *state only*: who holds what, who is waiting.  The
operational protocol — blocking, waking, event emission, fault checks —
lives in :class:`repro.runtime.vm.GuestAPI` so that every trap follows
one code path.  This mirrors the real split: ``pthread_mutex_t`` is a
dumb struct; the semantics live in the library calls that Helgrind
intercepts.

Waiting uses Mesa semantics throughout: wakers mark waiters runnable and
the waiters re-check their predicate when scheduled.  Combined with the
deterministic scheduler this yields reproducible (and explorable)
wake-up orders.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.runtime.thread import SimThread

__all__ = [
    "SimMutex",
    "SimRWLock",
    "SimCondVar",
    "SimSemaphore",
    "SimBarrier",
    "SimQueue",
]


class _Waitable:
    """Shared wait-queue bookkeeping."""

    def __init__(self) -> None:
        #: Threads blocked on this object, in arrival order.
        self.waiters: list["SimThread"] = []

    def add_waiter(self, thread: "SimThread") -> None:
        self.waiters.append(thread)

    def remove_waiter(self, thread: "SimThread") -> None:
        try:
            self.waiters.remove(thread)
        except ValueError:  # pragma: no cover - defensive; double-remove is a bug
            pass


class SimMutex(_Waitable):
    """A non-recursive mutual-exclusion lock (``pthread_mutex_t``)."""

    def __init__(self, lock_id: int, name: str = "") -> None:
        super().__init__()
        self.lock_id = lock_id
        self.name = name or f"m{lock_id}"
        #: tid of the holder, or ``None`` when free.
        self.owner_tid: int | None = None
        #: Number of successful acquisitions (statistics only).
        self.acquisitions = 0

    @property
    def held(self) -> bool:
        return self.owner_tid is not None

    def __repr__(self) -> str:
        owner = f"t{self.owner_tid}" if self.held else "free"
        return f"SimMutex({self.name}, {owner})"


class SimRWLock(_Waitable):
    """A read-write lock (``pthread_rwlock_t``).

    Many readers or one writer.  The paper's HWLC improvement required
    adding exactly this object to Helgrind ("This required the
    implementation of read-write locks in Helgrind. ... As a benefit,
    support for the corresponding POSIX API could be added easily.").
    """

    def __init__(self, lock_id: int, name: str = "") -> None:
        super().__init__()
        self.lock_id = lock_id
        self.name = name or f"rw{lock_id}"
        #: tids currently holding the lock in read mode.
        self.reader_tids: set[int] = set()
        #: tid of the writer, or ``None``.
        self.writer_tid: int | None = None

    @property
    def held(self) -> bool:
        return self.writer_tid is not None or bool(self.reader_tids)

    def can_read(self) -> bool:
        return self.writer_tid is None

    def can_write(self) -> bool:
        return self.writer_tid is None and not self.reader_tids

    def mode_held_by(self, tid: int) -> str | None:
        """``'read'``, ``'write'`` or ``None`` for the given thread."""
        if self.writer_tid == tid:
            return "write"
        if tid in self.reader_tids:
            return "read"
        return None

    def __repr__(self) -> str:
        if self.writer_tid is not None:
            state = f"writer=t{self.writer_tid}"
        elif self.reader_tids:
            state = f"readers={sorted(self.reader_tids)}"
        else:
            state = "free"
        return f"SimRWLock({self.name}, {state})"


class SimCondVar(_Waitable):
    """A condition variable (``pthread_cond_t``).

    ``waiters`` here are threads inside ``cond_wait`` that have released
    the mutex and not yet been signalled; once signalled they move on to
    re-acquire the mutex (queueing on the mutex like anyone else).
    """

    def __init__(self, cond_id: int, name: str = "") -> None:
        super().__init__()
        self.cond_id = cond_id
        self.name = name or f"cv{cond_id}"
        #: tids whose wait has been signalled but who have not yet woken.
        self.signalled: set[int] = set()

    def __repr__(self) -> str:
        return f"SimCondVar({self.name}, waiters={len(self.waiters)})"


class SimSemaphore(_Waitable):
    """A counting semaphore (``sem_t``)."""

    def __init__(self, sem_id: int, initial: int = 0, name: str = "") -> None:
        super().__init__()
        if initial < 0:
            raise ValueError(f"semaphore initial count must be >= 0, got {initial}")
        self.sem_id = sem_id
        self.name = name or f"sem{sem_id}"
        self.count = initial

    def __repr__(self) -> str:
        return f"SimSemaphore({self.name}, count={self.count})"


class SimBarrier(_Waitable):
    """A cyclic barrier for ``parties`` threads (``pthread_barrier_t``)."""

    def __init__(self, barrier_id: int, parties: int, name: str = "") -> None:
        super().__init__()
        if parties < 1:
            raise ValueError(f"barrier needs >= 1 parties, got {parties}")
        self.barrier_id = barrier_id
        self.name = name or f"bar{barrier_id}"
        self.parties = parties
        #: Threads arrived in the current cycle.
        self.arrived = 0
        #: Completed barrier cycles.
        self.generation = 0

    def __repr__(self) -> str:
        return (
            f"SimBarrier({self.name}, {self.arrived}/{self.parties}, "
            f"gen={self.generation})"
        )


class SimQueue(_Waitable):
    """A FIFO message queue with optional capacity bound.

    This is the thread-pool hand-off primitive of the paper's Figure 11:
    producers ``put`` work items, pool workers ``get`` them.  Each message
    carries a queue-unique ``msg_id`` so detectors that *do* understand
    queues (the future-work configuration) can pair the put with its get.
    """

    def __init__(self, queue_id: int, maxsize: int | None = None, name: str = "") -> None:
        super().__init__()
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"queue maxsize must be >= 1 or None, got {maxsize}")
        self.queue_id = queue_id
        self.name = name or f"q{queue_id}"
        self.maxsize = maxsize
        self._items: deque[tuple[int, object]] = deque()
        self._next_msg_id = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.maxsize is not None and len(self._items) >= self.maxsize

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, payload: object) -> int:
        """Append ``payload``; returns the message id (internal use)."""
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        self._items.append((msg_id, payload))
        return msg_id

    def pop(self) -> tuple[int, object]:
        """Remove and return ``(msg_id, payload)`` (internal use)."""
        return self._items.popleft()

    def __repr__(self) -> str:
        bound = "" if self.maxsize is None else f"/{self.maxsize}"
        return f"SimQueue({self.name}, {len(self._items)}{bound} items)"
