"""Guest thread objects.

A :class:`SimThread` is the VM-level identity of one guest thread: its
tid, lifecycle state, start routine and bookkeeping for blocking and
joining.  The *carrier* (the host ``threading.Thread`` that actually
executes the guest Python code) is owned by the VM; only one carrier is
ever released at a time, so guest threads are concurrent in the
simulated world but strictly serial on the host — the same arrangement
Valgrind uses ("the virtual machine in itself is single-threaded",
paper §3.3).
"""

from __future__ import annotations

import enum
import threading
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.runtime.events import CallStack

__all__ = ["ThreadState", "SimThread"]


class ThreadState(enum.Enum):
    """Lifecycle of a guest thread."""

    #: Created, never scheduled yet.
    NEW = "new"
    #: Eligible to run.
    RUNNABLE = "runnable"
    #: Waiting for a lock / condition / join / queue message.
    BLOCKED = "blocked"
    #: Start routine returned normally.
    FINISHED = "finished"
    #: Start routine raised (guest fault or Python error).
    FAULTED = "faulted"


class SimThread:
    """One guest thread.

    Guest code never touches these fields directly — it goes through
    :class:`repro.runtime.vm.GuestAPI`.  Detectors receive the tid in
    every event and may look threads up on the VM for reporting.
    """

    def __init__(
        self,
        tid: int,
        name: str,
        target: Callable,
        args: tuple,
        parent_tid: int | None,
    ) -> None:
        self.tid = tid
        self.name = name
        self.target = target
        self.args = args
        self.parent_tid = parent_tid
        self.state = ThreadState.NEW

        #: What the thread is blocked on — human-readable, used in
        #: deadlock reports ("t3 waiting on mutex m1").
        self.blocked_on: str = ""
        #: Threads blocked in ``join`` on this thread.
        self.join_waiters: list["SimThread"] = []
        #: Return value of the start routine (after FINISHED).
        self.result: object = None
        #: Exception that killed the thread (after FAULTED).
        self.error: BaseException | None = None

        #: Guest call stack, innermost last (reversed on snapshot).
        self.frames: list = []
        #: Number of traps this thread has performed.
        self.steps = 0

        # --- carrier plumbing (owned by the VM) -----------------------
        self.carrier: threading.Thread | None = None
        #: Set by the VM to release this thread's carrier for one step.
        self.resume = threading.Event()

    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the guest thread has not terminated."""
        return self.state not in (ThreadState.FINISHED, ThreadState.FAULTED)

    @property
    def runnable(self) -> bool:
        return self.state is ThreadState.RUNNABLE

    def snapshot_stack(self) -> "CallStack":
        """Interned snapshot of the guest call stack, innermost first."""
        from repro.runtime.events import Frame, intern_stack

        return intern_stack(
            tuple(Frame(fn, fi, ln) for fn, fi, ln in reversed(self.frames))
        )

    def __repr__(self) -> str:
        return f"SimThread(tid={self.tid}, name={self.name!r}, state={self.state.value})"
