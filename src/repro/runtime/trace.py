"""Execution-trace recording and post-mortem replay.

The paper (§4.5) contrasts *on-the-fly* checking (the detector runs
inside the VM, slowing the guest) with *offline* checking (the VM logs
the trace; analysis happens afterwards, at the price of storing the
trace: "offline techniques suffer from their need for large amount of
data").  Both modes are supported:

* :class:`TraceRecorder` is a detector hook that appends every event to
  an in-memory list (optionally spilling to a JSON-lines file).
* :class:`replay` feeds a recorded trace through any detector exactly as
  the VM would have, so the same detector object works in either mode —
  detectors are pure functions of the event stream by construction.

The recorder also measures what the paper warns about: the trace length
and an estimated footprint, so experiment E7 can report the on-the-fly
vs offline trade-off quantitatively.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.runtime.events import Event, event_from_dict

__all__ = ["TraceRecorder", "load_trace", "replay"]


class TraceRecorder:
    """Detector hook that records the full event stream.

    Register it on a VM like any detector::

        recorder = TraceRecorder()
        vm = VM(detectors=(recorder,))
        vm.run(program)
        replay(recorder.events, HelgrindDetector(...))
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.events: list[Event] = []
        self._path = Path(path) if path is not None else None
        self._file = None

    def handle(self, event: Event, vm) -> None:
        """VM hook: append (and optionally spill) one event."""
        self.events.append(event)
        if self._path is not None:
            if self._file is None:
                self._file = self._path.open("w", encoding="utf-8")
            json.dump(event.to_dict(), self._file, separators=(",", ":"))
            self._file.write("\n")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)

    @property
    def estimated_bytes(self) -> int:
        """Rough serialized size — the §4.5 "large amount of data" metric.

        Computed from the JSON encoding of a sample (first 100 events)
        scaled to the full length, so it stays cheap on long traces.
        """
        if not self.events:
            return 0
        sample = self.events[:100]
        sample_bytes = sum(
            len(json.dumps(e.to_dict(), separators=(",", ":"))) + 1 for e in sample
        )
        return int(sample_bytes / len(sample) * len(self.events))


def load_trace(path: str | Path) -> list[Event]:
    """Load a JSON-lines trace written by :class:`TraceRecorder`."""
    events: list[Event] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


def replay(events: Iterable[Event], *detectors, vm=None) -> None:
    """Feed a recorded event stream through detectors (post-mortem mode).

    ``vm`` is passed through to the hooks; detectors that only consult
    the event stream (all of ours — they keep their own shadow state)
    accept ``None``.
    """
    for event in events:
        for detector in detectors:
            detector.handle(event, vm)
