"""Execution-trace recording and post-mortem replay.

The paper (§4.5) contrasts *on-the-fly* checking (the detector runs
inside the VM, slowing the guest) with *offline* checking (the VM logs
the trace; analysis happens afterwards, at the price of storing the
trace: "offline techniques suffer from their need for large amount of
data").  Both modes are supported:

* :class:`TraceRecorder` is a detector hook that appends every event to
  an in-memory list and can spill to disk in either of two formats:
  human-greppable JSON-lines or the compact binary codec
  (:mod:`repro.runtime.codec`), selected explicitly or by file suffix
  (``.bin`` → binary).
* :func:`load_trace` streams events back from either format — it is a
  *generator*, so a multi-gigabyte trace never has to fit in memory as
  event objects.
* :func:`replay` feeds an event stream through any detector exactly as
  the VM would have, so the same detector object works in either mode —
  detectors are pure functions of the event stream by construction.
* :func:`replay_trace` is the fast path from *disk* to detectors: it
  decodes binary blocks with ``struct.iter_unpack`` and hands reusable
  flyweight events straight to pre-resolved per-type handlers, skipping
  whole blocks no detector subscribes to.

:class:`ReplayVM` reconstructs just enough VM state (the address-space
block table) from ``MemAlloc``/``MemFree`` events that detectors
rendering "Address ... inside a block of ..." report lines produce
byte-identical output offline and on-the-fly.

The recorder also measures what the paper warns about: the trace length
and its footprint — exact bytes written when spilling, an estimate
otherwise — so experiment E7 can report the on-the-fly vs offline
trade-off quantitatively.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.runtime import codec
from repro.runtime.events import (
    EVENT_TYPES,
    Event,
    MemAlloc,
    MemFree,
    event_from_dict,
)

__all__ = [
    "TraceRecorder",
    "ReplayVM",
    "load_trace",
    "replay",
    "replay_trace",
    "build_handler_table",
]

#: File suffixes that select the binary codec when no explicit format
#: is given.
_BINARY_SUFFIXES = {".bin", ".rptr"}


class TraceRecorder:
    """Detector hook that records the full event stream.

    Register it on a VM like any detector::

        recorder = TraceRecorder()
        vm = VM(detectors=(recorder,))
        vm.run(program)
        replay(recorder.events, HelgrindDetector(...))

    With a ``path`` the stream is *also* spilled to disk as it happens
    — ``format="jsonl"`` (the default for unknown suffixes) or
    ``format="binary"`` (the default for ``.bin``).  The file is opened
    eagerly, so a run that produces no events still leaves a valid,
    empty trace behind (for binary: just the magic header) instead of
    no file at all.
    """

    def __init__(
        self, path: str | Path | None = None, *, format: str | None = None
    ) -> None:
        self.events: list[Event] = []
        self._path = Path(path) if path is not None else None
        self._file = None
        self._writer: codec.TraceWriter | None = None
        self._jsonl_bytes = 0
        if format not in (None, "jsonl", "binary"):
            raise ValueError(f"unknown trace format: {format!r}")
        if format is None and self._path is not None:
            format = (
                "binary" if self._path.suffix in _BINARY_SUFFIXES else "jsonl"
            )
        self.format = format
        if self._path is not None:
            if self.format == "binary":
                self._file = self._path.open("wb")
                self._writer = codec.TraceWriter(self._file)
            else:
                self._file = self._path.open("w", encoding="utf-8")

    def handle(self, event: Event, vm) -> None:
        """VM hook: append (and optionally spill) one event."""
        self.events.append(event)
        if self._writer is not None:
            self._writer.write(event)
        elif self._file is not None:
            line = json.dumps(event.to_dict(), separators=(",", ":"))
            self._file.write(line)
            self._file.write("\n")
            self._jsonl_bytes += len(line) + 1

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()  # flush pending block; writer keeps the tally
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)

    @property
    def bytes_written(self) -> int:
        """Exact bytes spilled to disk so far (0 when not spilling)."""
        if self._writer is not None:
            return self._writer.bytes_written
        return self._jsonl_bytes

    #: Metric label under ``repro_detector_state``.
    telemetry_name = "trace_recorder"

    def telemetry_summary(self) -> dict[str, float]:
        """Codec gauges harvested by :mod:`repro.telemetry.probe` when a
        recorder rides an instrumented run (``stat`` labels of
        ``repro_detector_state``)."""
        summary: dict[str, float] = {
            "events_recorded": len(self.events),
            "bytes_written": self.bytes_written,
        }
        if self._writer is not None:
            for table, size in self._writer.table_sizes().items():
                summary[f"codec_{table}"] = size
        return summary

    @property
    def estimated_bytes(self) -> int:
        """Serialized size — the §4.5 "large amount of data" metric.

        *Exact* when spilling to a file (the writer counts every byte);
        otherwise estimated from the JSON encoding of a sample (first
        100 events) scaled to the full length, so it stays cheap on
        long in-memory traces.
        """
        if self._path is not None:
            return self.bytes_written
        if not self.events:
            return 0
        sample = self.events[:100]
        sample_bytes = sum(
            len(json.dumps(e.to_dict(), separators=(",", ":"))) + 1 for e in sample
        )
        return int(sample_bytes / len(sample) * len(self.events))


def load_trace(path: str | Path) -> Iterator[Event]:
    """Stream events from a trace file (JSON-lines or binary).

    A *generator*: events are decoded lazily, one at a time, so callers
    iterate traces far larger than memory.  The format is detected from
    the file content (binary traces start with the codec magic), not
    the suffix.  Call ``list(load_trace(p))`` where a list is needed.
    """
    path = Path(path)
    if codec.is_binary_trace(path):
        return codec.events_from_bytes(path.read_bytes())
    return _load_jsonl(path)


def _load_jsonl(path: Path) -> Iterator[Event]:
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield event_from_dict(json.loads(line))


class _ReplayBlock:
    """Minimal :class:`~repro.runtime.addrspace.MemoryBlock` stand-in
    reconstructed from trace events — just what report rendering needs
    (``describe``, ``contains``)."""

    __slots__ = (
        "block_id", "base", "size", "tag", "alloc_tid",
        "freed", "free_tid", "free_step",
    )

    def __init__(self, block_id, base, size, tag, alloc_tid) -> None:
        self.block_id = block_id
        self.base = base
        self.size = size
        self.tag = tag
        self.alloc_tid = alloc_tid
        self.freed = False
        self.free_tid = -1
        self.free_step = -1

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def offset_of(self, addr: int) -> int:
        return addr - self.base

    def describe(self, addr: int) -> str:
        state = "free'd" if self.freed else "alloc'd"
        return (
            f"Address {addr:#x} is {self.offset_of(addr)} words inside a block of "
            f"size {self.size} ({self.tag or 'untagged'}) {state} by thread {self.alloc_tid}"
        )


class _ReplayAddressSpace:
    """Block table rebuilt from ``MemAlloc``/``MemFree`` events."""

    def __init__(self) -> None:
        self._bases: list[int] = []
        self._blocks: list[_ReplayBlock] = []
        self._by_base: dict[int, _ReplayBlock] = {}

    def on_alloc(self, event) -> None:
        block = _ReplayBlock(
            event.block_id, event.addr, event.size, event.tag, event.tid
        )
        # The VM's allocator is monotone, so bases arrive sorted; keep
        # the bisect invariant even if a foreign trace violates that.
        if self._bases and event.addr < self._bases[-1]:
            idx = bisect_right(self._bases, event.addr)
            self._bases.insert(idx, event.addr)
            self._blocks.insert(idx, block)
        else:
            self._bases.append(event.addr)
            self._blocks.append(block)
        self._by_base[event.addr] = block

    def on_free(self, event) -> None:
        block = self._by_base.get(event.addr)
        if block is not None:
            block.freed = True
            block.free_tid = event.tid
            block.free_step = event.step

    def find_block(self, addr: int) -> _ReplayBlock | None:
        idx = bisect_right(self._bases, addr) - 1
        if idx < 0:
            return None
        block = self._blocks[idx]
        return block if block.contains(addr) else None


class ReplayVM:
    """Stand-in ``vm`` argument for offline analysis.

    Detector report rendering consults ``vm.memory.find_block(addr)``
    for the Figure-9 "Address ... inside a block ..." line; feeding the
    trace's own allocation events through this object reconstructs that
    lookup, so offline reports are *byte-identical* to on-the-fly ones.

    Use it as both the ``vm`` argument and a leading detector::

        rvm = ReplayVM()
        replay(events, rvm, detector, vm=rvm)

    (:func:`replay_trace` wires this up automatically.)
    """

    def __init__(self) -> None:
        self.memory = _ReplayAddressSpace()

    # Detector ABI: subscribe to the two allocation event types.

    def handler_for(self, event_type):
        if event_type is MemAlloc:
            return self._on_alloc
        if event_type is MemFree:
            return self._on_free
        return None

    def handle(self, event, vm=None) -> None:
        if type(event) is MemAlloc:
            self.memory.on_alloc(event)
        elif type(event) is MemFree:
            self.memory.on_free(event)

    def _on_alloc(self, event, vm=None) -> None:
        self.memory.on_alloc(event)

    def _on_free(self, event, vm=None) -> None:
        self.memory.on_free(event)


def replay(events: Iterable[Event], *detectors, vm=None) -> None:
    """Feed a recorded event stream through detectors (post-mortem mode).

    ``vm`` is passed through to the hooks; detectors that only consult
    the event stream (all of ours — they keep their own shadow state)
    accept ``None``.
    """
    for event in events:
        for detector in detectors:
            detector.handle(event, vm)


def build_handler_table(hooks, vm=None) -> list[tuple]:
    """Pre-resolve per-event-type handlers for :func:`codec.replay_blocks`.

    The VM's route-building, done once for a whole replay: one tuple of
    handler callables per :data:`EVENT_TYPES` index.  Hooks exposing
    ``handler_for`` subscribe selectively; legacy hooks (bare
    ``handle``) get everything.  Shared by :func:`replay_trace`, the
    streaming :class:`repro.api.Session`, and the sharded driver in
    :mod:`repro.detectors.parallel` (which additionally wraps the
    ``MemoryAccess`` entries with its page filter).
    """
    handler_table: list[tuple] = []
    for cls in EVENT_TYPES:
        fns = []
        for hook in hooks:
            resolver = getattr(hook, "handler_for", None)
            if resolver is not None:
                fn = resolver(cls)
            else:  # legacy hook: wants everything
                fn = hook.handle
            if fn is not None:
                fns.append(fn)
        handler_table.append(tuple(fns))
    return handler_table


def replay_trace(
    path: str | Path, *detectors, vm=None, stats: "codec.ReplayStats | None" = None
) -> int:
    """Replay a trace *file* through detectors; returns the event count.

    For binary traces this is the fast path: per-type handlers are
    resolved once, whole blocks without a subscriber are skipped
    undecoded, and each row is decoded into a reusable flyweight event
    (zero per-event allocation).  Handlers must not retain the event
    object beyond the call — all in-tree detectors copy out scalars and
    the (immutable, canonical) stack tuple.  JSON-lines traces fall
    back to :func:`load_trace` + :func:`replay` with real events.

    When ``vm`` is omitted a :class:`ReplayVM` is created and fed the
    trace's allocation events, so report "Address" lines match the
    original run byte-for-byte.  ``stats`` (a
    :class:`repro.runtime.codec.ReplayStats`) receives block-skip
    accounting for binary traces.
    """
    path = Path(path)
    if vm is None:
        vm = ReplayVM()
    hooks: tuple = (vm, *detectors) if isinstance(vm, ReplayVM) else detectors

    if not codec.is_binary_trace(path):
        count = 0
        for event in _load_jsonl(path):
            count += 1
            for hook in hooks:
                hook.handle(event, vm)
        return count

    data = path.read_bytes()
    handler_table = build_handler_table(hooks, vm)
    return codec.replay_blocks(data, handler_table, vm, stats=stats)
