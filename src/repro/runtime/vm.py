"""The cooperative virtual machine and the guest programming API.

This module is the substitution for Valgrind described in ``DESIGN.md``:
a serialising VM that traps every guest-visible operation, shows it to
the registered detector hooks, and then lets a seeded scheduler decide
which guest thread runs next.

Execution model
---------------
* Guest programs are Python callables ``fn(api, *args)`` receiving a
  :class:`GuestAPI`.  All interaction with the simulated world — memory,
  locks, threads, client requests — goes through the API.
* Each guest thread runs on its own host ``threading.Thread`` (the
  *carrier*), but a token-passing protocol guarantees **exactly one
  carrier executes at any instant**.  The host GIL therefore never
  influences interleaving; only the scheduler does.  This is the same
  arrangement as Valgrind's single-threaded core (paper §3.3: "the
  virtual machine in itself is single-threaded. Hence, adding more
  processors also will not help.").
* Every trap is a potential preemption point, so the scheduler can
  interleave guest threads at single-access granularity — finer than the
  real OS, which is what lets seed sweeps expose the §4.3 schedule-
  dependent false negatives on demand.

Races are *real* here: two guest threads doing ``load``/``store``
increments on the same word genuinely lose updates under the right
schedule, so tests can demonstrate the failure an undetected race causes,
not just the warning.

Detectors
---------
A detector is any object with ``handle(event, vm)``.  Detectors run
synchronously inside the trap (on-the-fly checking); recording the event
stream for later replay (post-mortem checking, §4.5) is just a detector
that appends to a list — see :mod:`repro.runtime.trace`.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro._util.ids import IdAllocator
from repro.errors import DeadlockError, GuestFault, StepLimitExceeded, VMError
from repro.runtime.addrspace import AddressSpace
from repro.runtime.events import (
    AccessKind,
    BarrierWait,
    CallStack,
    ClientRequest,
    CondSignal,
    CondWait,
    Event,
    Frame,
    LockAcquire,
    LockMode,
    LockRelease,
    MemAlloc,
    MemFree,
    MemoryAccess,
    QueueGet,
    QueuePut,
    SemPost,
    SemWait,
    ThreadCreate,
    ThreadFinish,
    ThreadJoin,
    intern_stack,
)
from repro.runtime.scheduler import RoundRobinScheduler, Scheduler
from repro.runtime.sync import (
    SimBarrier,
    SimCondVar,
    SimMutex,
    SimQueue,
    SimRWLock,
    SimSemaphore,
    _Waitable,
)
from repro.runtime.thread import SimThread, ThreadState

__all__ = ["VM", "GuestAPI", "VMStats"]


class _GuestAbort(BaseException):
    """Internal: unwinds a carrier when the VM aborts the run.

    Derives from ``BaseException`` so ordinary ``except Exception`` in
    guest code cannot swallow it.  Guest code must never catch
    ``BaseException``.
    """


class VMStats:
    """Run statistics, cheap enough to always collect.

    ``events`` counts emitted events by type name; ``switches`` counts
    *actual* carrier hand-offs (the expensive part — the VM skips the
    hand-off when no other thread is runnable); ``traps`` counts
    scheduling opportunities.

    Counting happens on the per-event fast path, so the tally is keyed
    by event *class* internally (one dict operation, no ``__name__``
    string lookup per event); :attr:`events` materialises the
    name-keyed view on demand.
    """

    __slots__ = ("_by_type", "traps", "switches", "threads_created", "max_live_threads")

    def __init__(self) -> None:
        self._by_type: dict[type, int] = {}
        self.traps = 0
        self.switches = 0
        self.threads_created = 0
        self.max_live_threads = 0

    def count(self, event: Event) -> None:
        cls = event.__class__
        by_type = self._by_type
        by_type[cls] = by_type.get(cls, 0) + 1

    @property
    def events(self) -> dict[str, int]:
        """Event counts by type name (materialised view)."""
        return {cls.__name__: n for cls, n in self._by_type.items()}

    @property
    def total_events(self) -> int:
        return sum(self._by_type.values())


class VM:
    """The cooperative virtual machine.

    Parameters
    ----------
    scheduler:
        Interleaving policy; defaults to :class:`RoundRobinScheduler`.
    step_limit:
        Abort the run with :class:`StepLimitExceeded` after this many
        emitted events (a livelock backstop).
    detectors:
        Initial detector hooks; more can be added with
        :meth:`add_detector` before :meth:`run`.

    A ``VM`` instance performs exactly one :meth:`run`.
    """

    def __init__(
        self,
        *,
        scheduler: Scheduler | None = None,
        step_limit: int = 2_000_000,
        detectors: tuple = (),
        telemetry=None,
    ) -> None:
        self.scheduler = scheduler or RoundRobinScheduler()
        self.step_limit = step_limit
        self.memory = AddressSpace()
        self.stats = VMStats()
        #: Logical clock: one tick per emitted event.
        self.clock = 0
        self.threads: dict[int, SimThread] = {}

        self._hooks: list = list(detectors)
        #: Event-type → tuple of subscribed handler callables.  Built
        #: lazily per event type on first emission: detectors exposing
        #: the dispatch-table ABI (``handler_for(event_type)``, see
        #: :mod:`repro.detectors.dispatch`) subscribe only the handlers
        #: they registered for that type — detectors that don't care
        #: about an event type are skipped entirely, with zero per-event
        #: ``isinstance`` tests.  Plain detectors (anything with only a
        #: ``handle`` method, e.g. a trace recorder) subscribe to every
        #: type, preserving the original ABI.
        self._dispatch: dict[type, tuple] = {}
        #: Optional observability hook (:class:`repro.telemetry.probe
        #: .Telemetry`).  Consulted only at route-*build* time (once per
        #: event type per run), so a ``None`` here keeps the per-event
        #: emit path identical to the uninstrumented fast path — the
        #: telemetry subsystem's zero-overhead-when-disabled guarantee.
        self._telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self._tid_ids = IdAllocator()
        self._lock_ids = IdAllocator()
        self._cond_ids = IdAllocator()
        self._sem_ids = IdAllocator()
        self._barrier_ids = IdAllocator()
        self._queue_ids = IdAllocator()

        self._control = threading.Event()
        #: Index of currently-runnable threads (tid -> thread).  The
        #: scheduler loop and the _switch fast path consult this instead
        #: of scanning every thread ever created — on a server workload
        #: most threads are finished workers, so the index keeps each
        #: trap O(live runnable) instead of O(all threads).
        self._runnable: dict[int, SimThread] = {}
        self._current: SimThread | None = None
        self._aborting = False
        self._started = False
        self._finished = False
        self._pending_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    def add_detector(self, hook) -> None:
        """Register a detector (any object with ``handle(event, vm)``)."""
        if self._started:
            raise VMError("cannot add detectors after the run started")
        self._hooks.append(hook)
        self._dispatch.clear()  # routing tables are now stale

    def run(self, main: Callable, *args, main_name: str = "main"):
        """Execute ``main(api, *args)`` to completion and return its result.

        Returns when *every* guest thread has finished (threads not
        joined by the guest keep running after ``main`` returns, like a
        process whose initial thread called ``pthread_exit``).

        Raises
        ------
        GuestFault
            A guest thread performed an illegal operation.
        DeadlockError
            All live guest threads are blocked.
        StepLimitExceeded
            The event budget ran out.
        """
        if self._started:
            raise VMError("a VM instance can only run once")
        self._started = True
        main_thread = self._make_thread(main, args, name=main_name, parent=None)
        self._set_runnable(main_thread)
        self._start_carrier(main_thread)
        try:
            self._scheduler_loop()
        finally:
            self._reap_carriers()
        self._finished = True
        if main_thread.error is not None:  # pragma: no cover - re-raise path
            raise main_thread.error
        return main_thread.result

    @property
    def finished(self) -> bool:
        return self._finished

    def live_threads(self) -> list[SimThread]:
        return [t for t in self.threads.values() if t.alive]

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------

    def emit(self, event: Event) -> None:
        """Show ``event`` to every subscribed detector and advance the clock.

        Routing is per event *type*: the first event of each type builds
        the tuple of interested handlers once, and every later event of
        that type is a dict lookup plus direct calls — no ``isinstance``
        cascade runs anywhere on the hot path.
        """
        self.clock += 1
        etype = event.__class__
        # Inlined VMStats.count — one dict op on the per-event path.
        by_type = self.stats._by_type
        by_type[etype] = by_type.get(etype, 0) + 1
        handlers = self._dispatch.get(etype)
        if handlers is None:
            handlers = self._build_routes(etype)
        for fn in handlers:
            fn(event, self)
        if self.clock >= self.step_limit:
            raise StepLimitExceeded(self.step_limit)

    def _build_routes(self, etype: type) -> tuple:
        """Resolve which hooks want ``etype`` (cached in ``_dispatch``).

        When a telemetry object is attached, every resolved handler is
        wrapped in its timing closure *here* — once per event type —
        so the per-event path never tests whether telemetry is on.
        """
        telemetry = self._telemetry
        handlers = []
        for hook in self._hooks:
            resolver = getattr(hook, "handler_for", None)
            if resolver is None:
                fn = hook.handle  # legacy ABI: sees everything
            else:
                fn = resolver(etype)
            if fn is not None:
                if telemetry is not None:
                    fn = telemetry.wrap_handler(hook, etype, fn)
                handlers.append(fn)
        routes = tuple(handlers)
        self._dispatch[etype] = routes
        return routes

    # ------------------------------------------------------------------
    # Scheduler loop (runs on the host thread that called run())
    # ------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        """Quiescence handler.

        Carriers hand control *directly* to each other (one Event
        operation per switch); this host-side loop only runs when the
        guest world goes quiet — at start, when the last runnable thread
        blocked or finished, and when a carrier reports an error — so it
        can dispatch, detect deadlock, or propagate the failure.
        """
        while True:
            if self._pending_error is not None:
                error = self._pending_error
                self._pending_error = None
                self._abort_carriers()
                raise error
            if not self._runnable:
                blocked = [t for t in self.threads.values() if t.state is ThreadState.BLOCKED]
                if blocked:
                    self._abort_carriers()
                    raise DeadlockError([(t.tid, t.blocked_on) for t in blocked])
                return  # all threads finished
            chosen = self._choose(None)
            self.stats.switches += 1
            self._current = chosen
            self._control.clear()
            chosen.resume.set()
            self._control.wait()

    def _choose(self, current: SimThread | None) -> SimThread:
        """Consult the scheduling policy over the runnable set."""
        runnable = sorted(self._runnable.values(), key=lambda t: t.tid)
        return self.scheduler.pick(runnable, current)

    def _abort_carriers(self) -> None:
        """Wake every live carrier so it unwinds via :class:`_GuestAbort`."""
        self._aborting = True
        for thread in self.threads.values():
            if thread.alive:
                thread.resume.set()
        self._reap_carriers()

    def _reap_carriers(self) -> None:
        for thread in self.threads.values():
            carrier = thread.carrier
            if carrier is not None and carrier.is_alive():
                carrier.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Thread plumbing (called from carriers via GuestAPI)
    # ------------------------------------------------------------------

    def _make_thread(
        self, target: Callable, args: tuple, *, name: str | None, parent: int | None
    ) -> SimThread:
        tid = self._tid_ids.next()
        thread = SimThread(
            tid=tid,
            name=name or f"thread-{tid}",
            target=target,
            args=args,
            parent_tid=parent,
        )
        self.threads[tid] = thread
        self.stats.threads_created += 1
        live = sum(1 for t in self.threads.values() if t.alive)
        self.stats.max_live_threads = max(self.stats.max_live_threads, live)
        return thread

    def _start_carrier(self, thread: SimThread) -> None:
        carrier = threading.Thread(
            target=self._carrier_main,
            args=(thread,),
            name=f"carrier-{thread.tid}-{thread.name}",
            daemon=True,
        )
        thread.carrier = carrier
        carrier.start()

    def _carrier_main(self, thread: SimThread) -> None:
        api = GuestAPI(self, thread)
        try:
            self._wait_turn(thread)  # block until first scheduled
            thread.result = thread.target(api, *thread.args)
            self._set_not_runnable(thread, ThreadState.FINISHED)
            api._emit(ThreadFinish(self.clock, thread.tid, stack=thread.snapshot_stack()))
        except _GuestAbort:
            return  # VM is tearing down; exit silently, do not touch control
        except BaseException as exc:  # noqa: BLE001 - any guest failure halts the VM
            self._set_not_runnable(thread, ThreadState.FAULTED)
            thread.error = exc
            self._pending_error = exc
            self._wake_joiners(thread)
            self._control.set()  # the loop aborts every carrier and re-raises
            return
        self._wake_joiners(thread)
        # Hand control onward: directly to a runnable carrier, or to the
        # quiescence loop if the guest world just went quiet.
        if self._runnable:
            chosen = self._choose(None)
            self.stats.switches += 1
            self._current = chosen
            chosen.resume.set()
        else:
            self._control.set()

    def _wake_joiners(self, thread: SimThread) -> None:
        for waiter in thread.join_waiters:
            self._wake(waiter)
        thread.join_waiters.clear()

    def _wait_turn(self, thread: SimThread) -> None:
        """Block this carrier until the scheduler picks ``thread``."""
        thread.resume.wait()
        thread.resume.clear()
        if self._aborting:
            raise _GuestAbort()

    def _set_runnable(self, thread: SimThread) -> None:
        thread.state = ThreadState.RUNNABLE
        self._runnable[thread.tid] = thread

    def _set_not_runnable(self, thread: SimThread, state: ThreadState) -> None:
        thread.state = state
        self._runnable.pop(thread.tid, None)

    def _switch(self, thread: SimThread) -> None:
        """Scheduling decision point for a still-runnable thread."""
        self.stats.traps += 1
        # Fast path: if no other thread could run, a hand-off would be a
        # no-op round trip through the host scheduler — skip it.  Blocked
        # threads only become runnable through actions of *running*
        # threads, so skipping cannot starve anyone.
        runnable = self._runnable
        if len(runnable) == 1 and thread.tid in runnable:
            return
        chosen = self._choose(thread)
        if chosen is thread:
            return  # the policy kept us running: no host switch at all
        self.stats.switches += 1
        self._current = chosen
        chosen.resume.set()
        self._wait_turn(thread)

    def _park_and_dispatch(self, thread: SimThread) -> None:
        """``thread`` just became non-runnable: hand control onward.

        Directly to another runnable carrier if one exists, otherwise to
        the quiescence loop (which will detect deadlock or completion).
        """
        if self._runnable:
            chosen = self._choose(thread)
            self.stats.switches += 1
            self._current = chosen
            chosen.resume.set()
        else:
            self._control.set()
        self._wait_turn(thread)

    def _block(self, thread: SimThread, reason: str, waitable: _Waitable) -> None:
        """Park ``thread`` on ``waitable`` until another thread wakes it."""
        self._set_not_runnable(thread, ThreadState.BLOCKED)
        thread.blocked_on = reason
        waitable.add_waiter(thread)
        self.stats.traps += 1
        self._park_and_dispatch(thread)

    def _wake(self, thread: SimThread) -> None:
        """Mark a blocked thread runnable (the scheduler resumes it later)."""
        if thread.state is ThreadState.BLOCKED:
            self._set_runnable(thread)
            thread.blocked_on = ""

    def _wake_all(self, waitable: _Waitable) -> None:
        """Wake every waiter on ``waitable`` (Mesa semantics: they re-check)."""
        waiters, waitable.waiters = waitable.waiters, []
        for waiter in waiters:
            self._wake(waiter)


class GuestAPI:
    """The system-call surface of the simulated world, bound to one thread.

    Every method that touches shared state emits events and offers the
    scheduler a preemption point, so any two API calls by different
    threads may interleave — except the ``atomic_*`` operations, whose
    read and write are emitted back-to-back with no scheduling point
    between them (that is what the bus lock buys the real hardware).
    """

    __slots__ = ("vm", "thread", "_stack_cache")

    def __init__(self, vm: VM, thread: SimThread) -> None:
        self.vm = vm
        self.thread = thread
        self._stack_cache: CallStack | None = ()

    # ------------------------------------------------------------------
    # Identity & call stack
    # ------------------------------------------------------------------

    @property
    def tid(self) -> int:
        return self.thread.tid

    def frame(self, function: str, file: str = "<guest>", line: int = 0) -> "_FrameCtx":
        """Context manager pushing a guest stack frame.

        Warnings report the frame stack active at the access, so guest
        code wraps logical functions in ``with api.frame(...):`` blocks —
        the analogue of the debug symbols the paper says Helgrind needs
        "for convenience" (§3.2).
        """
        return _FrameCtx(self, function, file, line)

    def at(self, line: int) -> None:
        """Set the innermost frame's current line (a cheap site marker)."""
        frames = self.thread.frames
        if frames:
            frames[-1][2] = line
            self._stack_cache = None

    def _snap(self) -> CallStack:
        """Interned snapshot of the current guest call stack.

        Identical stacks — the overwhelmingly common case on a hot loop —
        are one canonical object (Valgrind's ExeContext interning), so
        report-location deduplication and trace comparison collapse to
        dictionary hits on a shared tuple instead of building and
        comparing fresh tuples per event.
        """
        cache = self._stack_cache
        if cache is None:
            cache = intern_stack(
                tuple(Frame(fn, fi, ln) for fn, fi, ln in reversed(self.thread.frames))
            )
            self._stack_cache = cache
        return cache

    # ------------------------------------------------------------------
    # Internal emission helpers
    # ------------------------------------------------------------------

    def _emit(self, event: Event) -> None:
        self.thread.steps += 1
        self.vm.emit(event)

    def _emit_and_switch(self, event: Event) -> None:
        # ``_emit`` inlined: this runs once per guest operation.
        thread = self.thread
        thread.steps += 1
        vm = self.vm
        vm.emit(event)
        vm._switch(thread)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def malloc(self, size: int, tag: str = "") -> int:
        """Allocate ``size`` words; returns the base address."""
        vm = self.vm
        block = vm.memory.alloc(
            size, tag=tag, tid=self.tid, step=vm.clock, stack=self._snap()
        )
        self._emit_and_switch(
            MemAlloc(
                vm.clock,
                self.tid,
                stack=self._snap(),
                addr=block.base,
                size=size,
                block_id=block.block_id,
                tag=tag,
            )
        )
        return block.base

    def free(self, addr: int) -> None:
        """Release the block at ``addr`` (must be the allocation base)."""
        vm = self.vm
        block = vm.memory.free(addr, tid=self.tid, step=vm.clock, stack=self._snap())
        self._emit_and_switch(
            MemFree(
                vm.clock,
                self.tid,
                stack=self._snap(),
                addr=addr,
                size=block.size,
                block_id=block.block_id,
            )
        )

    def load(self, addr: int, *, locked: bool = False) -> object:
        """Load one word.  ``locked`` marks a ``LOCK``-prefixed read."""
        vm = self.vm
        value, block = vm.memory.load_block(addr, tid=self.thread.tid)
        self._emit_and_switch(
            MemoryAccess(
                vm.clock,
                self.thread.tid,
                stack=self._snap(),
                addr=addr,
                kind=AccessKind.READ,
                bus_locked=locked,
                block_id=block.block_id,
            )
        )
        return value

    def store(self, addr: int, value: object, *, locked: bool = False) -> None:
        """Store one word.  ``locked`` marks a ``LOCK``-prefixed write."""
        vm = self.vm
        block = vm.memory.store_block(addr, value, tid=self.thread.tid)
        self._emit_and_switch(
            MemoryAccess(
                vm.clock,
                self.thread.tid,
                stack=self._snap(),
                addr=addr,
                kind=AccessKind.WRITE,
                bus_locked=locked,
                block_id=block.block_id,
            )
        )

    def atomic_add(self, addr: int, delta: int) -> int:
        """Bus-locked fetch-and-add; returns the *old* value.

        Emits a locked read then a locked write with **no** scheduling
        point in between — the pair is indivisible, exactly like an x86
        ``lock add``.  This is the operation behind libstdc++'s string
        reference counter (paper Figure 8).
        """
        vm = self.vm
        old, block = vm.memory.load_block(addr, tid=self.tid)
        if not isinstance(old, int):
            raise GuestFault(
                f"atomic_add on non-integer word at {addr:#x} ({old!r})", tid=self.tid
            )
        block_id = block.block_id
        stack = self._snap()
        self._emit(
            MemoryAccess(
                vm.clock, self.tid, stack=stack, addr=addr,
                kind=AccessKind.READ, bus_locked=True, block_id=block_id,
            )
        )
        vm.memory.store(addr, old + delta, tid=self.tid)
        self._emit_and_switch(
            MemoryAccess(
                vm.clock, self.tid, stack=stack, addr=addr,
                kind=AccessKind.WRITE, bus_locked=True, block_id=block_id,
            )
        )
        return old

    def atomic_cas(self, addr: int, expected: object, new: object) -> bool:
        """Bus-locked compare-and-swap; returns True on success.

        A failed CAS emits only the locked read (no write happened).
        """
        vm = self.vm
        current, block = vm.memory.load_block(addr, tid=self.tid)
        block_id = block.block_id
        stack = self._snap()
        self._emit(
            MemoryAccess(
                vm.clock, self.tid, stack=stack, addr=addr,
                kind=AccessKind.READ, bus_locked=True, block_id=block_id,
            )
        )
        if current != expected:
            self.vm._switch(self.thread)
            return False
        vm.memory.store(addr, new, tid=self.tid)
        self._emit_and_switch(
            MemoryAccess(
                vm.clock, self.tid, stack=stack, addr=addr,
                kind=AccessKind.WRITE, bus_locked=True, block_id=block_id,
            )
        )
        return True

    # ------------------------------------------------------------------
    # Object factories
    # ------------------------------------------------------------------

    def mutex(self, name: str = "") -> SimMutex:
        return SimMutex(self.vm._lock_ids.next(), name)

    def rwlock(self, name: str = "") -> SimRWLock:
        return SimRWLock(self.vm._lock_ids.next(), name)

    def condvar(self, name: str = "") -> SimCondVar:
        return SimCondVar(self.vm._cond_ids.next(), name)

    def semaphore(self, initial: int = 0, name: str = "") -> SimSemaphore:
        return SimSemaphore(self.vm._sem_ids.next(), initial, name)

    def barrier(self, parties: int, name: str = "") -> SimBarrier:
        return SimBarrier(self.vm._barrier_ids.next(), parties, name)

    def queue(self, maxsize: int | None = None, name: str = "") -> SimQueue:
        return SimQueue(self.vm._queue_ids.next(), maxsize, name)

    # ------------------------------------------------------------------
    # Mutex
    # ------------------------------------------------------------------

    def lock(self, mutex: SimMutex) -> None:
        """``pthread_mutex_lock``; blocks while another thread holds it."""
        thread = self.thread
        if mutex.owner_tid == thread.tid:
            raise GuestFault(f"relock of non-recursive mutex {mutex.name}", tid=self.tid)
        contended = False
        while mutex.held:
            contended = True
            self.vm._block(thread, f"mutex {mutex.name}", mutex)
        mutex.owner_tid = thread.tid
        mutex.acquisitions += 1
        self._emit_and_switch(
            LockAcquire(
                self.vm.clock, self.tid, stack=self._snap(),
                lock_id=mutex.lock_id, mode=LockMode.EXCLUSIVE, contended=contended,
            )
        )

    def trylock(self, mutex: SimMutex) -> bool:
        """``pthread_mutex_trylock``; never blocks."""
        if mutex.held:
            self.vm._switch(self.thread)
            return False
        mutex.owner_tid = self.tid
        mutex.acquisitions += 1
        self._emit_and_switch(
            LockAcquire(
                self.vm.clock, self.tid, stack=self._snap(),
                lock_id=mutex.lock_id, mode=LockMode.EXCLUSIVE,
            )
        )
        return True

    def unlock(self, mutex: SimMutex) -> None:
        """``pthread_mutex_unlock``; faults if this thread is not the owner."""
        if mutex.owner_tid != self.tid:
            holder = f"t{mutex.owner_tid}" if mutex.held else "nobody"
            raise GuestFault(
                f"unlock of mutex {mutex.name} held by {holder}", tid=self.tid
            )
        mutex.owner_tid = None
        self.vm._wake_all(mutex)
        self._emit_and_switch(
            LockRelease(
                self.vm.clock, self.tid, stack=self._snap(),
                lock_id=mutex.lock_id, mode=LockMode.EXCLUSIVE,
            )
        )

    # ------------------------------------------------------------------
    # Read-write lock
    # ------------------------------------------------------------------

    def rdlock(self, rw: SimRWLock) -> None:
        """``pthread_rwlock_rdlock``."""
        thread = self.thread
        if rw.mode_held_by(self.tid) is not None:
            raise GuestFault(f"re-acquire of rwlock {rw.name}", tid=self.tid)
        contended = False
        while not rw.can_read():
            contended = True
            self.vm._block(thread, f"rwlock {rw.name} (read)", rw)
        rw.reader_tids.add(self.tid)
        self._emit_and_switch(
            LockAcquire(
                self.vm.clock, self.tid, stack=self._snap(),
                lock_id=rw.lock_id, mode=LockMode.READ, contended=contended,
            )
        )

    def wrlock(self, rw: SimRWLock) -> None:
        """``pthread_rwlock_wrlock``."""
        thread = self.thread
        if rw.mode_held_by(self.tid) is not None:
            raise GuestFault(f"re-acquire of rwlock {rw.name}", tid=self.tid)
        contended = False
        while not rw.can_write():
            contended = True
            self.vm._block(thread, f"rwlock {rw.name} (write)", rw)
        rw.writer_tid = self.tid
        self._emit_and_switch(
            LockAcquire(
                self.vm.clock, self.tid, stack=self._snap(),
                lock_id=rw.lock_id, mode=LockMode.WRITE, contended=contended,
            )
        )

    def rw_unlock(self, rw: SimRWLock) -> None:
        """``pthread_rwlock_unlock`` (whichever mode this thread holds)."""
        mode = rw.mode_held_by(self.tid)
        if mode is None:
            raise GuestFault(f"unlock of rwlock {rw.name} not held", tid=self.tid)
        if mode == "write":
            rw.writer_tid = None
            released = LockMode.WRITE
        else:
            rw.reader_tids.discard(self.tid)
            released = LockMode.READ
        self.vm._wake_all(rw)
        self._emit_and_switch(
            LockRelease(
                self.vm.clock, self.tid, stack=self._snap(),
                lock_id=rw.lock_id, mode=released,
            )
        )

    # ------------------------------------------------------------------
    # Condition variables
    # ------------------------------------------------------------------

    def cond_wait(self, cond: SimCondVar, mutex: SimMutex) -> None:
        """``pthread_cond_wait``: release, sleep until signalled, reacquire.

        The mutex release and reacquisition emit ordinary lock events —
        that is all the lock-set algorithm ever sees of a wait, which is
        why Figure 11's post/wait ordering is invisible to it.
        """
        thread = self.thread
        if mutex.owner_tid != self.tid:
            raise GuestFault(
                f"cond_wait on {cond.name} without holding {mutex.name}", tid=self.tid
            )
        self._emit(
            CondWait(
                self.vm.clock, self.tid, stack=self._snap(),
                cond_id=cond.cond_id, mutex_id=mutex.lock_id, phase="enter",
            )
        )
        # Atomically (w.r.t. guest interleaving) release the mutex and
        # register on the condition before any other thread can run.
        mutex.owner_tid = None
        self.vm._wake_all(mutex)
        self._emit(
            LockRelease(
                self.vm.clock, self.tid, stack=self._snap(),
                lock_id=mutex.lock_id, mode=LockMode.EXCLUSIVE,
            )
        )
        self.vm._block(thread, f"condvar {cond.name}", cond)
        cond.signalled.discard(self.tid)
        # Reacquire (contending like any other locker).
        contended = False
        while mutex.held:
            contended = True
            self.vm._block(thread, f"mutex {mutex.name}", mutex)
        mutex.owner_tid = self.tid
        mutex.acquisitions += 1
        self._emit(
            LockAcquire(
                self.vm.clock, self.tid, stack=self._snap(),
                lock_id=mutex.lock_id, mode=LockMode.EXCLUSIVE, contended=contended,
            )
        )
        self._emit_and_switch(
            CondWait(
                self.vm.clock, self.tid, stack=self._snap(),
                cond_id=cond.cond_id, mutex_id=mutex.lock_id, phase="leave",
            )
        )

    def cond_signal(self, cond: SimCondVar) -> None:
        """``pthread_cond_signal``: wake one waiter (lost if none)."""
        self._signal(cond, broadcast=False)

    def cond_broadcast(self, cond: SimCondVar) -> None:
        """``pthread_cond_broadcast``: wake every waiter."""
        self._signal(cond, broadcast=True)

    def _signal(self, cond: SimCondVar, *, broadcast: bool) -> None:
        woken = cond.waiters if broadcast else cond.waiters[:1]
        for waiter in list(woken):
            cond.remove_waiter(waiter)
            cond.signalled.add(waiter.tid)
            self.vm._wake(waiter)
        self._emit_and_switch(
            CondSignal(
                self.vm.clock, self.tid, stack=self._snap(),
                cond_id=cond.cond_id, broadcast=broadcast,
            )
        )

    # ------------------------------------------------------------------
    # Semaphores
    # ------------------------------------------------------------------

    def sem_post(self, sem: SimSemaphore) -> None:
        """``sem_post`` (V)."""
        sem.count += 1
        self.vm._wake_all(sem)
        self._emit_and_switch(
            SemPost(self.vm.clock, self.tid, stack=self._snap(), sem_id=sem.sem_id)
        )

    def sem_wait(self, sem: SimSemaphore) -> None:
        """``sem_wait`` (P); blocks while the count is zero."""
        thread = self.thread
        while sem.count == 0:
            self.vm._block(thread, f"semaphore {sem.name}", sem)
        sem.count -= 1
        self._emit_and_switch(
            SemWait(self.vm.clock, self.tid, stack=self._snap(), sem_id=sem.sem_id)
        )

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------

    def barrier_wait(self, barrier: SimBarrier) -> bool:
        """``pthread_barrier_wait``; True for the releasing arrival."""
        thread = self.thread
        barrier.arrived += 1
        generation = barrier.generation
        self._emit(
            BarrierWait(
                self.vm.clock, self.tid, stack=self._snap(),
                barrier_id=barrier.barrier_id, generation=generation,
                phase="arrive",
            )
        )
        releaser = barrier.arrived == barrier.parties
        if releaser:
            barrier.arrived = 0
            barrier.generation += 1
            self.vm._wake_all(barrier)
        else:
            while barrier.generation == generation:
                self.vm._block(thread, f"barrier {barrier.name}", barrier)
        self._emit_and_switch(
            BarrierWait(
                self.vm.clock, self.tid, stack=self._snap(),
                barrier_id=barrier.barrier_id, generation=generation,
                phase="leave",
            )
        )
        return releaser

    # ------------------------------------------------------------------
    # Message queue (the Figure-11 hand-off primitive)
    # ------------------------------------------------------------------

    def put(self, queue: SimQueue, payload: object) -> int:
        """Deposit ``payload``; blocks while a bounded queue is full.

        Returns the message id pairing this put with its eventual get.
        """
        thread = self.thread
        while queue.full:
            self.vm._block(thread, f"queue {queue.name} (full)", queue)
        msg_id = queue.push(payload)
        self.vm._wake_all(queue)
        self._emit_and_switch(
            QueuePut(
                self.vm.clock, self.tid, stack=self._snap(),
                queue_id=queue.queue_id, msg_id=msg_id,
            )
        )
        return msg_id

    def get(self, queue: SimQueue) -> object:
        """Remove and return the oldest message; blocks while empty."""
        thread = self.thread
        while queue.empty:
            self.vm._block(thread, f"queue {queue.name} (empty)", queue)
        msg_id, payload = queue.pop()
        self.vm._wake_all(queue)
        self._emit_and_switch(
            QueueGet(
                self.vm.clock, self.tid, stack=self._snap(),
                queue_id=queue.queue_id, msg_id=msg_id,
            )
        )
        return payload

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def spawn(self, fn: Callable, *args, name: str | None = None) -> SimThread:
        """``pthread_create``: start ``fn(api, *args)`` on a new guest thread."""
        vm = self.vm
        child = vm._make_thread(fn, args, name=name, parent=self.tid)
        vm._set_runnable(child)
        vm._start_carrier(child)
        self._emit_and_switch(
            ThreadCreate(
                vm.clock, self.tid, stack=self._snap(), child_tid=child.tid
            )
        )
        return child

    def join(self, target: SimThread) -> object:
        """``pthread_join``: wait for ``target`` and return its result."""
        thread = self.thread
        if target is thread:
            raise GuestFault("thread join on itself", tid=self.tid)
        while target.alive:
            self.vm._set_not_runnable(thread, ThreadState.BLOCKED)
            thread.blocked_on = f"join t{target.tid}"
            target.join_waiters.append(thread)
            self.vm.stats.traps += 1
            self.vm._park_and_dispatch(thread)
        self._emit_and_switch(
            ThreadJoin(
                self.vm.clock, self.tid, stack=self._snap(), joined_tid=target.tid
            )
        )
        return target.result

    def yield_(self) -> None:
        """Voluntary preemption point (``sched_yield``)."""
        self.vm._switch(self.thread)

    def sleep(self, ticks: int) -> None:
        """Yield ``ticks`` times (there is no wall clock in the guest)."""
        for _ in range(ticks):
            self.vm._switch(self.thread)

    # ------------------------------------------------------------------
    # Client requests (Valgrind's guest → tool channel)
    # ------------------------------------------------------------------

    def hg_destruct(self, addr: int, size: int) -> None:
        """``VALGRIND_HG_DESTRUCT(addr, size)`` — Figure 4's annotation.

        Tells race detectors the range is about to be destroyed and is
        now exclusively owned by the calling thread.  A no-op when no
        detector is registered (cheap enough for production builds).
        """
        self._client_request("hg_destruct", addr, size)

    def hg_clean(self, addr: int, size: int) -> None:
        """Forget all detector state for the range (allocator recycling)."""
        self._client_request("hg_clean", addr, size)

    def benign_race(self, addr: int, size: int) -> None:
        """Mark the range as intentionally racy; suppress reports on it."""
        self._client_request("benign_race", addr, size)

    def atomic_region(self, name: str = "atomic") -> "_AtomicRegionCtx":
        """Declare that the enclosed block is intended to be atomic.

        The Atomizer-style checker (:mod:`repro.detectors.atomizer`)
        verifies the intent via Lipton reduction; every other detector
        ignores the markers.  No-op without detectors, like all client
        requests.
        """
        return _AtomicRegionCtx(self, name)

    def _client_request(self, request: str, addr: int, size: int) -> None:
        if size <= 0:
            raise GuestFault(
                f"client request {request} with non-positive size {size}", tid=self.tid
            )
        self._emit_and_switch(
            ClientRequest(
                self.vm.clock, self.tid, stack=self._snap(),
                request=request, addr=addr, size=size,
            )
        )


class _AtomicRegionCtx:
    """Context manager for :meth:`GuestAPI.atomic_region`."""

    __slots__ = ("_api", "_frame")

    def __init__(self, api: GuestAPI, name: str) -> None:
        self._api = api
        self._frame = _FrameCtx(api, f"atomic:{name}", "<atomic-region>", 0)

    def __enter__(self) -> None:
        self._frame.__enter__()
        self._api._client_request("atomic_begin", 0, 1)

    def __exit__(self, *exc) -> None:
        self._api._client_request("atomic_end", 0, 1)
        self._frame.__exit__(*exc)
        return None


class _FrameCtx:
    """Context manager for :meth:`GuestAPI.frame`."""

    __slots__ = ("_api", "_entry")

    def __init__(self, api: GuestAPI, function: str, file: str, line: int) -> None:
        self._api = api
        self._entry = [function, file, line]

    def __enter__(self) -> None:
        self._api.thread.frames.append(self._entry)
        self._api._stack_cache = None

    def __exit__(self, *exc) -> None:
        popped = self._api.thread.frames.pop()
        assert popped is self._entry, "unbalanced guest frame push/pop"
        self._api._stack_cache = None
        return None
