"""The streaming analysis service: always-on, multi-session fault
detection over a socket.

The paper runs its checker as a batch job over one recorded execution;
the service turns the same pipeline into the always-on monitor shape of
production race detectors: ``repro serve`` listens on a unix socket or
TCP port, any number of clients open *analysis sessions* and stream
RPTR v1 event blocks (live from a running harness case, or from a
recorded ``.rptr`` file), and each session feeds an isolated detector
pipeline whose report — byte-identical to the offline ``repro trace
replay`` — is fetched over the same connection.

Modules
-------
:mod:`~repro.service.protocol`
    Frame format and conversation rules (credit-based backpressure).
:mod:`~repro.service.session`
    Per-client sessions: bounded ingest queue + `repro.api.Session`.
:mod:`~repro.service.server`
    Accept/reader/worker/housekeeping threads, graceful drain.
:mod:`~repro.service.shard`
    Multi-process mode: acceptor + N shared-nothing worker processes,
    consistent-hash session routing, supervisor restarts, merged stats.
:mod:`~repro.service.checkpoint`
    Atomic session checkpoints for kill-and-resume (and, sharded, the
    failover unit a restarted worker restores sessions from).
:mod:`~repro.service.client`
    ``repro client`` plumbing: credit ledger, redirect following,
    file/live streaming.
:mod:`~repro.service.admin`
    The HTTP admin plane (``--admin-port``): ``/metrics``, ``/healthz``,
    ``/readyz``, ``/sessions``, ``/workers``.

See ``docs/SERVICE.md`` for the protocol walk-through and operational
guide, and ``docs/OBSERVABILITY.md`` for the ``repro_service_*`` metric
catalogue.
"""

from repro.service.admin import AdminServer
from repro.service.checkpoint import Checkpoint, CheckpointStore
from repro.service.client import AnalysisClient, ServiceError, fetch_report
from repro.service.server import AnalysisServer
from repro.service.session import ServiceSession
from repro.service.shard import HashRing, ShardedAnalysisServer

__all__ = [
    "AdminServer",
    "AnalysisClient",
    "AnalysisServer",
    "Checkpoint",
    "CheckpointStore",
    "HashRing",
    "ServiceError",
    "ServiceSession",
    "ShardedAnalysisServer",
    "fetch_report",
]
