"""The HTTP admin plane (``repro serve --admin-port``).

A dependency-free (stdlib :mod:`http.server`) operations listener
owned by the acceptor process.  It answers the questions an operator
asks a long-lived analysis service — *is it up, is it draining, what
is it analysing, who owns what* — without touching the analysis wire
protocol:

``GET /metrics``
    Prometheus text exposition of the **live merged** snapshot: the
    sharded acceptor folds one registry snapshot per worker process
    (fetched over the control pipes via ``OP_STAT``) with its own
    through :func:`repro.telemetry.merge_snapshots`, exactly what
    ``repro client stat`` renders.  Scrape it.
``GET /metrics.json``
    The same snapshot as the JSON document
    (:mod:`repro.telemetry.schema` validates it — CI does).
``GET /healthz``
    Liveness: 200 with ``{"status": "ok", "pid", "uptime_seconds"}``
    as long as the process can answer at all.
``GET /readyz``
    Readiness: 200 ``{"status": "ready"}`` normally, 503
    ``{"status": "draining"}`` once shutdown/drain has begun — the
    signal a load balancer needs to stop sending new sessions.
``GET /sessions``
    JSON introspection of every live session: state, events and bytes
    ingested, queue depth, outstanding credits, events since the last
    checkpoint, trace id, owning worker.
``GET /workers``
    Per-worker-process view: slot, pid, listen port, liveness,
    restart count.

The ``ops`` object is any server exposing the small introspection
surface both :class:`~repro.service.server.AnalysisServer` and
:class:`~repro.service.shard.ShardedAnalysisServer` implement:
``stats_payload()``, ``sessions_payload()``, ``workers_payload()``
and the ``draining`` property.  The admin listener runs request
handling on daemon threads (``ThreadingHTTPServer``) so a slow scrape
never blocks the analysis plane, and binds loopback by default — it
is an *operations* surface, not a public one.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.telemetry import to_json, to_prometheus
from repro.telemetry.logs import NULL_LOGGER

__all__ = ["AdminServer"]

#: Routes served (path → one-line description); ``/`` and 404 bodies
#: list them so the endpoint is self-describing.
ROUTES = {
    "/metrics": "Prometheus text exposition (merged across workers)",
    "/metrics.json": "merged metrics snapshot as JSON",
    "/healthz": "liveness probe",
    "/readyz": "readiness probe (503 while draining)",
    "/sessions": "live sessions with owning worker",
    "/workers": "worker processes (pid, slot, restarts)",
}


class AdminServer:
    """HTTP admin listener wrapping a running analysis server."""

    def __init__(
        self,
        ops,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        logger=None,
    ) -> None:
        self.ops = ops
        self.log = logger if logger is not None else NULL_LOGGER
        self._started_at = time.time()
        admin = self

        class Handler(BaseHTTPRequestHandler):
            # Request handling must never write to stderr (the service
            # may share it with structured logs).
            def log_message(self, format, *args):  # noqa: A002
                admin.log.debug(
                    "admin_request", path=self.path,
                    client=self.client_address[0],
                )

            def do_GET(self):  # noqa: N802
                try:
                    status, ctype, body = admin._route(self.path)
                except Exception as exc:  # pragma: no cover - last resort
                    admin.log.error(
                        "admin_error", path=self.path,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    status, ctype, body = (
                        500,
                        "application/json",
                        json.dumps({"error": str(exc)}) + "\n",
                    )
                data = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                try:
                    self.wfile.write(data)
                except OSError:
                    pass  # probe hung up early; nothing to clean up

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (useful with ``port=0``)."""
        return self._httpd.server_address[:2]

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-admin",
            daemon=True,
        )
        self._thread.start()
        self.log.info(
            "admin_listen", host=self.address[0], port=self.address[1]
        )

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _route(self, path: str) -> tuple[int, str, str]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            snapshot = self.ops.stats_payload()
            return 200, "text/plain; version=0.0.4", to_prometheus(snapshot)
        if path == "/metrics.json":
            return 200, "application/json", to_json(self.ops.stats_payload())
        if path == "/healthz":
            body = {
                "status": "ok",
                "pid": os.getpid(),
                "uptime_seconds": round(time.time() - self._started_at, 3),
            }
            return 200, "application/json", json.dumps(body) + "\n"
        if path == "/readyz":
            if getattr(self.ops, "draining", False):
                return (
                    503,
                    "application/json",
                    json.dumps({"status": "draining"}) + "\n",
                )
            return 200, "application/json", json.dumps({"status": "ready"}) + "\n"
        if path == "/sessions":
            body = {"sessions": self.ops.sessions_payload()}
            return 200, "application/json", json.dumps(body, indent=1) + "\n"
        if path == "/workers":
            body = {"workers": self.ops.workers_payload()}
            return 200, "application/json", json.dumps(body, indent=1) + "\n"
        if path == "/":
            return 200, "application/json", json.dumps({"routes": ROUTES}, indent=1) + "\n"
        return (
            404,
            "application/json",
            json.dumps({"error": f"no route {path!r}", "routes": sorted(ROUTES)})
            + "\n",
        )
