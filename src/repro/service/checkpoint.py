"""Durable session checkpoints: kill the server, keep the analysis.

A checkpoint is the :meth:`repro.api.Session.snapshot` pickle — shadow
engine, lock-set tables, report, decoder interning tables, buffered
partial record — wrapped with resume metadata (configuration name,
resume offset, event count).  The store writes atomically (temp file +
``os.replace``), so a checkpoint directory never contains a torn file
even if the server dies mid-write; a resumed session continues
byte-for-byte from ``offset`` (see ``docs/SERVICE.md``).

Checkpoints are per-session files named ``<session_id>.ckpt`` so a
restarted server can enumerate what is resumable without deserialising
anything.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

__all__ = ["Checkpoint", "CheckpointStore"]

#: Store layout version (bump on incompatible payload changes).
CHECKPOINT_VERSION = 1

_SUFFIX = ".ckpt"


class Checkpoint:
    """One saved session: resume metadata + the session snapshot blob."""

    __slots__ = ("session_id", "config", "offset", "events", "snapshot")

    def __init__(self, session_id, config, offset, events, snapshot) -> None:
        self.session_id = session_id
        self.config = config
        #: Resume offset: total encoded bytes the session had accepted
        #: (``Session.bytes_fed``); the client continues streaming from
        #: this byte of its source.
        self.offset = offset
        self.events = events
        #: ``repro.api.Session.snapshot()`` pickle.
        self.snapshot = snapshot


class CheckpointStore:
    """Atomic file-per-session checkpoint directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, session_id: str) -> Path:
        if not session_id or "/" in session_id or session_id.startswith("."):
            raise ValueError(f"bad session id {session_id!r}")
        return self.root / f"{session_id}{_SUFFIX}"

    def save(self, checkpoint: Checkpoint) -> Path:
        """Write atomically; a reader never sees a partial file."""
        path = self._path(checkpoint.session_id)
        payload = pickle.dumps(
            {
                "version": CHECKPOINT_VERSION,
                "session_id": checkpoint.session_id,
                "config": checkpoint.config,
                "offset": checkpoint.offset,
                "events": checkpoint.events,
                "snapshot": checkpoint.snapshot,
            }
        )
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        return path

    def load(self, session_id: str) -> Checkpoint | None:
        """Read one checkpoint; ``None`` if the session has none."""
        path = self._path(session_id)
        if not path.exists():
            return None
        data = pickle.loads(path.read_bytes())
        if data.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {data.get('version')!r} "
                f"in {path}"
            )
        return Checkpoint(
            data["session_id"],
            data["config"],
            data["offset"],
            data["events"],
            data["snapshot"],
        )

    def delete(self, session_id: str) -> None:
        """Drop a finished session's checkpoint (idempotent)."""
        try:
            self._path(session_id).unlink()
        except FileNotFoundError:
            pass

    def session_ids(self) -> list[str]:
        """Resumable session ids, sorted (directory listing only)."""
        return sorted(p.stem for p in self.root.glob(f"*{_SUFFIX}"))

    def max_session_seq(self) -> int:
        """The highest numeric ``sNNNN`` sequence present in the store.

        Fresh ids must start past this: checkpoints outlive the process
        (and, in sharded mode, are shared by every worker), so a new
        incarnation's counter colliding with a resumable id would
        overwrite — then delete — the other client's checkpoint file.
        """
        best = 0
        for sid in self.session_ids():
            if sid.startswith("s") and sid[1:].isdigit():
                best = max(best, int(sid[1:]))
        return best
