"""Client side of the streaming analysis service (``repro client``).

:class:`AnalysisClient` speaks the frame protocol and keeps the credit
ledger: :meth:`send` blocks while the server's per-session queue is
full, so a fast producer is throttled to analysis speed instead of
ballooning server memory — the backpressure the protocol promises, made
invisible to callers.

Two producer conveniences cover the CLI's use cases:

* :meth:`stream_file` pipes an existing ``.rptr`` trace (optionally
  from a resume ``offset``) in bounded chunks;
* :meth:`sink` returns a file-like object a
  :class:`~repro.runtime.codec.TraceWriter` can write *live* — a
  harness run streams its event blocks to the server as they are
  encoded, nothing is staged on disk.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path

from repro.service import protocol

__all__ = ["AnalysisClient", "ServiceError", "fetch_report"]

#: Default DATA chunk size for file/live streaming.
DEFAULT_CHUNK_BYTES = 32 * 1024


class ServiceError(Exception):
    """The server replied with an ERROR frame (or hung up mid-call)."""


class AnalysisClient:
    """One connection to an analysis server.

    Use as a context manager::

        with AnalysisClient(socket_path="/run/repro.sock") as client:
            welcome = client.hello("hwlc+dr")
            client.stream_file("trace.rptr")
            report_bytes = client.finish()
    """

    def __init__(
        self,
        *,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        timeout: float | None = 60.0,
    ) -> None:
        if (socket_path is None) == (host is None or port is None):
            raise ValueError("pass either socket_path or host+port")
        self._timeout = timeout
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout)
            # Frames are small; Nagle would delay them behind delayed
            # ACKs and defeat the credit protocol's pacing.
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = protocol.FrameReader(self._sock)
        self.chunk_bytes = chunk_bytes
        self.credits = 0
        self.welcome: dict | None = None
        self.bytes_sent = 0
        #: ``(host, port)`` of the worker this session was redirected
        #: to by a sharded acceptor, if any (``None`` on unix sockets
        #: and single-process servers).
        self.redirected_to: tuple[str, int] | None = None
        self._redirect_hello: dict | None = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "AnalysisClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- frame plumbing ------------------------------------------------

    def _await(self, wanted: int, follow: int | None = None) -> bytes | None:
        """Read frames until ``wanted`` arrives; CREDIT frames are
        absorbed into the ledger on the way; ERROR raises.

        With ``follow=REDIRECT``, a REDIRECT frame reconnects the
        client to the named worker endpoint and returns ``None`` (the
        caller re-sends its request there).
        """
        while True:
            frame = self._reader.read()
            if frame is None:
                raise ServiceError(
                    f"server closed the connection awaiting "
                    f"{protocol.frame_name(wanted)}"
                )
            ftype, payload = frame
            if ftype == protocol.CREDIT:
                self.credits += protocol.decode_json(payload).get("credits", 0)
            elif ftype == protocol.ERROR:
                raise ServiceError(
                    protocol.decode_json(payload).get("error", "unknown error")
                )
            elif ftype == wanted:
                return payload
            elif follow is not None and ftype == follow == protocol.REDIRECT:
                self._follow_redirect(protocol.decode_json(payload))
                return None
            else:
                raise ServiceError(
                    f"unexpected {protocol.frame_name(ftype)} frame"
                )

    def _follow_redirect(self, info: dict) -> None:
        """Reconnect to the worker endpoint a sharded acceptor named."""
        host, port = info.get("host"), info.get("port")
        if not host or not port:
            raise ServiceError(f"malformed redirect: {info!r}")
        self.close()
        self._sock = socket.create_connection(
            (host, int(port)), timeout=self._timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = protocol.FrameReader(self._sock)
        self.redirected_to = (host, int(port))
        self._redirect_hello = info.get("hello")

    # -- session -------------------------------------------------------

    def hello(self, config: str = "hwlc+dr", *, session: str | None = None) -> dict:
        """Open (or resume) a session; returns the WELCOME body.

        For a resume, pass the ``session`` id of a checkpointed
        session; ``welcome["offset"]`` then says where to continue the
        byte stream (what :meth:`stream_file` does with ``offset``).

        Against a sharded TCP service the acceptor answers with a
        REDIRECT naming the worker's port; the redirect is followed
        here transparently (the session lands directly on its worker,
        and all subsequent frames bypass the acceptor entirely).
        """
        body: dict = {}
        if session is not None:
            body["session"] = session
        else:
            body["config"] = config
        for _hop in range(4):
            protocol.send_json(self._sock, protocol.HELLO, body)
            payload = self._await(protocol.WELCOME, follow=protocol.REDIRECT)
            if payload is None:
                # Redirected: re-send the acceptor's rewritten HELLO
                # (it carries the assigned session id, so the worker
                # opens exactly the session the acceptor routed).
                body = self._redirect_hello or body
                continue
            self.welcome = protocol.decode_json(payload)
            self.credits = int(self.welcome.get("credits", 0))
            return self.welcome
        raise ServiceError("too many redirects")

    @property
    def session_id(self) -> str | None:
        return self.welcome.get("session") if self.welcome else None

    def send(self, data: bytes) -> None:
        """Send one DATA frame, spending a credit (waits for one when
        the ledger is empty — this is where backpressure bites)."""
        if self.welcome is None:
            raise ServiceError("send before hello()")
        while self.credits <= 0:
            # Only CREDIT (or ERROR) can legitimately arrive here.
            frame = self._reader.read()
            if frame is None:
                raise ServiceError("server closed the connection mid-stream")
            ftype, payload = frame
            if ftype == protocol.CREDIT:
                self.credits += protocol.decode_json(payload).get("credits", 0)
            elif ftype == protocol.ERROR:
                raise ServiceError(
                    protocol.decode_json(payload).get("error", "unknown error")
                )
            else:
                raise ServiceError(
                    f"unexpected {protocol.frame_name(ftype)} frame"
                )
        self.credits -= 1
        protocol.send_frame(self._sock, protocol.DATA, data)
        self.bytes_sent += len(data)

    def finish(self) -> bytes:
        """Declare end-of-stream; returns the report exactly as the
        server rendered it (byte-identical to the offline report)."""
        protocol.send_frame(self._sock, protocol.FINISH)
        return self._await(protocol.REPORT)

    def stats(self, *, per_worker: bool = False) -> dict:
        """Fetch the server's metrics snapshot (no session needed).

        ``per_worker=True`` asks for the sharded view instead:
        ``{"merged": snapshot, "workers": {"w0": snapshot, ...}}`` —
        one unmerged snapshot per worker process next to the merged
        whole (a single-process server answers with its lone ``w0``).
        """
        if per_worker:
            protocol.send_json(self._sock, protocol.STAT, {"per_worker": True})
        else:
            protocol.send_frame(self._sock, protocol.STAT)
        return protocol.decode_json(self._await(protocol.STATS))

    # -- producers -----------------------------------------------------

    def stream_file(self, path: str | Path, *, offset: int = 0) -> int:
        """Stream a trace file's bytes from ``offset``; returns the
        byte count sent."""
        sent = 0
        with open(path, "rb") as fh:
            if offset:
                fh.seek(offset)
            while True:
                chunk = fh.read(self.chunk_bytes)
                if not chunk:
                    break
                self.send(chunk)
                sent += len(chunk)
        return sent

    def sink(self) -> "_ClientSink":
        """A binary file-like whose writes become DATA frames — hand it
        to a :class:`~repro.runtime.codec.TraceWriter` to stream a live
        run.  ``close()`` flushes the trailing partial chunk (it does
        not FINISH the session — reports stay on demand)."""
        return _ClientSink(self, self.chunk_bytes)


class _ClientSink:
    """File-like adapter: buffered ``write()`` → DATA frames."""

    def __init__(self, client: AnalysisClient, chunk_bytes: int) -> None:
        self._client = client
        self._chunk = chunk_bytes
        self._buf = bytearray()
        self.closed = False

    def write(self, data: bytes) -> int:
        self._buf += data
        while len(self._buf) >= self._chunk:
            self._client.send(bytes(self._buf[: self._chunk]))
            del self._buf[: self._chunk]
        return len(data)

    def flush(self) -> None:
        if self._buf:
            self._client.send(bytes(self._buf))
            self._buf.clear()

    def close(self) -> None:
        if not self.closed:
            self.flush()
            self.closed = True


def fetch_report(
    source: str | Path,
    config: str = "hwlc+dr",
    *,
    socket_path: str | None = None,
    host: str | None = None,
    port: int | None = None,
    session: str | None = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> bytes:
    """One-call convenience: stream ``source`` (a ``.rptr`` file) to the
    server and return the report bytes.  With ``session``, resumes that
    checkpointed session and streams only the remainder of the file."""
    with AnalysisClient(
        socket_path=socket_path, host=host, port=port, chunk_bytes=chunk_bytes
    ) as client:
        welcome = client.hello(config, session=session)
        client.stream_file(source, offset=int(welcome.get("offset", 0)))
        return client.finish()
