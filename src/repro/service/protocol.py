"""Wire protocol of the streaming analysis service.

One framing for both transports (unix socket and TCP): every message is

    type: u8 | length: u32 (big-endian) | payload: length bytes

Control payloads are UTF-8 JSON; ``DATA`` payloads are raw RPTR v1
trace bytes — the service streams the *same* encoding the offline tier
stores (``docs/TRACE_FORMAT.md``), in arbitrary chunkings (the
server-side :class:`~repro.runtime.codec.StreamDecoder` tolerates
records straddling frames).

Conversation shape (client-initiated, one session per connection)::

    C: HELLO   {"config": "hwlc+dr"}            # or {"session": id} to resume
    S: WELCOME {"session": "s0001", "credits": 8, "offset": 0, "events": 0}
    C: DATA    <bytes>          ]  at most `credits` DATA frames may be
    C: DATA    <bytes>          ]  in flight; each CREDIT frame returns
    S: CREDIT  {"credits": 2}   ]  capacity (credit-based backpressure)
    C: FINISH  {}
    S: REPORT  <report JSON, byte-identical to `repro report` offline>

``STAT``/``STATS`` is a standalone request/response pair (no HELLO
needed) returning the server's metrics snapshot — the
``repro_service_*`` catalogue of ``docs/OBSERVABILITY.md``.  ``ERROR``
may replace any server response; the connection closes after it.

HELLO is free-form JSON, so optional keys ride it without a protocol
rev.  Current optional keys: ``"assign"`` (the sharded acceptor's
pre-chosen session id) and ``"trace"`` (a session-scoped trace
correlation id — the acceptor mints one per session and stamps it into
the rewritten HELLO, so acceptor- and worker-side log records and
Chrome trace spans for the same session share the id across both the
SCM_RIGHTS handover and the REDIRECT re-dial; ``repro trace merge``
correlates on it).  The server echoes the id back as ``"trace"`` in
WELCOME.  Unknown HELLO keys are ignored.

Backpressure contract: ``WELCOME.credits`` is the session's queue bound
N.  A client must not send a DATA frame without holding a credit; the
server returns one credit per DATA frame it *dequeues and analyses*, so
at most N frames are ever buffered per session.  The server enforces
the bound regardless (a violating client blocks at the socket), but a
conforming client never stalls the reader thread.
"""

from __future__ import annotations

import json
import socket
import struct

__all__ = [
    "FrameReader",
    "MAX_FRAME",
    "ProtocolError",
    "decode_json",
    "frame_name",
    "send_frame",
    "send_json",
    # frame types
    "HELLO", "DATA", "FINISH", "STAT",
    "WELCOME", "CREDIT", "REPORT", "STATS", "ERROR", "REDIRECT",
]

#: Frame header: type byte + payload length (big-endian u32).
HEADER = struct.Struct("!BI")

#: Upper bound on a single frame's payload — a malformed length
#: prefix must not make the server allocate gigabytes.
MAX_FRAME = 16 * 1024 * 1024

# Client → server.
HELLO = 1
DATA = 2
FINISH = 3
STAT = 4

# Server → client.
WELCOME = 16
CREDIT = 17
REPORT = 18
STATS = 19
ERROR = 20
#: Sharded TCP mode: the acceptor answers HELLO with a REDIRECT naming
#: the worker endpoint (``{"host", "port", "hello"}``); the client
#: reconnects there and sends the rewritten ``hello`` body.  Unix-socket
#: sharding never redirects — the connection itself is handed to the
#: worker over SCM_RIGHTS.
REDIRECT = 21

_NAMES = {
    HELLO: "HELLO", DATA: "DATA", FINISH: "FINISH", STAT: "STAT",
    WELCOME: "WELCOME", CREDIT: "CREDIT", REPORT: "REPORT",
    STATS: "STATS", ERROR: "ERROR", REDIRECT: "REDIRECT",
}


def frame_name(ftype: int) -> str:
    return _NAMES.get(ftype, f"frame#{ftype}")


class ProtocolError(Exception):
    """Malformed frame, oversized payload, or out-of-order message."""


def send_frame(sock: socket.socket, ftype: int, payload: bytes = b"") -> None:
    """Write one frame (atomic ``sendall`` of header + payload)."""
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(payload)} bytes")
    sock.sendall(HEADER.pack(ftype, len(payload)) + payload)


def send_json(sock: socket.socket, ftype: int, obj) -> None:
    """Write one JSON-payload frame."""
    send_frame(sock, ftype, json.dumps(obj, separators=(",", ":")).encode("utf-8"))


class FrameReader:
    """Buffered frame parser over a socket.

    :meth:`read` blocks for the next complete frame and returns
    ``(type, payload)``, or ``None`` on a clean EOF at a frame
    boundary.  EOF in the middle of a frame raises
    :class:`ProtocolError` — a half frame always means a lost peer.

    ``initial`` seeds the buffer with bytes already read from the
    socket by a previous reader — the sharded acceptor reads the HELLO
    frame to route a connection, then hands the socket *and* whatever
    it over-read to the worker, which resumes parsing mid-stream.
    """

    def __init__(self, sock: socket.socket, initial: bytes = b"") -> None:
        self._sock = sock
        self._buf = bytearray(initial)

    def leftover(self) -> bytes:
        """Buffered bytes beyond the last frame returned by :meth:`read`
        (for handing the stream over to another process)."""
        return bytes(self._buf)

    def _fill(self, need: int) -> bool:
        """Grow the buffer to ``need`` bytes; False on EOF before that."""
        while len(self._buf) < need:
            chunk = self._sock.recv(65536)
            if not chunk:
                return False
            self._buf += chunk
        return True

    def read(self) -> tuple[int, bytes] | None:
        if not self._fill(HEADER.size):
            if self._buf:
                raise ProtocolError("connection closed mid-frame")
            return None
        ftype, length = HEADER.unpack_from(bytes(self._buf[: HEADER.size]))
        if length > MAX_FRAME:
            raise ProtocolError(f"frame too large: {length} bytes")
        if not self._fill(HEADER.size + length):
            raise ProtocolError("connection closed mid-frame")
        payload = bytes(self._buf[HEADER.size: HEADER.size + length])
        del self._buf[: HEADER.size + length]
        return ftype, payload


def decode_json(payload: bytes) -> dict:
    """Parse a JSON control payload (empty payload → empty dict)."""
    if not payload:
        return {}
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad control payload: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("control payload must be a JSON object")
    return obj
