"""The streaming analysis server (``repro serve``).

Architecture — the paper's offline checker turned into a long-lived,
multi-tenant service:

* an **accept thread** takes connections on a unix socket or TCP port;
* a **reader thread per connection** parses frames and pushes DATA
  chunks into that session's bounded queue (credit-based backpressure
  keeps the bound honest — see :mod:`repro.service.protocol`);
* a **bounded worker pool** (``workers`` threads) drains session
  queues through per-session detector pipelines
  (:class:`repro.api.Session`).  Sessions are scheduled at chunk
  granularity: a session sits in the run queue at most once
  (schedule-flag pattern), so N workers multiplex any number of
  sessions fairly and a single hot session can never occupy more than
  one worker;
* a **housekeeping thread** closes sessions idle past
  ``idle_timeout`` (checkpointing them first, so an idle-closed
  session is resumable);
* **checkpoints** (``checkpoint_dir``/``checkpoint_every``) make the
  server crash-tolerant: a killed process restarts, the client
  reconnects with its session id, and analysis resumes mid-stream
  byte-for-byte (``docs/SERVICE.md`` walks through the recovery).

Telemetry: every ingest and scheduling edge increments
``repro_service_*`` metrics in a standard
:class:`~repro.telemetry.MetricsRegistry`, so ``repro client stat``
renders the service exactly like ``repro stats`` renders a run.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time

from repro.api import Session
from repro.api.profiles import profile
from repro.service import protocol
from repro.service.checkpoint import CheckpointStore
from repro.service.session import ServiceSession
from repro.telemetry import MetricsRegistry
from repro.telemetry.logs import NULL_LOGGER

__all__ = ["AnalysisServer"]

#: Default per-session queue bound (DATA frames).
DEFAULT_QUEUE_BLOCKS = 8


class AnalysisServer:
    """Multi-session streaming analysis service.

    Exactly one of ``socket_path`` (unix domain socket) or ``host`` +
    ``port`` (TCP; ``port=0`` picks a free one, see :attr:`address`)
    selects the transport.  ``start()`` spawns the threads and returns;
    ``serve_forever()`` blocks until :meth:`shutdown`.

    With ``listen=False`` no endpoint is bound at all: the server only
    ingests connections handed to it via :meth:`adopt_connection` —
    the shape a shard worker process runs in when the acceptor passes
    accepted sockets over SCM_RIGHTS (:mod:`repro.service.shard`).
    """

    def __init__(
        self,
        *,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        workers: int = 2,
        queue_blocks: int = DEFAULT_QUEUE_BLOCKS,
        idle_timeout: float | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
        registry: MetricsRegistry | None = None,
        throttle: float = 0.0,
        listen: bool = True,
        worker_id: str = "w0",
        logger=None,
        flight=None,
        tracer=None,
        trace_out: str | None = None,
        finish_shards: int = 0,
        finish_predict: bool = False,
    ) -> None:
        if listen:
            if (socket_path is None) == (host is None or port is None):
                raise ValueError("pass either socket_path or host+port")
        elif socket_path is not None or host is not None or port is not None:
            raise ValueError("listen=False takes no endpoint")
        if workers < 1:
            raise ValueError("need at least one worker")
        if queue_blocks < 1:
            raise ValueError("queue bound must be >= 1")
        self.socket_path = socket_path
        self.workers = workers
        self.queue_blocks = queue_blocks
        self.idle_timeout = idle_timeout
        self.checkpoints = (
            CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        )
        self.checkpoint_every = checkpoint_every
        self.registry = registry if registry is not None else MetricsRegistry()
        #: The registry's upsert accessors are not thread-safe; every
        #: family/child *creation* from a reader or worker thread takes
        #: this lock (plain increments on existing samples are fine).
        self.registry_lock = threading.Lock()
        #: Per-chunk analysis delay in seconds — operational knob for
        #: soak/backpressure testing (simulates a slow detector).
        self.throttle = throttle
        #: Stable identity of this process in multi-process views
        #: (``/sessions``, per-worker STATS) — ``w<slot>`` in a shard
        #: worker, ``w0`` standalone.
        self.worker_id = worker_id
        #: Structured logger for lifecycle edges; :data:`NULL_LOGGER`
        #: (every call one attribute test) unless the operator asked
        #: for logs, so programmatic embedding stays silent and free.
        self.log = (logger if logger is not None else NULL_LOGGER).bind(
            worker_id=worker_id
        )
        #: Crash flight recorder (ring of recent records + frames);
        #: ``None`` disables frame recording entirely.
        self.flight = flight
        #: Optional tracer + path its Chrome trace is written to at
        #: shutdown — one file per process, merged offline by
        #: ``repro trace merge``.
        self.tracer = tracer
        self.trace_out = trace_out
        #: Opt-in FINISH-time verification pass: when >= 1, each session
        #: spools its ingested byte stream and, after shipping the
        #: streaming report, re-analyses the whole trace sharded across
        #: this many worker processes and checks byte-identity
        #: (``repro_service_shard_verify_total``).  0 disables — no
        #: spooling, no extra cost.
        self.finish_shards = finish_shards
        #: Opt-in FINISH-time predictive post-pass: each session spools
        #: its byte stream and, *before* shipping the report, replays it
        #: under the ``predictive`` profile and appends the predicted
        #: findings (``repro_service_predict_finish_total``).
        self.finish_predict = finish_predict

        self._listener: socket.socket | None = None
        if not listen:
            pass
        elif socket_path is not None:
            if os.path.exists(socket_path):
                os.unlink(socket_path)
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(socket_path)
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
        if self._listener is not None:
            self._listener.listen(64)

        self._sessions: dict[str, ServiceSession] = {}
        self._sessions_lock = threading.Lock()
        #: Ids mid-resume: reserved under ``_sessions_lock`` before the
        #: checkpoint load, so two concurrent HELLO{session: X} frames
        #: cannot both restore X (the loser fails "already active").
        self._resuming: set[str] = set()
        self._next_session = 0
        if self.checkpoints is not None:
            self._next_session = self.checkpoints.max_session_seq()
        self._runq: queue.SimpleQueue = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._stopping = threading.Event()
        self._drained = threading.Event()
        self._started = False

        self._m_sessions = self.registry.counter(
            "repro_service_sessions_total", help="Sessions ever opened"
        )
        self._m_resumed = self.registry.counter(
            "repro_service_sessions_resumed_total",
            help="Sessions resumed from a checkpoint",
        )
        self._m_active = self.registry.gauge(
            "repro_service_sessions_active",
            help="Sessions currently open",
            # Summed, not last-wins: the sharded acceptor folds one
            # snapshot per worker process into the merged stats view,
            # and concurrent sessions on different workers must add up.
            merge="sum",
        )
        self._m_idle_closed = self.registry.counter(
            "repro_service_idle_closed_total",
            help="Sessions closed by the idle timeout",
        )
        self._m_worker_errors = self.registry.counter(
            "repro_service_worker_errors_total",
            help="Unexpected exceptions caught by the worker loop",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int] | str | None:
        """Bound endpoint: the socket path, or the ``(host, port)``
        actually bound (useful with ``port=0``); ``None`` when built
        with ``listen=False``."""
        if self.socket_path is not None:
            return self.socket_path
        if self._listener is None:
            return None
        return self._listener.getsockname()

    def start(self) -> None:
        """Spawn accept/worker/housekeeping threads and return."""
        if self._started:
            return
        self._started = True
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        if self._listener is not None:
            t = threading.Thread(
                target=self._accept_loop, name="repro-accept", daemon=True
            )
            t.start()
            self._threads.append(t)
        if self.idle_timeout:
            t = threading.Thread(
                target=self._housekeeping_loop, name="repro-idle", daemon=True
            )
            t.start()
            self._threads.append(t)

    def serve_forever(self) -> None:
        """``start()`` then block until :meth:`shutdown` completes."""
        self.start()
        self._drained.wait()

    def shutdown(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the service.

        ``drain=True`` (graceful): stop accepting, let workers analyse
        everything already queued, checkpoint unfinished sessions, then
        stop.  ``drain=False`` (kill): drop everything on the floor —
        only periodic checkpoints survive, which is exactly the crash
        the checkpoint tier exists for.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        self.log.info("drain_begin" if drain else "stop", drain=drain)
        # Release the endpoint *before* draining: draining can take
        # seconds, and a replacement server started on the same unix
        # path / TCP port must be able to bind immediately — and must
        # never have its freshly-bound socket unlinked by our own
        # post-drain cleanup (the restart race this ordering fixes).
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if drain:
            with self._sessions_lock:
                active = list(self._sessions.values())
            for session in active:
                session.detach()
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._sessions_lock:
                    if not self._sessions:
                        break
                time.sleep(0.01)
        for _ in range(self.workers):
            self._runq.put(None)
        # Readers blocked in recv() wake up when their socket closes.
        for conn in list(self._conns):
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self.tracer is not None and self.trace_out:
            try:
                self.tracer.write(self.trace_out)
            except OSError:
                pass  # trace loss must not fail the shutdown
        self.log.info("drain_end" if drain else "stopped")
        self._drained.set()

    # ------------------------------------------------------------------
    # Scheduling (the worker pool)
    # ------------------------------------------------------------------

    def schedule(self, session: ServiceSession) -> None:
        """Put ``session`` on the run queue unless it is already there
        (or being processed — the worker re-checks on exit)."""
        with session.lock:
            if session.scheduled:
                return
            session.scheduled = True
        self._runq.put(session)

    def _worker_loop(self) -> None:
        while True:
            session = self._runq.get()
            if session is None:
                return
            try:
                session.process_batch()
            except Exception:  # last resort: a worker must never die
                import traceback

                self._m_worker_errors.inc()
                if self.log.enabled:
                    self.log.error(
                        "worker_error",
                        session=session.session_id,
                        traceback=traceback.format_exc(),
                    )
                else:  # no log sink configured: stderr beats silence
                    traceback.print_exc()
                self.release(session, drop_checkpoint=False)
            with session.lock:
                if session.queue.empty() or session.closed:
                    session.scheduled = False
                    continue
            # More arrived while we processed: go around again, but
            # through the queue so other sessions get their turn.
            self._runq.put(session)

    def stats_payload(self, *, per_worker: bool = False) -> dict:
        """The STATS response body.

        Plain requests get the registry snapshot.  ``per_worker``
        requests get ``{"merged", "workers"}`` — in this single-process
        server the one "worker" (``w0``) *is* the process, so both
        views coincide; the sharded acceptor answers the same shape
        with one entry per worker process (see
        :mod:`repro.service.shard`).
        """
        with self.registry_lock:
            snapshot = self.registry.snapshot()
        if per_worker:
            return {"merged": snapshot, "workers": {self.worker_id: snapshot}}
        return snapshot

    @property
    def draining(self) -> bool:
        """True once shutdown has begun (the ``/readyz`` signal)."""
        return self._stopping.is_set()

    def sessions_payload(self) -> list[dict]:
        """Introspection of live sessions (the admin ``/sessions`` body).

        One dict per session, sorted by id, every value a plain JSON
        type.  ``worker`` names the owning process so the sharded
        acceptor can concatenate the workers' lists verbatim.
        """
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        return sorted(
            (s.introspect(self.worker_id) for s in sessions),
            key=lambda d: d["session"],
        )

    def workers_payload(self) -> list[dict]:
        """Worker-process introspection — the single-process server *is*
        its one worker; the sharded acceptor overrides this with one
        entry per subprocess."""
        return [
            {
                "worker": self.worker_id,
                "pid": os.getpid(),
                "alive": True,
                "restarts": 0,
                "threads": self.workers,
            }
        ]

    def release(self, session: ServiceSession, *, drop_checkpoint: bool) -> None:
        """Remove a finished/detached session (idempotent)."""
        with self._sessions_lock:
            if session.closed:
                return
            session.closed = True
            self._sessions.pop(session.session_id, None)
            self._m_active.set(len(self._sessions))
        if drop_checkpoint and self.checkpoints is not None:
            self.checkpoints.delete(session.session_id)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by shutdown
            if conn.family == socket.AF_INET:
                # Small control/credit frames must not sit in Nagle's
                # buffer — backpressure depends on their latency.
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conns.add(conn)
            t = threading.Thread(
                target=self._client_loop, args=(conn,),
                name="repro-reader", daemon=True,
            )
            t.start()

    def adopt_connection(
        self, conn: socket.socket, hello: dict | None = None,
        leftover: bytes = b"",
    ) -> None:
        """Ingest a connection accepted elsewhere (the sharded
        acceptor): spawn its reader thread as if we had accepted it.

        ``hello`` is the already-parsed HELLO body when the acceptor
        consumed that frame to route the connection; ``leftover`` is
        whatever the acceptor's frame reader over-read past it.
        """
        if conn.family == socket.AF_INET:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._conns.add(conn)
        self.log.debug(
            "adopt_connection",
            session=(hello or {}).get("assign") or (hello or {}).get("session"),
        )
        t = threading.Thread(
            target=self._client_loop, args=(conn, hello, leftover),
            name="repro-reader", daemon=True,
        )
        t.start()

    def _client_loop(
        self, conn: socket.socket, first_hello: dict | None = None,
        initial: bytes = b"",
    ) -> None:
        """One connection: HELLO → session ingest, or standalone STAT."""
        session: ServiceSession | None = None
        reader = protocol.FrameReader(conn, initial)
        try:
            if first_hello is not None:
                session = self._open_session(conn, first_hello)
                with session.send_lock:
                    protocol.send_json(
                        conn, protocol.WELCOME, session.welcome_payload()
                    )
            while True:
                frame = reader.read()
                if frame is None:
                    break
                ftype, payload = frame
                if self.flight is not None:
                    self.flight.frame(
                        "recv", protocol.frame_name(ftype), len(payload),
                        session=session.session_id if session else None,
                    )
                if ftype == protocol.STAT:
                    snapshot = self.stats_payload(
                        per_worker=bool(
                            protocol.decode_json(payload).get("per_worker")
                        )
                    )
                    with session.send_lock if session else threading.Lock():
                        protocol.send_json(conn, protocol.STATS, snapshot)
                elif ftype == protocol.HELLO:
                    if session is not None:
                        raise protocol.ProtocolError("duplicate HELLO")
                    session = self._open_session(conn, protocol.decode_json(payload))
                    with session.send_lock:
                        protocol.send_json(
                            conn, protocol.WELCOME, session.welcome_payload()
                        )
                elif ftype == protocol.DATA:
                    if session is None:
                        raise protocol.ProtocolError("DATA before HELLO")
                    session.enqueue(payload)
                elif ftype == protocol.FINISH:
                    if session is None:
                        raise protocol.ProtocolError("FINISH before HELLO")
                    session.request_finish()
                else:
                    raise protocol.ProtocolError(
                        f"unexpected {protocol.frame_name(ftype)} frame"
                    )
        except protocol.ProtocolError as exc:
            self.log.warning(
                "protocol_error",
                session=session.session_id if session else None,
                error=str(exc),
            )
            self._send_error(conn, session, str(exc))
        except (ValueError, KeyError) as exc:
            self.log.warning(
                "protocol_error",
                session=session.session_id if session else None,
                error=f"{type(exc).__name__}: {exc}",
            )
            self._send_error(conn, session, f"{type(exc).__name__}: {exc}")
        except OSError:
            pass  # peer vanished; detach below persists progress
        finally:
            self._conns.discard(conn)
            if session is not None and not session.closed:
                session.conn = None
                if not session.finished:
                    self.log.info(
                        "session_detach", session=session.session_id
                    )
                    session.detach()
            try:
                conn.close()
            except OSError:
                pass

    def _send_error(self, conn, session, message: str) -> None:
        lock = session.send_lock if session is not None else threading.Lock()
        try:
            with lock:
                protocol.send_json(conn, protocol.ERROR, {"error": message})
        except OSError:
            pass

    def _open_session(self, conn, hello: dict) -> ServiceSession:
        """Build a fresh session, or resume one from its checkpoint."""
        resume_id = hello.get("session")
        if resume_id is not None:
            session = self._resume_session(
                conn, resume_id, trace=hello.get("trace")
            )
            self.log.info(
                "session_resume", session=session.session_id,
                config=session.config, offset=session.api.bytes_fed,
                events=session.api.events_seen, trace=session.trace_id,
            )
        else:
            session = self._fresh_session(conn, hello)
            self.log.info(
                "session_open", session=session.session_id,
                config=session.config, trace=session.trace_id,
            )
        self._m_sessions.inc()
        return session

    def _resume_session(
        self, conn, resume_id: str, *, trace: str | None = None
    ) -> ServiceSession:
        if self.checkpoints is None:
            raise protocol.ProtocolError(
                "cannot resume: server has no checkpoint directory"
            )
        with self._sessions_lock:
            if resume_id in self._sessions or resume_id in self._resuming:
                raise protocol.ProtocolError(
                    f"session {resume_id!r} is already active"
                )
            self._resuming.add(resume_id)
        session = None
        try:
            ckpt = self.checkpoints.load(resume_id)
            if ckpt is None:
                raise protocol.ProtocolError(
                    f"no checkpoint for session {resume_id!r}"
                )
            api_session = Session.restore(ckpt.snapshot)
            session = ServiceSession(
                resume_id, ckpt.config, self, conn,
                queue_blocks=self.queue_blocks, api_session=api_session,
                trace_id=trace,
            )
        finally:
            # Hand the reservation over to the _sessions insert in one
            # lock acquisition — no window where the id is unguarded.
            with self._sessions_lock:
                self._resuming.discard(resume_id)
                if session is not None:
                    self._sessions[resume_id] = session
                    self._m_active.set(len(self._sessions))
        self._m_resumed.inc()
        return session

    def _fresh_session(self, conn, hello: dict) -> ServiceSession:
        config = hello.get("config", "hwlc+dr")
        profile(config)  # validate before allocating anything
        assigned = hello.get("assign")
        with self._sessions_lock:
            if assigned is not None:
                # The sharded acceptor owns the id space and routed
                # this connection here by hashing the id it chose; we
                # only guard against an active duplicate and keep our
                # own counter clear of the acceptor's.
                if (
                    assigned in self._sessions
                    or assigned in self._resuming
                ):
                    raise protocol.ProtocolError(
                        f"session {assigned!r} is already active"
                    )
                session_id = assigned
                if assigned.startswith("s") and assigned[1:].isdigit():
                    self._next_session = max(
                        self._next_session, int(assigned[1:])
                    )
            else:
                while True:
                    self._next_session += 1
                    session_id = f"s{self._next_session:04d}"
                    if (
                        session_id not in self._sessions
                        and session_id not in self._resuming
                    ):
                        break
            self._resuming.add(session_id)  # reserve until inserted
        session = None
        try:
            session = ServiceSession(
                session_id, config, self, conn,
                queue_blocks=self.queue_blocks, trace_id=hello.get("trace"),
            )
        finally:
            with self._sessions_lock:
                self._resuming.discard(session_id)
                if session is not None:
                    self._sessions[session_id] = session
                    self._m_active.set(len(self._sessions))
        return session

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def _housekeeping_loop(self) -> None:
        interval = max(min(self.idle_timeout / 4.0, 1.0), 0.05)
        while not self._stopping.wait(interval):
            now = time.monotonic()
            with self._sessions_lock:
                idle = [
                    s
                    for s in self._sessions.values()
                    if not s.finished and s.idle(now, self.idle_timeout)
                ]
            for session in idle:
                self._m_idle_closed.inc()
                self.log.info(
                    "session_idle_close", session=session.session_id,
                    idle_seconds=round(now - session.last_activity, 3),
                )
                conn = session.conn
                session.detach()
                if conn is not None:
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
