"""Server-side analysis sessions: bounded ingest queue + detector state.

A :class:`ServiceSession` is the service's unit of isolation — one per
connected client.  It owns

* a :class:`repro.api.Session` (ReplayVM + detector + streaming
  decoder) holding all analysis state,
* a **bounded** chunk queue (``queue_blocks`` DATA frames) filled by
  the connection's reader thread and drained by the shared worker
  pool, and
* the credit ledger of the backpressure protocol: one credit is
  returned to the client per chunk *analysed*, so at most
  ``queue_blocks`` chunks are ever buffered, no matter how fast the
  client or how slow the analysis.

Threading contract: ``enqueue``/``request_finish``/``detach`` run on
the connection's reader thread; ``process_batch`` runs on exactly one
worker thread at a time (the server's schedule flag guarantees it);
metric writes are per-session-labelled so the two never contend on the
same sample.
"""

from __future__ import annotations

import os
import queue
import threading
import time

from repro.api import Session
from repro.service import protocol
from repro.service.checkpoint import Checkpoint

__all__ = ["ServiceSession"]

#: Queue sentinels (reader → worker control flow, ordered with data).
_FINISH = object()
_DETACH = object()


class ServiceSession:
    """One client's analysis session inside the server."""

    def __init__(
        self,
        session_id: str,
        config: str,
        server,
        conn,
        *,
        queue_blocks: int,
        api_session: Session | None = None,
        trace_id: str | None = None,
    ) -> None:
        self.session_id = session_id
        self.config = config
        self.server = server
        #: Session-scoped trace correlation id.  The sharded acceptor
        #: mints one and stamps it into the rewritten HELLO so the same
        #: id reaches the owning worker (over SCM_RIGHTS handover or a
        #: REDIRECT re-dial); a directly-addressed server mints its own.
        #: It labels trace spans and log records on both sides, which
        #: is what lets ``repro trace merge`` correlate them.
        self.trace_id = (
            trace_id
            if trace_id is not None
            else f"{session_id}-{os.urandom(4).hex()}"
        )
        self.api = api_session if api_session is not None else Session(config)
        self.queue: queue.Queue = queue.Queue(maxsize=queue_blocks)
        self.queue_blocks = queue_blocks
        self.conn = conn
        self.send_lock = threading.Lock()
        self.lock = threading.Lock()
        self.scheduled = False
        self.closed = False
        self.finished = False
        self.last_activity = time.monotonic()
        self._high_water = 0
        #: Chunks received but not yet credited back — the mirror of the
        #: client's spent credits (``== queue_blocks`` ⇒ client stalled).
        self._uncredited = 0
        self._events_since_checkpoint = 0
        #: FINISH-time post-passes (``server.finish_shards`` /
        #: ``server.finish_predict``): the analysed byte stream is
        #: spooled to a temp file so the whole trace can be replayed —
        #: sharded and byte-compared against the streaming report,
        #: and/or under the predictive profile to append predicted
        #: findings.  Resumed sessions skip it — their spool would be
        #: missing everything before the checkpoint.
        self._spool = None
        wants_spool = (
            getattr(server, "finish_shards", 0) >= 1
            or getattr(server, "finish_predict", False)
        )
        if wants_spool and api_session is None:
            import tempfile

            self._spool = tempfile.NamedTemporaryFile(
                prefix=f"repro-spool-{session_id}-",
                suffix=".rptr",
                delete=False,
            )
        with server.registry_lock:
            self._init_metrics(session_id, server.registry)

    def idle(self, now: float, timeout: float) -> bool:
        """True when the idle reaper may close this session: past the
        timeout *and* no work in flight.  A stalled-but-healthy session
        (full queue, client waiting on credits) is never idle — the
        client cannot send while we owe it credits."""
        if now - self.last_activity <= timeout:
            return False
        if not self.queue.empty():
            return False
        with self.lock:
            return self._uncredited == 0

    def _init_metrics(self, session_id: str, reg) -> None:
        labels = {"session": session_id}
        self._m_bytes = reg.counter(
            "repro_service_bytes_ingested_total", labels,
            help="Encoded trace bytes accepted from the client",
        )
        self._m_events = reg.counter(
            "repro_service_events_total", labels,
            help="Events decoded and analysed",
        )
        self._m_depth = reg.gauge(
            "repro_service_queue_depth", labels,
            help="Chunks currently buffered in the session queue",
        )
        self._m_high = reg.gauge(
            "repro_service_queue_high_water", labels,
            help="Maximum chunks ever buffered (bounded by queue_blocks)",
        )
        self._m_stalls = reg.counter(
            "repro_service_backpressure_stalls_total", labels,
            help="Times the client ran out of credits with the queue full",
        )
        self._m_checkpoints = reg.counter(
            "repro_service_checkpoints_total", labels,
            help="Session checkpoints written",
        )

    # ------------------------------------------------------------------
    # Reader-thread side
    # ------------------------------------------------------------------

    def enqueue(self, chunk: bytes) -> None:
        """Queue one DATA chunk (blocks at the bound — the queue never
        holds more than ``queue_blocks`` chunks)."""
        self.last_activity = time.monotonic()
        if self.finished or self.closed:
            return  # failed/finished mid-stream; the client errors out
        self.queue.put(chunk)
        depth = self.queue.qsize()
        self._m_depth.set(depth)
        if depth > self._high_water:
            self._high_water = depth
            self._m_high.set(depth)
        with self.lock:
            self._uncredited += 1
            stalled = self._uncredited >= self.queue_blocks
        if stalled:
            # The client has now spent every credit; it is stalled
            # until the worker analyses a chunk and returns one.
            self._m_stalls.inc()
        self.server.schedule(self)

    def request_finish(self) -> None:
        """Client sent FINISH: report once everything queued is analysed."""
        self.last_activity = time.monotonic()
        self.queue.put(_FINISH)
        self.server.schedule(self)

    def detach(self) -> None:
        """Connection lost (or server draining): analyse what is queued,
        checkpoint, release the session."""
        self.queue.put(_DETACH)
        self.server.schedule(self)

    # ------------------------------------------------------------------
    # Worker-thread side
    # ------------------------------------------------------------------

    def process_batch(self) -> None:
        """Drain currently-queued chunks through the detector pipeline.

        Runs on one worker thread at a time.  Returns credits for the
        chunks consumed in one coalesced CREDIT frame, honours the
        checkpoint cadence, and emits the REPORT / final checkpoint
        when a FINISH / DETACH sentinel surfaces.
        """
        tracer = self.server.tracer
        if tracer is None:
            self._process_batch()
            return
        with tracer.span(
            "analyze",
            track=tracer.track(f"session {self.session_id}"),
            args={"trace": self.trace_id},
        ):
            self._process_batch()

    def _process_batch(self) -> None:
        consumed = 0
        throttle = self.server.throttle
        while True:
            try:
                item = self.queue.get_nowait()
            except queue.Empty:
                break
            if item is _FINISH:
                self._finish(consumed)
                consumed = 0
                continue
            if item is _DETACH:
                self._detach_now()
                return
            if self._spool is not None:
                # Written on the (single) worker thread in analysis
                # order, so the spool is the exact byte stream the
                # streaming decoder saw.
                self._spool.write(item)
            try:
                events = self.api.feed(item)
            except Exception as exc:
                # Corrupt stream / decoder error: the session is dead,
                # but the worker and the server must survive it.
                self._fail(f"{type(exc).__name__}: {exc}")
                return
            consumed += 1
            # Per-chunk, not per-batch: a slow/throttled drain of a full
            # queue is progress, and must keep the idle reaper away.
            self.last_activity = time.monotonic()
            self._m_bytes.inc(len(item))
            self._m_events.inc(events)
            self._m_depth.set(self.queue.qsize())
            self._events_since_checkpoint += events
            if throttle:
                time.sleep(throttle)
            every = self.server.checkpoint_every
            if every and self._events_since_checkpoint >= every:
                self.checkpoint()
        self.last_activity = time.monotonic()
        if consumed:
            self._grant_credits(consumed)

    def _grant_credits(self, n: int) -> None:
        with self.lock:
            self._uncredited -= n
        conn = self.conn
        if conn is None:
            return
        try:
            with self.send_lock:
                protocol.send_json(conn, protocol.CREDIT, {"credits": n})
        except OSError:
            self.conn = None

    def _finish(self, consumed_before: int) -> None:
        """Everything before FINISH has been analysed: ship the report."""
        if consumed_before:
            self._grant_credits(consumed_before)
        self.finished = True
        # End-of-stream pass: a no-op for the legacy tiers; a session
        # running the "predictive" profile emits its predictions here.
        self.api.finalize()
        payload = streaming_payload = self.api.report_text().encode("utf-8")
        if getattr(self.server, "finish_predict", False) and self._spool is not None:
            # Before the send: the whole point is a report that carries
            # the predicted findings (opt-in; adds replay latency).
            payload = self._finish_predict(payload)
        self.server.log.info(
            "session_finish", session=self.session_id,
            events=self.api.events_seen, bytes=self.api.bytes_fed,
            report_bytes=len(payload), trace=self.trace_id,
        )
        # Count before the send: a client that already holds the REPORT
        # must see the counter bumped in its next stats snapshot.
        with self.server.registry_lock:
            self.server.registry.counter(
                "repro_service_reports_total",
                help="Reports served to finishing clients",
            ).inc()
        conn = self.conn
        if conn is not None:
            try:
                with self.send_lock:
                    protocol.send_frame(conn, protocol.REPORT, payload)
            except OSError:
                self.conn = None
        if self._spool is not None:
            if getattr(self.server, "finish_shards", 0) >= 1:
                # After the client has its report — the verification
                # pass must never add to report latency.  It compares
                # against the *streaming* bytes: the predictive
                # post-pass (if any) appended findings the sharded
                # re-analysis of a legacy config would not produce.
                self._verify_sharded(streaming_payload)
            else:
                self._drop_spool()
        self.server.release(self, drop_checkpoint=True)

    def _fail(self, message: str) -> None:
        """Analysis failed mid-stream: tell the client, keep the last
        good checkpoint (the failed chunk advanced nothing, so a
        corrected stream can resume from it), release the session."""
        self._drop_spool()
        self.finished = True
        self.server.log.error(
            "session_error", session=self.session_id, error=message,
            trace=self.trace_id,
        )
        with self.server.registry_lock:
            self.server.registry.counter(
                "repro_service_analysis_errors_total",
                {"session": self.session_id},
                help="Sessions aborted by a decode/analysis error",
            ).inc()
        conn = self.conn
        if conn is not None:
            try:
                with self.send_lock:
                    protocol.send_json(
                        conn, protocol.ERROR, {"error": message}
                    )
            except OSError:
                self.conn = None
        self.server.release(self, drop_checkpoint=False)

    def _detach_now(self) -> None:
        """Connection gone: persist progress and release the session."""
        self._drop_spool()
        if not self.finished:
            self.checkpoint()
        self.server.release(self, drop_checkpoint=False)

    # ------------------------------------------------------------------
    # FINISH-time sharded re-analysis (opt-in offline post-pass)
    # ------------------------------------------------------------------

    def _drop_spool(self) -> None:
        if self._spool is None:
            return
        spool, self._spool = self._spool, None
        import os

        try:
            spool.close()
            os.unlink(spool.name)
        except OSError:
            pass

    def _finish_predict(self, payload: bytes) -> bytes:
        """Replay the spooled trace under the ``predictive`` profile and
        append its predicted findings to the session's report.

        Opt-in (``repro serve --finish-predict``): a session streaming
        under a legacy configuration gets the offline prediction tier's
        findings in the same REPORT frame.  Sessions already running the
        ``predictive`` profile are skipped (counted as
        ``result="skipped"``): their own ``finalize`` produced the
        identical predictions, and re-adding them would bump the
        deduplicated locations' occurrence counts — breaking byte-parity
        with a live predictive run.  Failure never loses the streaming
        report: on any error the original payload is served and the
        outcome counted in
        ``repro_service_predict_finish_total{result=error}``.
        """
        from repro.api.profiles import profile

        spool = self._spool
        if profile(self.config).predictive:
            with self.server.registry_lock:
                self.server.registry.counter(
                    "repro_service_predict_finish_total",
                    {"result": "skipped"},
                    help="FINISH-time predictive post-pass outcomes",
                ).inc()
            return payload
        try:
            spool.flush()
            from repro.detectors.report import WarningKind
            from repro.runtime.trace import replay_trace

            det = profile("predictive").detector()
            replay_trace(spool.name, det)
            det.finalize()
            predicted_kinds = (
                WarningKind.PREDICTED_RACE, WarningKind.PREDICTED_DEADLOCK
            )
            report = self.api.report
            appended = 0
            for warning in det.report.warnings:
                if warning.kind in predicted_kinds:
                    report.add(warning)
                    appended += 1
            payload = self.api.report_text().encode("utf-8")
            outcome = "ok"
        except Exception as exc:  # never let the post-pass kill a worker
            outcome = "error"
            appended = 0
            self.server.log.error(
                "predict_finish_error", session=self.session_id,
                error=f"{type(exc).__name__}: {exc}", trace=self.trace_id,
            )
        with self.server.registry_lock:
            self.server.registry.counter(
                "repro_service_predict_finish_total",
                {"result": outcome},
                help="FINISH-time predictive post-pass outcomes",
            ).inc()
        if outcome == "ok":
            self.server.log.info(
                "predict_finish", session=self.session_id,
                predicted=appended, trace=self.trace_id,
            )
        return payload

    def _verify_sharded(self, payload: bytes) -> None:
        """Replay the spooled trace sharded; byte-compare the reports.

        The paper's offline tier as a self-check: the streaming report
        and an N-process page-sharded replay of the same bytes must be
        byte-identical.  Outcome lands in
        ``repro_service_shard_verify_total{result=...}`` and the
        structured log; a mismatch is an analysis bug, not a client
        error, so the session itself is unaffected.
        """
        spool, self._spool = self._spool, None
        import os

        try:
            spool.flush()
            from repro.detectors.parallel import replay_trace_sharded

            result = replay_trace_sharded(
                spool.name, self.config, shards=self.server.finish_shards
            )
            import json as _json

            sharded = _json.dumps(result.report.to_dict(), indent=2)
            outcome = (
                "match" if sharded.encode("utf-8") == payload else "mismatch"
            )
        except Exception as exc:  # never let the post-pass kill a worker
            outcome = "error"
            self.server.log.error(
                "shard_verify_error", session=self.session_id,
                error=f"{type(exc).__name__}: {exc}", trace=self.trace_id,
            )
        finally:
            try:
                spool.close()
                os.unlink(spool.name)
            except OSError:
                pass
        with self.server.registry_lock:
            self.server.registry.counter(
                "repro_service_shard_verify_total",
                {"result": outcome},
                help="FINISH-time sharded re-analysis outcomes",
            ).inc()
        log = (
            self.server.log.info if outcome == "match" else self.server.log.error
        )
        if outcome != "error":
            log(
                "shard_verify", session=self.session_id, result=outcome,
                shards=self.server.finish_shards, trace=self.trace_id,
            )

    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Write a resumable checkpoint (no-op without a store)."""
        store = self.server.checkpoints
        if store is None or self.finished:
            return
        store.save(
            Checkpoint(
                self.session_id,
                self.config,
                self.api.bytes_fed,
                self.api.events_seen,
                self.api.snapshot(),
            )
        )
        self._events_since_checkpoint = 0
        self._m_checkpoints.inc()

    def welcome_payload(self) -> dict:
        """The WELCOME control body (fresh or resumed)."""
        return {
            "session": self.session_id,
            "credits": self.queue_blocks,
            "offset": self.api.bytes_fed,
            "events": self.api.events_seen,
            "config": self.config,
            "trace": self.trace_id,
        }

    def introspect(self, worker_id: str) -> dict:
        """One ``/sessions`` entry: live state as plain JSON types."""
        with self.lock:
            uncredited = self._uncredited
        if self.finished:
            state = "finished"
        elif self.conn is None:
            state = "detached"
        else:
            state = "active"
        return {
            "session": self.session_id,
            "worker": worker_id,
            "state": state,
            "config": self.config,
            "events": self.api.events_seen,
            "bytes": self.api.bytes_fed,
            "queue_depth": self.queue.qsize(),
            "uncredited": uncredited,
            "events_since_checkpoint": self._events_since_checkpoint,
            "idle_seconds": round(time.monotonic() - self.last_activity, 3),
            "trace": self.trace_id,
        }
