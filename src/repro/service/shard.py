"""Sharded analysis service: one acceptor, N shared-nothing workers.

The single-process :class:`~repro.service.server.AnalysisServer` runs
every session's detector pipeline on a thread pool inside one
GIL-bound interpreter, so aggregate ingest tops out near a single core
no matter how many clients connect.  Per-session lock-set analysis is
shared-nothing, which makes session-level sharding the natural scaling
unit: this module promotes the service to a multi-process architecture.

* A lightweight **acceptor** process owns the listening socket.  It
  reads exactly one frame per connection — the HELLO — and routes the
  session to one of N **worker processes** by consistent hashing on
  the session id (:class:`HashRing`), so a given session always lands
  on the same worker, across reconnects *and* across worker restarts.
* On a **unix socket**, the accepted connection itself is handed to
  the worker over SCM_RIGHTS (``socket.send_fds``), together with the
  parsed HELLO and any bytes the acceptor's frame reader over-read;
  the worker ingests directly from the client with the existing
  credit-based backpressure — the acceptor never touches DATA.
* On **TCP**, fds cannot cross the socketpair, so the acceptor answers
  HELLO with a :data:`~repro.service.protocol.REDIRECT` naming the
  worker's own port; the client reconnects there and re-sends the
  rewritten HELLO (``repro.service.client.AnalysisClient`` follows
  redirects transparently).
* **Checkpoints are the failover unit**: all workers share one
  checkpoint directory, and the acceptor's **supervisor loop**
  restarts any worker that dies.  A killed worker's resumable
  sessions re-route (same hash slot) to its replacement, which
  restores them from their pickled checkpoints — the PR-5
  cross-process resume path, now exercised automatically.
* ``STAT`` is answered by the acceptor itself: it collects each
  worker's ``repro_service_*`` snapshot over the **control pipe** and
  merges them (:func:`repro.telemetry.merge_snapshots`) into the one
  view ``repro client stat`` renders; ``--per-worker`` returns the
  unmerged per-process snapshots alongside.

Each worker is a fresh interpreter (spawned via :mod:`subprocess`
running :func:`worker_main`, with the control socketpair passed
through ``pass_fds``) hosting a listener-less
:class:`~repro.service.server.AnalysisServer` — same sessions, same
checkpoints, same metrics, just one process per shard.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import socket
import struct
import subprocess
import sys
import threading
import time

from repro.service import protocol
from repro.service.checkpoint import CheckpointStore
from repro.telemetry import MetricsRegistry, merge_snapshots
from repro.telemetry.logs import NULL_LOGGER, dump_flight_spool

__all__ = ["HashRing", "ShardedAnalysisServer"]

#: Virtual nodes per worker slot on the hash ring.  Enough that the
#: per-slot share of the key space is within a few percent of 1/N and
#: that adding a worker remaps ≈1/(N+1) of the sessions, not a lobe.
DEFAULT_REPLICAS = 64

# ----------------------------------------------------------------------
# Control protocol (acceptor ⇄ worker, over a unix socketpair)
# ----------------------------------------------------------------------

#: Worker → acceptor, once at startup: ``{"pid", "port"}`` (``port`` is
#: null on unix transport, where the worker has no listener).
OP_READY = 0x41
#: Acceptor → worker: a routed connection.  The payload carries the
#: rewritten HELLO and the acceptor's over-read bytes; the connection's
#: fd rides the frame header as SCM_RIGHTS ancillary data.
OP_CONN = 0x42
#: Acceptor → worker: send your metrics snapshot (reply: OP_STATS).
OP_STAT = 0x43
OP_STATS = 0x44
#: Acceptor → worker: shut down (``{"drain": bool, "timeout": s}``).
OP_SHUTDOWN = 0x45
#: Acceptor ⇄ worker: session introspection round-trip.  The acceptor
#: sends an empty request; the worker replies with the same op carrying
#: its ``sessions_payload()`` JSON (the admin ``/sessions`` feed).
OP_SESSIONS = 0x46

_CTRL_HEADER = struct.Struct("!BI")
#: Each OP_CONN frame carries exactly one fd on its header, but one
#: recv may span several queued frames — size the ancillary buffer so
#: no fd is ever truncated away (fds pair with frames in FIFO order).
_MAX_FDS = 32


def _ctrl_send(sock: socket.socket, op: int, payload: bytes, fd: int | None = None) -> None:
    """Write one control frame; ``fd`` rides the header as ancillary."""
    header = _CTRL_HEADER.pack(op, len(payload))
    if fd is None:
        sock.sendall(header)
    else:
        sent = socket.send_fds(sock, [header], [fd])
        # The 5-byte header fits any socket buffer; a partial send here
        # would desynchronise the channel, so treat it as fatal.
        if sent != len(header):
            raise OSError("short control send")
    if payload:
        sock.sendall(payload)


class _ControlChannel:
    """Buffered reader for control frames, collecting passed fds."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buf = bytearray()
        self._fds: list[int] = []

    def _fill(self, need: int) -> bool:
        while len(self._buf) < need:
            data, fds, _flags, _addr = socket.recv_fds(
                self.sock, 65536, _MAX_FDS
            )
            if not data and not fds:
                return False
            self._fds.extend(fds)
            self._buf += data
        return True

    def read(self) -> tuple[int, bytes, int | None] | None:
        """Next ``(op, payload, fd)``; ``None`` on clean EOF."""
        if not self._fill(_CTRL_HEADER.size):
            if self._buf:
                raise OSError("control channel closed mid-frame")
            return None
        op, length = _CTRL_HEADER.unpack_from(bytes(self._buf[:_CTRL_HEADER.size]))
        if not self._fill(_CTRL_HEADER.size + length):
            raise OSError("control channel closed mid-frame")
        payload = bytes(self._buf[_CTRL_HEADER.size:_CTRL_HEADER.size + length])
        del self._buf[:_CTRL_HEADER.size + length]
        fd = self._fds.pop(0) if self._fds else None
        return op, payload, fd


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------


class HashRing:
    """Consistent-hash router: session id → worker slot.

    Classic ring with virtual nodes, hashed with md5 so the mapping is
    deterministic across processes and runs (Python's builtin ``hash``
    is salted per process).  Properties the service leans on:

    * **stability** — the same session id maps to the same slot for a
      fixed worker count, in every process, forever: a resuming client
      always reaches the worker that can see its checkpoint, and a
      restarted worker inherits exactly its predecessor's sessions;
    * **minimal disruption** — changing the worker count N remaps only
      ≈1/N of the id space (virtual nodes interleave the slots), so a
      scaled fleet re-routes a slice, not the world.
    """

    def __init__(self, slots: int, replicas: int = DEFAULT_REPLICAS) -> None:
        if slots < 1:
            raise ValueError("need at least one slot")
        if replicas < 1:
            raise ValueError("need at least one replica per slot")
        self.slots = slots
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for slot in range(slots):
            for replica in range(replicas):
                point = self._hash(f"worker-{slot}-{replica}")
                points.append((point, slot))
        points.sort()
        self._points = points
        self._hashes = [p for p, _ in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.md5(key.encode("utf-8")).digest()[:8], "big"
        )

    def slot(self, session_id: str) -> int:
        """The worker slot owning ``session_id``."""
        from bisect import bisect_right

        point = self._hash(session_id)
        i = bisect_right(self._hashes, point)
        if i == len(self._points):
            i = 0  # wrap around the ring
        return self._points[i][1]


# ----------------------------------------------------------------------
# Worker handles (acceptor side)
# ----------------------------------------------------------------------


class _WorkerHandle:
    """One live worker process: subprocess + control channel + port."""

    __slots__ = ("slot", "proc", "ctrl", "channel", "port", "pid", "lock", "dead")

    def __init__(self, slot: int, proc: subprocess.Popen,
                 ctrl: socket.socket, port: int | None) -> None:
        self.slot = slot
        self.proc = proc
        self.ctrl = ctrl
        self.channel = _ControlChannel(ctrl)
        self.port = port
        self.pid = proc.pid
        #: Serialises control-channel request/response pairs (STAT) and
        #: handover sends, so frames from concurrent acceptor threads
        #: never interleave on the socketpair.
        self.lock = threading.Lock()
        self.dead = False

    def close(self) -> None:
        try:
            self.ctrl.close()
        except OSError:
            pass


class ShardedAnalysisServer:
    """The acceptor: listener + router + supervisor + stats merger.

    Same constructor vocabulary as
    :class:`~repro.service.server.AnalysisServer`, with ``workers``
    now meaning shared-nothing worker *processes* and ``threads`` the
    analysis thread pool inside each worker.  ``start()`` spawns the
    workers and the accept/supervisor threads; ``shutdown(drain=True)``
    releases the endpoint first, then drains every worker.
    """

    def __init__(
        self,
        *,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        workers: int = 2,
        threads: int = 2,
        queue_blocks: int = 8,
        idle_timeout: float | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
        throttle: float = 0.0,
        finish_shards: int = 0,
        finish_predict: bool = False,
        registry: MetricsRegistry | None = None,
        replicas: int = DEFAULT_REPLICAS,
        logger=None,
        log_file: str | None = None,
        log_level: str | None = None,
        trace_dir: str | None = None,
    ) -> None:
        if (socket_path is None) == (host is None or port is None):
            raise ValueError("pass either socket_path or host+port")
        if workers < 1:
            raise ValueError("need at least one worker process")
        self.socket_path = socket_path
        self.workers = workers
        self.threads = threads
        self.queue_blocks = queue_blocks
        self.idle_timeout = idle_timeout
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.throttle = throttle
        #: Forwarded to every worker process: FINISH-time sharded
        #: re-analysis fan-out (0 = off).
        self.finish_shards = finish_shards
        #: Forwarded to every worker process: FINISH-time predictive
        #: post-pass (replay the session spool under the ``predictive``
        #: profile and append predicted findings to the report).
        self.finish_predict = finish_predict
        self.ring = HashRing(workers, replicas)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry_lock = threading.Lock()
        #: Structured logger for the acceptor's own edges (route,
        #: handover, redirect, supervisor); workers get their own via
        #: ``log_file``/``log_level``, forwarded on their command line
        #: (a subprocess cannot share a Python logger object).
        self.log = (logger if logger is not None else NULL_LOGGER).bind(
            worker_id="acceptor"
        )
        self.log_file = log_file
        self.log_level = log_level
        #: Directory each worker writes its Chrome trace into at
        #: shutdown (``trace-w<slot>-<pid>.json``), merged offline by
        #: ``repro trace merge``.
        self.trace_dir = trace_dir

        if socket_path is not None:
            if os.path.exists(socket_path):
                os.unlink(socket_path)
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(socket_path)
            self._host = None
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._host = self._listener.getsockname()[0]
        self._listener.listen(128)

        #: Fresh-session counter — the acceptor owns the id space so
        #: ids are unique across workers; seeded past any resumable
        #: checkpoint a prior incarnation (of any worker) left behind.
        self._next_session = 0
        if checkpoint_dir:
            self._next_session = CheckpointStore(checkpoint_dir).max_session_seq()
        self._id_lock = threading.Lock()

        self._slots: list[_WorkerHandle | None] = [None] * workers
        self._slots_lock = threading.Lock()
        #: Per-slot supervisor restart counts (the ``/workers`` view).
        self._restarts: dict[int, int] = {s: 0 for s in range(workers)}
        self._conns: set[socket.socket] = set()
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._drained = threading.Event()
        self._started = False

        self._m_workers = self.registry.gauge(
            "repro_service_workers",
            help="Worker processes currently alive",
            merge="last",
        )
        self._m_routed = self.registry.counter(
            "repro_service_routed_sessions_total",
            help="Sessions routed to a worker by the acceptor",
        )
        self._m_redirects = self.registry.counter(
            "repro_service_redirects_total",
            help="TCP sessions redirected to a per-worker port",
        )
        self._m_restarts = self.registry.counter(
            "repro_service_worker_restarts_total",
            help="Worker processes restarted by the supervisor",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int] | str:
        if self.socket_path is not None:
            return self.socket_path
        return self._listener.getsockname()

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for slot in range(self.workers):
            self._slots[slot] = self._spawn_worker(slot)
        self._m_workers.set(self.workers)
        for target, name in (
            (self._accept_loop, "repro-shard-accept"),
            (self._supervisor_loop, "repro-shard-supervisor"),
        ):
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)

    def serve_forever(self) -> None:
        self.start()
        self._drained.wait()

    def shutdown(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the service: release the endpoint *first* (a restart on
        the same path/port must never race the drain), then drain or
        kill the workers."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        self.log.info("drain_begin" if drain else "stop", drain=drain)
        try:
            self._listener.close()
        except OSError:
            pass
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        with self._slots_lock:
            handles = [h for h in self._slots if h is not None]
        for handle in handles:
            if drain:
                try:
                    with handle.lock:
                        _ctrl_send(
                            handle.ctrl, OP_SHUTDOWN,
                            json.dumps(
                                {"drain": True, "timeout": timeout}
                            ).encode("utf-8"),
                        )
                except OSError:
                    pass
            else:
                handle.proc.kill()
        deadline = time.monotonic() + timeout
        for handle in handles:
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                handle.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.proc.kill()
                handle.proc.wait(timeout=5.0)
            handle.close()
        for conn in list(self._conns):
            try:
                conn.close()
            except OSError:
                pass
        self._m_workers.set(0)
        self.log.info("drain_end" if drain else "stopped")
        self._drained.set()

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------

    def _spawn_worker(self, slot: int) -> _WorkerHandle:
        parent, child = socket.socketpair()
        # ``-c`` rather than ``-m``: the package __init__ imports this
        # module, and runpy would warn about re-executing a module
        # already in sys.modules.
        cmd = [
            sys.executable, "-c",
            "from repro.service.shard import worker_main; "
            "raise SystemExit(worker_main())",
            "--slot", str(slot),
            "--control-fd", str(child.fileno()),
            "--threads", str(self.threads),
            "--queue-blocks", str(self.queue_blocks),
        ]
        if self._host is not None:
            cmd += ["--host", self._host]
        if self.idle_timeout:
            cmd += ["--idle-timeout", str(self.idle_timeout)]
        if self.checkpoint_dir:
            cmd += ["--checkpoint-dir", self.checkpoint_dir]
        if self.checkpoint_every:
            cmd += ["--checkpoint-every", str(self.checkpoint_every)]
        if self.throttle:
            cmd += ["--throttle", str(self.throttle)]
        if self.finish_shards:
            cmd += ["--finish-shards", str(self.finish_shards)]
        if self.finish_predict:
            cmd += ["--finish-predict"]
        if self.log_file:
            cmd += ["--log-file", self.log_file]
        if self.log_level:
            cmd += ["--log-level", self.log_level]
        if self.trace_dir:
            cmd += ["--trace-dir", self.trace_dir]
        # The worker re-imports repro in a fresh interpreter: make sure
        # the package we are running from is importable there even when
        # the parent was launched with a transient sys.path tweak.
        import repro

        pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = pkg_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(cmd, pass_fds=(child.fileno(),), env=env)
        child.close()
        handle = _WorkerHandle(slot, proc, parent, port=None)
        # Block until READY: the worker has bound its port (TCP) and is
        # ingesting; routing to a half-started worker would drop frames.
        parent.settimeout(60.0)
        try:
            frame = handle.channel.read()
        except (OSError, socket.timeout) as exc:
            proc.kill()
            raise RuntimeError(f"shard worker {slot} failed to start") from exc
        finally:
            parent.settimeout(None)
        if frame is None or frame[0] != OP_READY:
            proc.kill()
            raise RuntimeError(f"shard worker {slot} failed to start")
        ready = json.loads(frame[1])
        handle.port = ready.get("port")
        self.log.info(
            "worker_spawn", slot=slot, worker_pid=proc.pid, port=handle.port
        )
        return handle

    def _condemn(self, handle: _WorkerHandle) -> None:
        """Mark a worker unusable after a control-channel failure and
        make sure its process is actually dead, so the supervisor's
        poll sees it and spawns the replacement."""
        handle.dead = True
        try:
            handle.proc.kill()
        except OSError:
            pass

    def _live_handle(self, slot: int, wait: float = 10.0) -> _WorkerHandle:
        """The slot's current worker, waiting out a supervisor restart
        window if the previous incarnation just died."""
        deadline = time.monotonic() + wait
        while True:
            with self._slots_lock:
                handle = self._slots[slot]
            if handle is not None and not handle.dead:
                return handle
            if time.monotonic() > deadline or self._stopping.is_set():
                raise protocol.ProtocolError(
                    f"worker {slot} is unavailable"
                )
            time.sleep(0.05)

    def _supervisor_loop(self) -> None:
        """Restart dead workers in place.  The replacement occupies the
        same hash slot, so every session the casualty owned re-routes
        to the new process and resumes from its checkpoint."""
        while not self._stopping.wait(0.1):
            for slot in range(self.workers):
                with self._slots_lock:
                    handle = self._slots[slot]
                if handle is None or handle.proc.poll() is None:
                    continue
                if self._stopping.is_set():
                    return
                handle.dead = True
                handle.close()
                self._m_restarts.inc()
                self._restarts[slot] = self._restarts.get(slot, 0) + 1
                self.log.warning(
                    "worker_exit", slot=slot, worker_pid=handle.pid,
                    returncode=handle.proc.returncode,
                )
                # Post-mortem first, spawn second: the casualty's flight
                # spool must be renamed away before its replacement
                # starts a fresh one under the same name.
                if self.checkpoint_dir:
                    dump = dump_flight_spool(self.checkpoint_dir, f"w{slot}")
                    if dump is not None:
                        self.log.warning(
                            "flight_dump", slot=slot, path=dump,
                        )
                try:
                    replacement = self._spawn_worker(slot)
                except RuntimeError:
                    self.log.error("worker_respawn_failed", slot=slot)
                    continue  # retry on the next sweep
                with self._slots_lock:
                    self._slots[slot] = replacement

    # ------------------------------------------------------------------
    # Accept + route
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            if conn.family == socket.AF_INET:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conns.add(conn)
            t = threading.Thread(
                target=self._handshake, args=(conn,),
                name="repro-shard-handshake", daemon=True,
            )
            t.start()

    def _handshake(self, conn: socket.socket) -> None:
        """Read frames until the connection declares itself: STAT
        requests are answered in place, the first HELLO routes the
        session and ends the acceptor's involvement."""
        reader = protocol.FrameReader(conn)
        try:
            while True:
                frame = reader.read()
                if frame is None:
                    break
                ftype, payload = frame
                if ftype == protocol.STAT:
                    per_worker = bool(
                        protocol.decode_json(payload).get("per_worker")
                    )
                    protocol.send_json(
                        conn, protocol.STATS,
                        self.stats_payload(per_worker=per_worker),
                    )
                elif ftype == protocol.HELLO:
                    self._route(conn, protocol.decode_json(payload), reader)
                    return
                else:
                    raise protocol.ProtocolError(
                        f"unexpected {protocol.frame_name(ftype)} frame"
                    )
        except protocol.ProtocolError as exc:
            self._send_error(conn, str(exc))
        except (ValueError, KeyError) as exc:
            self._send_error(conn, f"{type(exc).__name__}: {exc}")
        except OSError:
            pass
        finally:
            self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _send_error(self, conn: socket.socket, message: str) -> None:
        try:
            protocol.send_json(conn, protocol.ERROR, {"error": message})
        except OSError:
            pass

    def _assign_id(self) -> str:
        with self._id_lock:
            self._next_session += 1
            return f"s{self._next_session:04d}"

    def _route(self, conn: socket.socket, hello: dict,
               reader: protocol.FrameReader) -> None:
        """Consistent-hash the session id and hand the connection over."""
        session_id = hello.get("session")
        if session_id is None:
            # Fresh session: the acceptor assigns the id (so it can
            # route before any worker is involved) and validates the
            # config early — a bad name fails here, not after a
            # redirect round-trip.
            from repro.api.profiles import profile

            config = hello.get("config", "hwlc+dr")
            profile(config)
            session_id = self._assign_id()
            hello = {"config": config, "assign": session_id}
        # Session-scoped trace id, minted here (the one process that
        # sees every session) and stamped into the rewritten HELLO so
        # it reaches the owning worker over either transport — the
        # SCM_RIGHTS payload carries the hello verbatim, and a
        # redirected client re-sends the acceptor's hello as-is.
        if "trace" not in hello:
            hello = dict(hello)
            hello["trace"] = f"{session_id}-{os.urandom(4).hex()}"
        slot = self.ring.slot(session_id)
        handle = self._live_handle(slot)
        self._m_routed.inc()
        if self.socket_path is not None:
            self.log.info(
                "route", session=session_id, slot=slot,
                worker_pid=handle.pid, transport="handover",
                trace=hello["trace"],
            )
            self._handover(handle, conn, hello, reader.leftover())
        else:
            self._m_redirects.inc()
            self.log.info(
                "route", session=session_id, slot=slot,
                worker_pid=handle.pid, transport="redirect",
                port=handle.port, trace=hello["trace"],
            )
            protocol.send_json(
                conn, protocol.REDIRECT,
                {"host": self._host, "port": handle.port, "hello": hello},
            )
        self._conns.discard(conn)
        try:
            conn.close()  # the worker owns its own duplicate (unix) or
        except OSError:   # a fresh connection (tcp) from here on
            pass

    def _handover(self, handle: _WorkerHandle, conn: socket.socket,
                  hello: dict, leftover: bytes) -> None:
        """Pass the accepted connection to a worker over SCM_RIGHTS,
        retrying across a supervisor restart if the worker just died."""
        payload = json.dumps({
            "hello": hello,
            "leftover": base64.b64encode(leftover).decode("ascii"),
        }).encode("utf-8")
        deadline = time.monotonic() + 10.0
        while True:
            try:
                with handle.lock:
                    _ctrl_send(handle.ctrl, OP_CONN, payload, fd=conn.fileno())
                return
            except OSError:
                self._condemn(handle)
                if time.monotonic() > deadline:
                    raise protocol.ProtocolError(
                        f"worker {handle.slot} is unavailable"
                    )
                handle = self._live_handle(handle.slot)

    # ------------------------------------------------------------------
    # Stats merge (the control pipe's other job)
    # ------------------------------------------------------------------

    def worker_snapshots(self) -> dict[str, dict]:
        """Each live worker's metrics snapshot, keyed ``w<slot>``.

        A worker mid-restart simply drops out of this round — its
        counters are process-local and died with it; the sessions
        themselves survive in checkpoints, not in metrics.
        """
        snapshots: dict[str, dict] = {}
        with self._slots_lock:
            handles = [h for h in self._slots if h is not None and not h.dead]
        for handle in handles:
            try:
                with handle.lock:
                    handle.ctrl.settimeout(10.0)
                    try:
                        _ctrl_send(handle.ctrl, OP_STAT, b"")
                        frame = handle.channel.read()
                    finally:
                        handle.ctrl.settimeout(None)
            except OSError:
                self._condemn(handle)
                continue
            if frame is None or frame[0] != OP_STATS:
                continue
            snapshots[f"w{handle.slot}"] = json.loads(frame[1])
        return snapshots

    def stats_payload(self, *, per_worker: bool = False) -> dict:
        """Merged service metrics; with ``per_worker``, also the raw
        per-process snapshots the merge was built from."""
        with self.registry_lock:
            acceptor = self.registry.snapshot()
        workers = self.worker_snapshots()
        merged = merge_snapshots([acceptor, *workers.values()])
        if per_worker:
            return {"merged": merged, "workers": workers}
        return merged

    # ------------------------------------------------------------------
    # Admin-plane introspection
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once shutdown has begun (the ``/readyz`` signal)."""
        return self._stopping.is_set()

    def worker_sessions(self) -> dict[str, list[dict]]:
        """Each live worker's session introspection, keyed ``w<slot>``
        (same drop-out semantics as :meth:`worker_snapshots`)."""
        result: dict[str, list[dict]] = {}
        with self._slots_lock:
            handles = [h for h in self._slots if h is not None and not h.dead]
        for handle in handles:
            try:
                with handle.lock:
                    handle.ctrl.settimeout(10.0)
                    try:
                        _ctrl_send(handle.ctrl, OP_SESSIONS, b"")
                        frame = handle.channel.read()
                    finally:
                        handle.ctrl.settimeout(None)
            except OSError:
                self._condemn(handle)
                continue
            if frame is None or frame[0] != OP_SESSIONS:
                continue
            result[f"w{handle.slot}"] = json.loads(frame[1])
        return result

    def sessions_payload(self) -> list[dict]:
        """Every live session across all workers (the ``/sessions``
        body): each entry already names its owning worker."""
        sessions: list[dict] = []
        for entries in self.worker_sessions().values():
            sessions.extend(entries)
        return sorted(sessions, key=lambda d: d["session"])

    def workers_payload(self) -> list[dict]:
        """Per-worker-process view (the ``/workers`` body)."""
        out: list[dict] = []
        with self._slots_lock:
            slots = list(self._slots)
        for slot, handle in enumerate(slots):
            entry = {
                "worker": f"w{slot}",
                "slot": slot,
                "restarts": self._restarts.get(slot, 0),
                "threads": self.threads,
            }
            if handle is None:
                entry.update(pid=None, alive=False, port=None)
            else:
                entry.update(
                    pid=handle.pid,
                    alive=not handle.dead and handle.proc.poll() is None,
                    port=handle.port,
                )
            out.append(entry)
        return out


# ----------------------------------------------------------------------
# Worker entry point (``python -m repro.service.shard``)
# ----------------------------------------------------------------------


def worker_main(argv: list[str] | None = None) -> int:
    """Run one shard worker: a listener-less (unix) or own-port (TCP)
    :class:`~repro.service.server.AnalysisServer` driven by the
    acceptor's control channel."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-shard-worker",
        description="internal: one worker process of `repro serve`",
    )
    parser.add_argument("--slot", type=int, required=True)
    parser.add_argument("--control-fd", type=int, required=True)
    parser.add_argument("--host", default=None)
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--queue-blocks", type=int, default=8)
    parser.add_argument("--idle-timeout", type=float, default=None)
    parser.add_argument("--checkpoint-dir", default=None)
    parser.add_argument("--checkpoint-every", type=int, default=0)
    parser.add_argument("--throttle", type=float, default=0.0)
    parser.add_argument("--finish-shards", type=int, default=0)
    parser.add_argument("--finish-predict", action="store_true")
    parser.add_argument("--log-file", default=None)
    parser.add_argument("--log-level", default=None)
    parser.add_argument("--trace-dir", default=None)
    args = parser.parse_args(argv)

    # The acceptor owns this process's lifecycle.  A terminal Ctrl-C
    # (SIGINT to the whole foreground process group) or a group-wide
    # SIGTERM must not kill workers out from under the acceptor's
    # drain — shutdown arrives as OP_SHUTDOWN (or control-channel EOF),
    # and the supervisor escalates to SIGKILL for stragglers.
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)

    from repro.service.server import AnalysisServer
    from repro.telemetry.logs import (
        FlightRecorder,
        StructuredLogger,
        flight_spool_path,
    )
    from repro.telemetry.tracing import Tracer

    worker_id = f"w{args.slot}"
    # The flight recorder needs a durable home; the checkpoint dir is
    # the one directory every worker already shares with the acceptor.
    flight = None
    if args.checkpoint_dir:
        flight = FlightRecorder(
            spool_path=flight_spool_path(args.checkpoint_dir, worker_id)
        )
    stream = None
    if args.log_file:
        try:
            stream = open(args.log_file, "a", encoding="utf-8")
        except OSError:
            stream = None
    logger = None
    if stream is not None or flight is not None:
        logger = StructuredLogger(
            stream, level=args.log_level or "info", ring=flight
        )
    tracer = None
    trace_out = None
    if args.trace_dir:
        tracer = Tracer(pid=os.getpid(), process_name=worker_id)
        trace_out = os.path.join(
            args.trace_dir, f"trace-{worker_id}-{os.getpid()}.json"
        )

    ctrl = socket.socket(fileno=args.control_fd)
    kwargs = dict(
        workers=args.threads,
        queue_blocks=args.queue_blocks,
        idle_timeout=args.idle_timeout,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        throttle=args.throttle,
        finish_shards=args.finish_shards,
        finish_predict=args.finish_predict,
        worker_id=worker_id,
        logger=logger,
        flight=flight,
        tracer=tracer,
        trace_out=trace_out,
    )
    if args.host is not None:
        server = AnalysisServer(host=args.host, port=0, **kwargs)
        port = server.address[1]
    else:
        server = AnalysisServer(listen=False, **kwargs)
        port = None
    server.start()
    server.log.info("worker_ready", slot=args.slot, port=port)
    _ctrl_send(
        ctrl, OP_READY,
        json.dumps({"pid": os.getpid(), "port": port}).encode("utf-8"),
    )

    channel = _ControlChannel(ctrl)
    while True:
        try:
            frame = channel.read()
        except OSError:
            frame = None
        if frame is None:
            # Acceptor vanished (crash/kill): persist what we can and
            # go down with it.
            server.shutdown(drain=True, timeout=10.0)
            if flight is not None:
                flight.close(delete=True)
            return 0
        op, payload, fd = frame
        if op == OP_CONN:
            if fd is None:
                continue  # fd lost in transit; the client will retry
            body = json.loads(payload)
            conn = socket.socket(fileno=fd)
            server.adopt_connection(
                conn,
                hello=body.get("hello"),
                leftover=base64.b64decode(body.get("leftover", "")),
            )
        elif op == OP_STAT:
            with server.registry_lock:
                snapshot = server.registry.snapshot()
            _ctrl_send(
                ctrl, OP_STATS,
                json.dumps(snapshot, separators=(",", ":")).encode("utf-8"),
            )
        elif op == OP_SESSIONS:
            _ctrl_send(
                ctrl, OP_SESSIONS,
                json.dumps(
                    server.sessions_payload(), separators=(",", ":")
                ).encode("utf-8"),
            )
        elif op == OP_SHUTDOWN:
            body = json.loads(payload) if payload else {}
            server.shutdown(
                drain=bool(body.get("drain", True)),
                timeout=float(body.get("timeout", 30.0)),
            )
            # Clean exit: remove the spool so no stale post-mortem
            # survives a healthy drain (a surviving spool *means* crash).
            if flight is not None:
                flight.close(delete=True)
            return 0
        # Unknown ops are ignored: a newer acceptor may speak a
        # superset; the worker must never die over it.


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(worker_main())
