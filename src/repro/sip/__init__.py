"""The application under test: a simulated SIP proxy server.

The paper's subject is "a signaling server application for the Session
Initiation Protocol (SIP) that is used for Voice-over-IP (VoIP) phone
networks", ~500 kLOC of C++, thread-per-request, POSIX threads (§3.3).
This package rebuilds the parts of such a server that the evaluation
depends on:

``repro.sip.message`` / ``repro.sip.parser``
    SIP requests/responses, their headers, and a wire-format parser.
``repro.sip.transaction``
    RFC 3261-flavoured transaction state machines (INVITE and
    non-INVITE) — the polymorphic object hierarchy whose destruction
    produces the §4.2.1 warnings.
``repro.sip.bugs``
    The registry of *injected real bugs*, one per §4.1 class: the racy
    home-grown deadlock detector, initialisation- and shutdown-order
    races, the ``getDomainData`` return-of-reference (Figure 7), unsafe
    ``localtime``, and unlocked statistics counters.  Each bug is
    toggleable so experiments can run the buggy and the fixed proxy.
``repro.sip.server``
    The proxy itself, written against the guest API: thread-per-request
    or thread-pool dispatch, a locked transaction table, registrar and
    domain-data services, COW-string header handling, annotated or
    un-annotated ``delete`` sites (the §3.3 build switch).
``repro.sip.workload``
    The SIPp analogue: scenario generators and the eight test cases
    T1-T8 of the evaluation.
"""

from repro.sip.bugs import BUGS, Bug
from repro.sip.message import Header, SipMessage
from repro.sip.parser import parse_message, serialize_message
from repro.sip.server import ProxyConfig, ProxyResult, SipProxy
from repro.sip.transaction import TransactionState
from repro.sip.workload import TestCase, scenario_calls, evaluation_cases

__all__ = [
    "BUGS",
    "Bug",
    "Header",
    "ProxyConfig",
    "ProxyResult",
    "SipMessage",
    "SipProxy",
    "TestCase",
    "TransactionState",
    "parse_message",
    "scenario_calls",
    "serialize_message",
    "evaluation_cases",
]
