"""The injected real-bug registry — §4.1's true-positive classes.

The paper's evaluation found genuine synchronisation failures in the
proxy; each class it documents is reproduced here as a *toggleable*
fault so experiments can run the buggy server (the paper's subject) or
the fixed one (the regression check).  The server consults
``bug_enabled(config, id)``; when a bug is off, the correct code path
(locking, reentrant API, proper ordering) runs instead.

Bug ids and their §4.1 provenance:

``deadlock-detector``
    "One of the first reported data races was in the application's
    deadlock detection code."  The proxy's home-grown lock wrapper
    records who is waiting for which lock in unprotected bookkeeping
    words so a watchdog can time out — the bookkeeping itself races.
``init-order``
    §4.1.1: "a thread is started before parts of the data structures it
    uses are initialized ... In the 'usual' environment, the fault would
    not occur often enough to attract attention."  The statistics
    flusher thread starts before the statistics configuration words are
    written.
``shutdown-order``
    §4.1.1: "On program shutdown, another data-race occurred, because a
    data structure was destroyed before a thread using it terminated."
``return-reference``
    §4.1.2 / Figure 7: ``getDomainData()`` takes the guard mutex but
    returns a *reference* to the protected map, so every caller touches
    the map unprotected.
``unsafe-localtime``
    §4.1.3: logging uses ``localtime()`` whose static buffer is shared
    by all threads.
``unlocked-stats``
    The "groups [of faults] that stem from the same origin" catch-all:
    per-request statistics counters incremented without the lock from
    many handler sites.

Two further bugs are *latent*: seeded so that no live run manifests
them (host-side pacing keeps the dangerous interleavings out of reach
of every schedule the VM can pick), which is precisely what the
predictive tier (:mod:`repro.detectors.predict`) exists to catch.
They are excluded from :data:`DEFAULT_BUGS` and the Figure 5/6
evaluation set and enabled only by the T9/T10 predictive cases:

``latent-lock-order``
    A maintenance audit takes registrar → domain while the domain
    refresher's *helper thread* takes domain → registrar — the second
    half of the inversion crosses a thread boundary (the refresher
    spawns the helper while holding the domain lock), so no
    single-thread lock graph ever sees the cycle.
``latent-unguarded-write``
    A warm-up write populates a statistics probe word without the
    statistics lock before publishing it; every later reader locks
    properly.  Eraser-style detectors forgive the first-toucher
    (EXCLUSIVE warm-up), so no live run warns.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Bug",
    "BUGS",
    "ALL_BUG_IDS",
    "DEFAULT_BUGS",
    "EVALUATION_BUGS",
    "LATENT_BUG_IDS",
]


@dataclass(frozen=True, slots=True)
class Bug:
    """One injectable fault."""

    bug_id: str
    title: str
    paper_ref: str
    description: str
    fix: str
    #: Detectable by a race detector directly (False for init-order,
    #: which the paper says was found via the changed schedule, not a
    #: warning at the bug site... it *is* also a race, so True here
    #: means "some detector configuration reports a location for it").
    race_detectable: bool = True


BUGS: dict[str, Bug] = {
    bug.bug_id: bug
    for bug in (
        Bug(
            bug_id="deadlock-detector",
            title="Race in the application's own deadlock detection",
            paper_ref="§4.1 (first reported data race)",
            description=(
                "The AppMutex wrapper records the waiting thread and a "
                "wait-start tick in shared bookkeeping words without any "
                "protection, so concurrent lock() calls race on them."
            ),
            fix="Guard the bookkeeping with its own mutex (or drop it, "
            "as the authors did: 'it was disabled for further "
            "experiments').",
        ),
        Bug(
            bug_id="init-order",
            title="Thread started before its data is initialised",
            paper_ref="§4.1.1",
            description=(
                "The statistics flusher thread is spawned before the "
                "reporting interval and enable flag are stored; under an "
                "unlucky schedule it reads defaults and misbehaves."
            ),
            fix="Initialise the configuration before spawning the thread.",
        ),
        Bug(
            bug_id="shutdown-order",
            title="Data structure destroyed before its user terminates",
            paper_ref="§4.1.1",
            description=(
                "Shutdown tears down the statistics block while the "
                "flusher thread may still read it."
            ),
            fix="Join the flusher before destroying shared structures.",
        ),
        Bug(
            bug_id="return-reference",
            title="getDomainData() returns a reference to guarded data",
            paper_ref="§4.1.2, Figure 7",
            description=(
                "The accessor locks the guard mutex but returns the map "
                "itself; callers then read and write it unprotected."
            ),
            fix="Return a copy, or change the signature so callers hold "
            "the lock across their use (the paper notes this forces all "
            "call sites to change).",
        ),
        Bug(
            bug_id="unsafe-localtime",
            title="localtime() static buffer shared across threads",
            paper_ref="§4.1.3",
            description=(
                "Request logging formats timestamps with localtime(), "
                "whose result lives in one static buffer."
            ),
            fix="Use localtime_r() with a per-call buffer.",
        ),
        Bug(
            bug_id="unlocked-stats",
            title="Statistics counters incremented without the lock",
            paper_ref="§4.1 (fault groups with a common origin)",
            description=(
                "Per-method request counters are bumped from every "
                "handler without taking the statistics mutex."
            ),
            fix="Take the statistics mutex (or use atomic increments).",
        ),
        Bug(
            bug_id="latent-lock-order",
            title="Lock-order inversion across a helper thread",
            paper_ref="predictive tier (beyond §3.3's live lock graph)",
            description=(
                "The registrar audit takes registrar → domain; the "
                "domain refresher spawns a helper *while holding the "
                "domain lock* and the helper takes the registrar lock — "
                "domain → registrar, completed in another thread.  The "
                "run schedule keeps the two phases apart, so the "
                "deadlock never fires live."
            ),
            fix="Take both locks in the registrar → domain hierarchy "
            "order everywhere (the helper must not acquire the "
            "registrar lock under an inherited domain lock).",
            race_detectable=False,
        ),
        Bug(
            bug_id="latent-unguarded-write",
            title="Unguarded warm-up write to a guarded word",
            paper_ref="predictive tier (Eraser's EXCLUSIVE warm-up blind spot)",
            description=(
                "A probe word is populated without the statistics lock "
                "before being published to a reader that locks "
                "correctly; the first-toucher warm-up keeps every live "
                "lock-set run silent."
            ),
            fix="Take the statistics lock around the warm-up store as "
            "well.",
            race_detectable=False,
        ),
    )
}

ALL_BUG_IDS = frozenset(BUGS)

#: Latent faults: never manifest live, only the predictive tier's
#: offline post-pass reports them (T9/T10).
LATENT_BUG_IDS = frozenset({"latent-lock-order", "latent-unguarded-write"})

#: What the paper's subject looked like: everything broken (the latent
#: seeds are ours, not the paper's, and stay opt-in).
DEFAULT_BUGS = ALL_BUG_IDS - LATENT_BUG_IDS

#: The configuration of the measured experiments.  §4.1: the race in the
#: application's own deadlock-detection code "was not easy to change in
#: order to remove the race condition.  Therefore, it was disabled for
#: further experiments" — so the Figure 5/6 runs exclude it.
EVALUATION_BUGS = ALL_BUG_IDS - LATENT_BUG_IDS - {"deadlock-detector"}
