"""SIP message model (RFC 3261 subset).

Host-level value objects for SIP requests and responses — the *wire*
representation.  The proxy re-materialises the interesting parts in
guest memory (COW strings, transaction objects); these classes are what
the workload generator produces and the parser/serializer round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Header", "SipMessage", "METHODS", "RESPONSE_PHRASES"]

#: The request methods the proxy understands.
METHODS = (
    "INVITE",
    "ACK",
    "BYE",
    "CANCEL",
    "REGISTER",
    "OPTIONS",
    "SUBSCRIBE",
    "NOTIFY",
    "INFO",
)

RESPONSE_PHRASES = {
    100: "Trying",
    180: "Ringing",
    200: "OK",
    202: "Accepted",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    481: "Call/Transaction Does Not Exist",
    483: "Too Many Hops",
    486: "Busy Here",
    500: "Server Internal Error",
    603: "Decline",
}


@dataclass(frozen=True, slots=True)
class Header:
    """One SIP header field."""

    name: str
    value: str

    def __str__(self) -> str:
        return f"{self.name}: {self.value}"


@dataclass(slots=True)
class SipMessage:
    """A SIP request (``method`` set) or response (``status`` set)."""

    method: str | None = None
    request_uri: str = ""
    status: int | None = None
    reason: str = ""
    headers: list[Header] = field(default_factory=list)
    body: str = ""

    # ------------------------------------------------------------------

    @property
    def is_request(self) -> bool:
        return self.method is not None

    @property
    def is_response(self) -> bool:
        return self.status is not None

    def header(self, name: str) -> str | None:
        """First header value with the given (case-insensitive) name."""
        wanted = name.lower()
        for h in self.headers:
            if h.name.lower() == wanted:
                return h.value
        return None

    def all_headers(self, name: str) -> list[str]:
        wanted = name.lower()
        return [h.value for h in self.headers if h.name.lower() == wanted]

    def with_header(self, name: str, value: str) -> "SipMessage":
        """Copy with one header prepended (proxies prepend Via)."""
        return SipMessage(
            method=self.method,
            request_uri=self.request_uri,
            status=self.status,
            reason=self.reason,
            headers=[Header(name, value)] + list(self.headers),
            body=self.body,
        )

    def without_top_header(self, name: str) -> "SipMessage":
        """Copy with the first header of that name removed (Via pop)."""
        wanted = name.lower()
        headers = list(self.headers)
        for i, h in enumerate(headers):
            if h.name.lower() == wanted:
                del headers[i]
                break
        return SipMessage(
            method=self.method,
            request_uri=self.request_uri,
            status=self.status,
            reason=self.reason,
            headers=headers,
            body=self.body,
        )

    # -- the fields the proxy routes on --------------------------------

    @property
    def call_id(self) -> str:
        return self.header("Call-ID") or ""

    @property
    def cseq(self) -> tuple[int, str]:
        """(sequence number, method) from the CSeq header."""
        raw = self.header("CSeq") or "0 UNKNOWN"
        parts = raw.split(None, 1)
        try:
            number = int(parts[0])
        except (ValueError, IndexError):
            number = 0
        method = parts[1].strip() if len(parts) > 1 else "UNKNOWN"
        return number, method

    @property
    def from_uri(self) -> str:
        return self.header("From") or ""

    @property
    def to_uri(self) -> str:
        return self.header("To") or ""

    @property
    def max_forwards(self) -> int:
        raw = self.header("Max-Forwards")
        try:
            return int(raw) if raw is not None else 70
        except ValueError:
            return 70

    @property
    def domain(self) -> str:
        """Domain part of the request URI (``sip:user@domain``)."""
        uri = self.request_uri or self.to_uri
        if "@" in uri:
            uri = uri.rsplit("@", 1)[1]
        for stop in (";", ">", ":5060"):
            if stop in uri:
                uri = uri.split(stop, 1)[0]
        return uri.removeprefix("sip:").strip()

    @property
    def transaction_key(self) -> str:
        """Call-ID + CSeq method: the key the proxy's table uses.

        (Real RFC 3261 matching also involves the Via branch; Call-ID +
        CSeq is enough for our scenarios and keeps keys readable.)
        """
        _, cseq_method = self.cseq
        method = cseq_method if cseq_method != "UNKNOWN" else (self.method or "")
        # ACK and CANCEL address the INVITE transaction.
        if method in ("ACK", "CANCEL"):
            method = "INVITE"
        return f"{self.call_id}/{method}"

    def describe(self) -> str:
        if self.is_request:
            return f"{self.method} {self.request_uri}"
        return f"{self.status} {self.reason}"

    @staticmethod
    def request(
        method: str,
        uri: str,
        *,
        call_id: str,
        cseq: int,
        from_uri: str,
        to_uri: str,
        via: str = "SIP/2.0/UDP client.example.com",
        max_forwards: int = 70,
        extra: list[Header] | None = None,
        body: str = "",
    ) -> "SipMessage":
        """Convenience constructor used by the workload generator."""
        headers = [
            Header("Via", via),
            Header("Max-Forwards", str(max_forwards)),
            Header("From", from_uri),
            Header("To", to_uri),
            Header("Call-ID", call_id),
            Header("CSeq", f"{cseq} {method}"),
        ]
        if extra:
            headers.extend(extra)
        if body:
            headers.append(Header("Content-Length", str(len(body))))
        return SipMessage(
            method=method, request_uri=uri, headers=headers, body=body
        )

    @staticmethod
    def response_to(
        request: "SipMessage", status: int, *, reason: str | None = None
    ) -> "SipMessage":
        """Build a response echoing the request's dialog headers."""
        if reason is None:
            reason = RESPONSE_PHRASES.get(status, "Unknown")
        echoed = [
            Header(h.name, h.value)
            for h in request.headers
            if h.name.lower() in ("via", "from", "to", "call-id", "cseq")
        ]
        return SipMessage(status=status, reason=reason, headers=echoed)
