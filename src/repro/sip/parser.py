"""SIP wire-format parser and serializer (RFC 3261 subset).

Parses the textual format SIPp puts on the wire::

    INVITE sip:bob@biloxi.example.com SIP/2.0\\r\\n
    Via: SIP/2.0/UDP client.example.com\\r\\n
    ...\\r\\n
    \\r\\n
    <body>

Strict on structure (status lines, header colons, Content-Length), and
raises :class:`repro.errors.SipParseError` with a reason on malformed
input — the proxy answers those with 400-class behaviour in its own
error path.
"""

from __future__ import annotations

from repro.errors import SipParseError
from repro.sip.message import Header, SipMessage

__all__ = ["parse_message", "serialize_message"]

_VERSION = "SIP/2.0"


def parse_message(wire: str) -> SipMessage:
    """Parse one SIP message from its wire text."""
    if not wire or not wire.strip():
        raise SipParseError("empty message")
    # Normalise line endings; SIPp uses CRLF.
    text = wire.replace("\r\n", "\n")
    if "\n\n" in text:
        head, body = text.split("\n\n", 1)
    else:
        head, body = text, ""
    lines = head.split("\n")
    start = lines[0].strip()
    headers = _parse_headers(lines[1:])
    message = _parse_start_line(start)
    message.headers = headers
    message.body = _check_body(headers, body)
    _validate(message)
    return message


def _parse_start_line(line: str) -> SipMessage:
    parts = line.split(" ", 2)
    if len(parts) < 3:
        raise SipParseError(f"malformed start line: {line!r}")
    if parts[0] == _VERSION:
        # Status line: SIP/2.0 200 OK
        try:
            status = int(parts[1])
        except ValueError:
            raise SipParseError(f"bad status code in {line!r}") from None
        if not 100 <= status <= 699:
            raise SipParseError(f"status code {status} out of range")
        return SipMessage(status=status, reason=parts[2])
    # Request line: INVITE sip:x SIP/2.0
    method, uri, version = parts
    if version != _VERSION:
        raise SipParseError(f"unsupported version {version!r}")
    if not method.isupper():
        raise SipParseError(f"malformed method {method!r}")
    return SipMessage(method=method, request_uri=uri)


def _parse_headers(lines: list[str]) -> list[Header]:
    headers: list[Header] = []
    for raw in lines:
        if not raw.strip():
            continue
        if raw[0] in " \t" and headers:
            # Folded continuation line (obsolete but legal).
            last = headers[-1]
            headers[-1] = Header(last.name, last.value + " " + raw.strip())
            continue
        if ":" not in raw:
            raise SipParseError(f"malformed header line: {raw!r}")
        name, value = raw.split(":", 1)
        name = name.strip()
        if not name:
            raise SipParseError(f"empty header name in {raw!r}")
        headers.append(Header(name, value.strip()))
    return headers


def _check_body(headers: list[Header], body: str) -> str:
    declared = None
    for h in headers:
        if h.name.lower() == "content-length":
            try:
                declared = int(h.value)
            except ValueError:
                raise SipParseError(f"bad Content-Length {h.value!r}") from None
    if declared is not None and declared != len(body):
        raise SipParseError(
            f"Content-Length {declared} does not match body of {len(body)} bytes"
        )
    return body


def _validate(message: SipMessage) -> None:
    """Minimal RFC 3261 §8.1.1 mandatory-header check for requests."""
    if message.is_request:
        for required in ("Via", "From", "To", "Call-ID", "CSeq"):
            if message.header(required) is None:
                raise SipParseError(f"request missing mandatory header {required}")
        number, cseq_method = message.cseq
        if cseq_method != message.method:
            raise SipParseError(
                f"CSeq method {cseq_method!r} does not match request method "
                f"{message.method!r}"
            )


def serialize_message(message: SipMessage) -> str:
    """Render a message back to wire text (CRLF line endings)."""
    if message.is_request:
        start = f"{message.method} {message.request_uri} {_VERSION}"
    elif message.is_response:
        start = f"{_VERSION} {message.status} {message.reason}"
    else:
        raise SipParseError("message is neither request nor response")
    lines = [start]
    lines.extend(str(h) for h in message.headers)
    return "\r\n".join(lines) + "\r\n\r\n" + message.body
