"""The SIP proxy server — the application under test (§3.3).

A guest program reproducing the architecture the paper describes: a
signalling server that accepts SIP requests, runs them through
transaction state machines, consults a domain-data service and a
registrar, logs, keeps statistics, and answers.  Concurrency comes in
the two flavours the paper discusses:

* ``thread-per-request`` (§3.3): "for each request a new thread is
  created.  This fits well into the thread-segment improvement ..."
* ``thread-pool`` (§4.2.3): "it is planned to utilize patterns that use
  thread pools ... this leads to the problem that the race detection
  algorithm will report more false positives" (Figure 11).

Everything shared lives in guest memory, so the detectors see the same
access patterns Helgrind saw on the real 500 kLOC binary: COW-string
header handling (hardware-lock FPs), polymorphic transaction objects
deleted outside the table lock (destructor FPs), queue hand-offs
(ownership FPs), and — switchable through :mod:`repro.sip.bugs` — the
§4.1 true positives.

The server registers oracle claims (:class:`repro.oracle.GroundTruth`)
for every intentionally-racy-looking range it creates, which is what
lets the experiment harness regenerate the paper's Figure 5 triage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cxx.allocator import AllocStrategy, CxxAllocator
from repro.cxx.containers import CxxMap
from repro.cxx.libc import LibC
from repro.cxx.object_model import CxxObject, delete_object, new_object
from repro.cxx.string import CowString
from repro.errors import SipParseError
from repro.oracle import GroundTruth, WarningCategory
from repro.sip.bugs import ALL_BUG_IDS, DEFAULT_BUGS
from repro.sip.message import METHODS, SipMessage
from repro.sip.parser import parse_message, serialize_message
from repro.sip.transaction import (
    AUTH_STATE,
    CONTACT_LIST,
    DIALOG_STATE,
    HEADER_TABLE,
    SDP_BODY,
    VIA_LIST,
    TransactionContext,
    TransactionError,
    TransactionState,
    build_transaction_classes,
    invite_event,
    non_invite_event,
    transaction_class_for,
)

__all__ = ["ProxyConfig", "ProxyResult", "SipProxy"]

_SRC = "proxy.cpp"

#: Source-line bases per handler, so every handler's accesses carry
#: stable, distinct coordinates (the proxy's "500 kLOC" of distinct
#: sites, condensed).
_HANDLER_LINES = {
    "INVITE": 200,
    "ACK": 260,
    "BYE": 300,
    "CANCEL": 340,
    "REGISTER": 380,
    "OPTIONS": 440,
    "SUBSCRIBE": 480,
    "NOTIFY": 520,
    "INFO": 560,
}


@dataclass(frozen=True, slots=True)
class ProxyConfig:
    """Deployment-time configuration of the proxy.

    ``instrumented`` is the §3.3 build switch: delete sites emit
    ``HG_DESTRUCT`` (the DR improvement's input).  ``force_new_allocator``
    models the ``GLIBCPP_FORCE_NEW`` environment setting the paper says
    must be made "prior to calling Helgrind"; the evaluation runs use it
    so that allocator-reuse noise does not pollute the Figure 6 counts.
    """

    mode: str = "thread-per-request"  # or "thread-pool"
    pool_size: int = 3
    max_threads: int = 64
    bugs: frozenset[str] = DEFAULT_BUGS
    instrumented: bool = False
    force_new_allocator: bool = True
    announce_pool_reuse: bool = False
    domains: tuple[str, ...] = (
        "example.com",
        "biloxi.example.com",
        "atlanta.example.com",
    )
    #: Flusher iterations (the background statistics thread).
    flusher_rounds: int = 3
    #: Transaction-reaper sweeps (0 = no reaper).  Each sweep fires the
    #: RFC 3261 timeout event on every still-live transaction, answering
    #: abandoned dialogs with 408 and destroying them — the cleanup
    #: thread a real proxy runs so lost clients cannot leak state.
    reaper_rounds: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("thread-per-request", "thread-pool"):
            raise ValueError(f"unknown dispatch mode {self.mode!r}")
        unknown = set(self.bugs) - ALL_BUG_IDS
        if unknown:
            raise ValueError(f"unknown bug ids {sorted(unknown)}")

    def has_bug(self, bug_id: str) -> bool:
        return bug_id in self.bugs

    @classmethod
    def fixed(cls, **overrides) -> "ProxyConfig":
        """A proxy with every §4.1 bug repaired."""
        return cls(bugs=frozenset(), **overrides)


@dataclass(slots=True)
class ProxyResult:
    """Observable outcome of one proxy run."""

    responses: list[SipMessage] = field(default_factory=list)
    #: Application-level misbehaviours observed (wrong config read,
    #: destroyed-data read, lock timeout) — the paper's
    #: "non-deterministic failures when run with multiple threads".
    failures: list[str] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)
    handled: int = 0
    stats: dict[str, int] = field(default_factory=dict)

    def responses_for(self, call_id: str) -> list[SipMessage]:
        return [r for r in self.responses if r.call_id == call_id]


class _AppMutex:
    """The application's home-grown lock wrapper (§4.1's first bug).

    Real purpose: application-level deadlock detection — ``lock()``
    spins with ``trylock`` for a bounded number of attempts and reports
    a timeout before falling back to a blocking acquire ("Deadlocks on
    Mutex locks are detected by the application using a timeout while
    trying to acquire a lock inside the lock-function", §3.3).

    The bug: the watchdog bookkeeping (who waits for this lock since
    when) lives in two shared guest words written *without* protection.
    """

    SPIN_LIMIT = 60

    def __init__(self, api, name: str, proxy: "SipProxy") -> None:
        self.mutex = api.mutex(name)
        self.name = name
        self.proxy = proxy
        self.buggy = proxy.config.has_bug("deadlock-detector")
        if self.buggy:
            self.book = api.malloc(2, tag=f"lockwatch.{name}")
            api.store(self.book, -1)  # waiter tid
            api.store(self.book + 1, 0)  # wait-start tick
            if proxy.truth is not None:
                proxy.truth.claim(
                    self.book,
                    2,
                    WarningCategory.TRUE_RACE,
                    note=f"deadlock-watchdog bookkeeping for {name}",
                    bug_id="deadlock-detector",
                )

    def lock(self, api) -> None:
        with api.frame("AppMutex::lock", "appmutex.cpp", 31):
            if api.trylock(self.mutex):
                return  # fast path: uncontended, no watchdog involved
            if self.buggy:
                # Unprotected bookkeeping writes: the §4.1 race.  Only
                # contended acquisitions are recorded (that is all the
                # watchdog cares about).
                api.store(self.book, api.tid)
                api.store(self.book + 1, api.vm.clock)
            for _ in range(self.SPIN_LIMIT):
                if api.trylock(self.mutex):
                    return
                api.yield_()
            # Watchdog fired: report, then block for real.
            self.proxy._record_failure(
                f"lock timeout on {self.name} (thread {api.tid})"
            )
            api.lock(self.mutex)

    def unlock(self, api) -> None:
        with api.frame("AppMutex::unlock", "appmutex.cpp", 58):
            if self.buggy:
                api.store(self.book, -1)
            api.unlock(self.mutex)


class SipProxy:
    """The server.  Entry point: :meth:`main` (run it on a VM).

    One instance describes one deployment; it may be run once.
    """

    def __init__(self, config: ProxyConfig | None = None, *, truth: GroundTruth | None = None) -> None:
        self.config = config or ProxyConfig()
        self.truth = truth
        self.result = ProxyResult()
        #: Host-side dialog pacing state (no guest memory involved).
        self._sent: dict[str, int] = {}
        self._processed: dict[str, int] = {}
        #: Host-side reaper shutdown flag (polled, no guest events).
        self._stop_reaper = False
        # Guest state, populated in main():
        self._alloc: CxxAllocator | None = None
        self._libc: LibC | None = None

    # ------------------------------------------------------------------
    # Guest entry point
    # ------------------------------------------------------------------

    def main(self, api, wire_messages: list[str]) -> ProxyResult:
        """Boot the proxy, serve ``wire_messages``, shut down."""
        config = self.config
        with api.frame("main", _SRC, 30):
            self._alloc = CxxAllocator(
                api,
                strategy=(
                    AllocStrategy.FORCE_NEW
                    if config.force_new_allocator
                    else AllocStrategy.POOL
                ),
                truth=self.truth,
                announce=config.announce_pool_reuse,
            )
            self._libc = LibC(truth=self.truth, bug_id="unsafe-localtime")
            self._classes = build_transaction_classes(
                TransactionContext(
                    allocator=self._alloc,
                    annotate=config.instrumented,
                    truth=self.truth,
                )
            )
            self._boot(api)
            self._spawn_latent(api)
            if config.mode == "thread-per-request":
                self._serve_thread_per_request(api, wire_messages)
            else:
                self._serve_thread_pool(api, wire_messages)
            self._join_latent(api)
            self._shutdown(api)
        return self.result

    # ------------------------------------------------------------------
    # Boot / shutdown
    # ------------------------------------------------------------------

    def _boot(self, api) -> None:
        config = self.config
        with api.frame("ServerBoot::run", _SRC, 50):
            self._table_lock = _AppMutex(api, "transaction-table", self)
            self._domain_lock = _AppMutex(api, "domain-data", self)
            self._registrar_lock = _AppMutex(api, "registrar", self)
            self._stats_lock = _AppMutex(api, "statistics", self)

            # --- statistics block -----------------------------------
            # Layout: [0..8] per-method counters, [9] total, [10] errors,
            # [11] flusher-enabled flag, [12] flush interval,
            # [13] shutdown flag, [14] destroyed sentinel.
            api.at(62)
            self._stats = api.malloc(15, tag="statistics")
            for i in range(15):
                api.store(self._stats + i, 0)  # the BSS zero-fill
            self._method_slot = {m: i for i, m in enumerate(METHODS)}
            if config.has_bug("shutdown-order") and self.truth is not None:
                # Claimed at boot so that the finer-grained counter and
                # config claims registered later take precedence on the
                # words they cover (the oracle resolves newest-first).
                self.truth.claim(
                    self._stats,
                    15,
                    WarningCategory.TRUE_RACE,
                    note="statistics destroyed before the flusher terminated",
                    bug_id="shutdown-order",
                )

            # --- init-order bug (§4.1.1) ----------------------------
            # Buggy: spawn the flusher *before* storing the real
            # configuration; fixed: configure first.
            def configure(at_line: int) -> None:
                api.at(at_line)
                api.store(self._stats + 11, 1)  # enabled
                api.store(self._stats + 12, 5)  # interval

            if config.has_bug("init-order"):
                if self.truth is not None:
                    self.truth.claim(
                        self._stats + 11,
                        2,
                        WarningCategory.TRUE_RACE,
                        note="flusher config written after the flusher started",
                        bug_id="init-order",
                    )
                self._flusher = api.spawn(self._flusher_main, name="stats-flusher")
                configure(74)
            else:
                configure(70)
                self._flusher = api.spawn(self._flusher_main, name="stats-flusher")

            # --- domain data (Figure 7's subject) --------------------
            api.at(80)
            self._domain_map = CxxMap(api, self._alloc)
            self._domain_objects: dict[str, CxxObject] = {}
            self._banner = CowString.create(
                api, "reliable-sip-proxy/1.0", self._alloc, truth=self.truth
            )
            for i, domain in enumerate(config.domains):
                api.at(82)
                name_str = CowString.create(api, domain, self._alloc, truth=self.truth)
                obj = new_object(
                    api,
                    _DOMAIN_DATA,
                    self._alloc,
                    init={
                        "name_rep": name_str.rep,
                        "max_calls": 100,
                        "active_calls": 0,
                        "policy": "allow",
                    },
                )
                self._domain_objects[domain] = obj
                self._domain_map.set(api, domain, obj)
            self._claim_domain_map(api)

            # --- registrar & transaction table ------------------------
            api.at(90)
            self._registrar = CxxMap(api, self._alloc)
            self._bindings: dict[str, CxxObject] = {}
            api.at(92)
            self._transactions = CxxMap(api, self._alloc)
            self._txn_objects: dict[str, CxxObject] = {}
            self._reaper = None
            if config.reaper_rounds > 0:
                self._reaper = api.spawn(self._reaper_main, name="txn-reaper")

    def _shutdown(self, api) -> None:
        config = self.config
        with api.frame("ServerShutdown::run", _SRC, 600):
            if self._reaper is not None:
                self._stop_reaper = True
                api.join(self._reaper)
                # Final deterministic expiry pass: every dialog still in
                # the table after the last request is abandoned by now.
                with api.frame("TransactionReaper::final", _SRC, 668):
                    self._sweep_transactions(api)
            # Final statistics snapshot *before* teardown (untraced
            # peek: host-side reporting, not guest behaviour).
            vm = api.vm
            self.result.stats = {
                method: vm.memory.peek(self._stats + slot) or 0
                for method, slot in self._method_slot.items()
            }
            self.result.stats["total"] = vm.memory.peek(self._stats + 9) or 0
            self.result.stats["errors"] = vm.memory.peek(self._stats + 10) or 0
            if config.has_bug("shutdown-order"):
                # §4.1.1: destroy the statistics while the flusher may
                # still be reading them, then join.  (The oracle claim
                # for this bug is registered at boot.)
                self._destroy_stats(api)
                self._signal_flusher_stop(api)
                api.join(self._flusher)
            else:
                self._signal_flusher_stop(api)
                api.join(self._flusher)
                self._destroy_stats(api)

    def _destroy_stats(self, api) -> None:
        """The 'destructor' of the statistics structure: it scribbles
        over the block (vptr-style) rather than VM-freeing it, so a
        late reader observes garbage instead of crashing the process —
        the non-deterministic failure mode the paper describes."""
        with api.frame("Statistics::~Statistics", _SRC, 620):
            for i in range(15):
                api.store(self._stats + i, "<destroyed>")

    def _signal_flusher_stop(self, api) -> None:
        self._stats_lock.lock(api)
        value = api.load(self._stats + 13)
        api.store(self._stats + 13, 1 if isinstance(value, int) else value)
        self._stats_lock.unlock(api)

    # ------------------------------------------------------------------
    # The statistics flusher thread
    # ------------------------------------------------------------------

    def _flusher_main(self, api) -> None:
        config = self.config
        with api.frame("StatsFlusher::run", _SRC, 130):
            for _ in range(config.flusher_rounds):
                api.at(133)
                enabled = api.load(self._stats + 11)  # the racy config read
                interval = api.load(self._stats + 12)
                if enabled == "<destroyed>" or interval == "<destroyed>":
                    self._record_failure("flusher read destroyed statistics")
                    return
                if enabled == 0:
                    # Saw the pre-initialisation value: the init-order
                    # fault manifesting under this schedule.
                    self._record_failure("flusher saw uninitialised config")
                api.at(140)
                self._stats_lock.lock(api)
                total = api.load(self._stats + 9)
                stop = api.load(self._stats + 13)
                self._stats_lock.unlock(api)
                if total == "<destroyed>":
                    self._record_failure("flusher read destroyed statistics")
                    return
                if stop == 1:
                    return
                api.sleep(max(1, interval if isinstance(interval, int) else 1))

    # ------------------------------------------------------------------
    # The transaction reaper (timeout sweeps)
    # ------------------------------------------------------------------

    def _reaper_main(self, api) -> None:
        """Periodically expire live transactions (RFC 3261 timers).

        Runs until shutdown raises the (host-side) stop flag, bounded by
        ``reaper_rounds`` sweeps per run as a budget backstop.
        """
        with api.frame("TransactionReaper::run", _SRC, 660):
            for _ in range(self.config.reaper_rounds):
                if self._stop_reaper:
                    return
                api.sleep(25)
                self._sweep_transactions(api)

    def _sweep_transactions(self, api) -> None:
        """One expiry sweep: snapshot under the lock (taking a reference
        on every live transaction), fire ``timeout`` on each, release —
        whoever drops the last reference of a newly-terminated
        transaction destroys it, like any handler."""
        api.at(663)
        self._table_lock.lock(api)
        snapshot = list(self._txn_objects.items())
        for _key, obj in snapshot:
            obj.set(api, "refs", obj.get(api, "refs") + 1)
        self._table_lock.unlock(api)
        for key, obj in snapshot:
            self._expire_one(api, key, obj)

    def _expire_one(self, api, key: str, obj) -> None:
        with api.frame("TransactionReaper::expire", _SRC, 672):
            invite = obj.cls.name == "InviteTransaction"
            new_state, status = self._step_state(
                api, obj, "timeout", invite=invite, line=675
            )
            if new_state is TransactionState.TERMINATED:
                if status:  # e.g. 408 Request Timeout for the lost caller
                    self._bump_stat(api, slot=10, site=677)
                    self._record_failure(f"transaction {key} expired ({status})")
                self._mark_zombie(api, key, obj, 679)
            self._release_transaction(api, obj, 681)

    # ------------------------------------------------------------------
    # Latent maintenance routines (the predictive tier's subjects)
    # ------------------------------------------------------------------
    #
    # Both routines pace themselves through *host-side* flags polled via
    # ``api.yield_()`` — the same trick ``_pace_dialog`` uses — so the
    # dangerous interleaving is out of reach of every schedule the VM
    # can pick, yet no happens-before edge exists that would let a live
    # detector excuse (or a predictive one miss) the fault.

    def _spawn_latent(self, api) -> None:
        config = self.config
        self._latent_threads = []
        self._latent_flags: dict[str, bool] = {}
        self._latent_probe = None
        if config.has_bug("latent-lock-order"):
            api.at(700)
            self._latent_threads.append(
                api.spawn(self._latent_audit_main, name="registrar-audit")
            )
            self._latent_threads.append(
                api.spawn(self._latent_refresh_main, name="domain-refresh")
            )
        if config.has_bug("latent-unguarded-write"):
            api.at(752)
            self._latent_probe = api.malloc(1, tag="latent.stats-probe")
            if self.truth is not None:
                self.truth.claim(
                    self._latent_probe,
                    1,
                    WarningCategory.TRUE_RACE,
                    note="probe word warmed up without the statistics lock",
                    bug_id="latent-unguarded-write",
                )
            self._latent_threads.append(
                api.spawn(self._latent_writer_main, name="probe-warmup")
            )
            self._latent_threads.append(
                api.spawn(self._latent_reader_main, name="probe-poll")
            )

    def _join_latent(self, api) -> None:
        for handle in self._latent_threads:
            api.join(handle)
        self._latent_threads = []

    def _latent_audit_main(self, api) -> None:
        """Maintenance audit: registrar -> domain (the hierarchy order)."""
        with api.frame("RegistrarAudit::run", _SRC, 710):
            self._registrar_lock.lock(api)
            api.at(712)
            self._domain_lock.lock(api)
            self._domain_lock.unlock(api)
            self._registrar_lock.unlock(api)
        # Host-side publication: the refresher is paced to run only
        # after the audit is done, so the inverted acquisition order
        # can never collide live.
        self._latent_flags["audit-done"] = True

    def _latent_refresh_main(self, api) -> None:
        """Domain refresh: takes the domain lock, then delegates the
        registrar sync to a helper thread *while still holding it* —
        the inversion's second half lives in the helper."""
        while not self._latent_flags.get("audit-done"):
            api.yield_()
        with api.frame("DomainRefresh::run", _SRC, 720):
            self._domain_lock.lock(api)
            api.at(722)
            helper = api.spawn(self._latent_refresh_helper, name="refresh-helper")
            api.join(helper)
            self._domain_lock.unlock(api)

    def _latent_refresh_helper(self, api) -> None:
        """Runs under the parent's (inherited) domain lock: acquiring
        the registrar lock here completes the domain -> registrar edge
        in another thread, invisible to any per-thread lock graph."""
        with api.frame("DomainRefresh::syncRegistrar", _SRC, 730):
            self._registrar_lock.lock(api)
            self._registrar_lock.unlock(api)

    def _latent_writer_main(self, api) -> None:
        """Warm-up store without the statistics lock — the classic
        Eraser EXCLUSIVE-state blind spot: the word's first toucher."""
        with api.frame("StatsProbe::warmup", _SRC, 760):
            api.at(762)
            api.store(self._latent_probe, 1)
        self._latent_flags["probe-ready"] = True

    def _latent_reader_main(self, api) -> None:
        """Disciplined reader: polls the probe under the statistics
        lock, paced (host-side) to run only after the warm-up."""
        while not self._latent_flags.get("probe-ready"):
            api.yield_()
        with api.frame("StatsProbe::poll", _SRC, 770):
            self._stats_lock.lock(api)
            api.at(772)
            api.load(self._latent_probe)
            self._stats_lock.unlock(api)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _serve_thread_per_request(self, api, wire_messages: list[str]) -> None:
        """§3.3's pattern: one worker thread per incoming request.

        Messages of the same dialog are paced the way SIPp paces them:
        the next request is not sent until the previous one of that
        Call-ID has been answered.  The wait is a host-level poll (no
        guest events), so it orders the workers *in time* without
        creating any happens-before edge a detector could see — the
        protocol-level ordering of §4.4 that the lock-set algorithm is
        blind to.
        """
        active: list = []
        with api.frame("AcceptLoop::run", _SRC, 150):
            for seq, wire in enumerate(wire_messages):
                self._pace_dialog(api, wire)
                api.at(153)
                worker = api.spawn(self._worker_main, wire, seq, name=f"req-{seq}")
                active.append(worker)
                if len(active) >= self.config.max_threads:
                    # The paper: exceeding the maximum number of threads
                    # would make the application fail; we shed load by
                    # joining the oldest worker.
                    api.join(active.pop(0))
            for worker in active:
                api.join(worker)

    def _pace_dialog(self, api, wire: str) -> None:
        """Wait until the dialog's previous message has been processed."""
        try:
            call_id = parse_message(wire).call_id
        except SipParseError:
            return
        already_sent = self._sent.get(call_id, 0)
        if already_sent:
            while self._processed.get(call_id, 0) < already_sent:
                api.yield_()
        self._sent[call_id] = already_sent + 1

    def _serve_thread_pool(self, api, wire_messages: list[str]) -> None:
        """§4.2.3's pattern: a fixed pool consuming a job queue.

        Each job is a guest-memory buffer the acceptor fills and the
        worker drains — the Figure 11 hand-off the lock-set algorithm
        cannot see."""
        config = self.config
        queue = api.queue(name="job-queue")
        workers = [
            api.spawn(self._pool_worker, queue, name=f"pool-{i}")
            for i in range(config.pool_size)
        ]
        with api.frame("AcceptLoop::run", _SRC, 170):
            for seq, wire in enumerate(wire_messages):
                self._pace_dialog(api, wire)
                api.at(173)
                job = api.malloc(2, tag="job")
                api.store(job, wire)
                api.store(job + 1, seq)
                if self.truth is not None:
                    self.truth.claim(
                        job,
                        2,
                        WarningCategory.FP_OWNERSHIP,
                        note="job buffer handed to the pool through the queue",
                    )
                api.put(queue, job)
            for _ in workers:
                api.put(queue, None)
            for worker in workers:
                api.join(worker)

    def _pool_worker(self, api, queue) -> None:
        with api.frame("PoolWorker::run", _SRC, 185):
            while True:
                job = api.get(queue)
                if job is None:
                    return
                api.at(189)
                wire = api.load(job)
                seq = api.load(job + 1)
                api.store(job + 1, -1)  # mark the job claimed/in-progress
                self._handle_wire(api, wire, seq)
                self._alloc_free_job(api, job)

    def _alloc_free_job(self, api, job: int) -> None:
        api.at(195)
        api.free(job)

    def _worker_main(self, api, wire: str, seq: int) -> None:
        with api.frame("RequestWorker::run", _SRC, 160):
            self._handle_wire(api, wire, seq)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def _handle_wire(self, api, wire: str, seq: int) -> None:
        try:
            message = parse_message(wire)
        except SipParseError as exc:
            self.result.parse_errors.append(str(exc))
            self._bump_stat(api, slot=10, site=205)
            return
        try:
            if not message.is_request:
                return  # a proxy forwards responses; out of scope here
            handler = self._handlers().get(message.method)
            if handler is None:
                self._send(api, SipMessage.response_to(message, 405), site=208)
                self._bump_stat(api, slot=10, site=209)
                return
            if message.max_forwards <= 0:
                self._send(api, SipMessage.response_to(message, 483), site=212)
                return
            self._log_request(api, message, seq)
            self._check_domain(api, message)
            handler(api, message)
            self._bump_method_stat(api, message.method)
            self.result.handled += 1
        finally:
            # Host-side completion marker for the accept loop's pacing.
            self._processed[message.call_id] = (
                self._processed.get(message.call_id, 0) + 1
            )

    def _handlers(self):
        return {
            "INVITE": self._handle_invite,
            "ACK": self._handle_ack,
            "BYE": self._handle_bye,
            "CANCEL": self._handle_cancel,
            "REGISTER": self._handle_register,
            "OPTIONS": self._handle_options,
            "SUBSCRIBE": self._handle_subscribe,
            "NOTIFY": self._handle_notify,
            "INFO": self._handle_info,
        }

    # -- common services -------------------------------------------------

    def _log_request(self, api, message: SipMessage, seq: int) -> None:
        """Timestamped request logging — §4.1.3's unsafe localtime."""
        line = 105  # one logging helper in the source
        with api.frame("RequestLog::stamp", _SRC, line):
            if self.config.has_bug("unsafe-localtime"):
                buf = self._libc.localtime(api, 1_100_000_000 + seq)
                api.load(buf + 2)  # hour, for the log line
            else:
                buf = api.malloc(6, tag="tm.local")
                self._libc.localtime_r(api, 1_100_000_000 + seq, buf)
                api.load(buf + 2)
                api.free(buf)

    def _check_domain(self, api, message: SipMessage) -> None:
        """Consult the domain-data service — Figure 7's subject."""
        line = 110  # one policy-check helper in the source
        with api.frame("DomainPolicy::check", _SRC, line):
            domain = message.domain
            if self.config.has_bug("return-reference"):
                # getDomainData(): lock, return the *reference*, unlock.
                domain_map = self._get_domain_data_buggy(api)
                # ... and the caller now uses the map unprotected:
                obj = domain_map.get(api, domain)
                if obj is not None:
                    self._touch_domain(api, obj, line)
                self._claim_domain_map(api)
            else:
                self._domain_lock.lock(api)
                obj = self._domain_map.get(api, domain)
                if obj is not None:
                    self._touch_domain(api, obj, line)
                self._domain_lock.unlock(api)

    def _get_domain_data_buggy(self, api) -> CxxMap:
        """Figure 7, verbatim: the guard is taken and dropped, the
        protected structure escapes by reference."""
        with api.frame("ServerModulesManagerImpl::getDomainData", _SRC, 590):
            self._domain_lock.lock(api)  # MutexPtr mut(m_pMutex); // Guard
            self._domain_lock.unlock(api)
            return self._domain_map  # return m_DomainData;

    def _touch_domain(self, api, obj: CxxObject, line: int) -> None:
        api.at(line)
        name = CowString.from_rep(obj.get(api, "name_rep"), self._alloc, self.truth)
        copy = name.copy(api)  # shared-rep copy: the Figure 8 pattern
        copy.dispose(api)
        active = obj.get(api, "active_calls")
        obj.set(api, "active_calls", active + 1 if isinstance(active, int) else 1)

    def _claim_domain_map(self, api) -> None:
        """Oracle: under the return-reference bug, warnings inside the
        domain map's storage are the Figure 7 true positive."""
        if self.truth is None or not self.config.has_bug("return-reference"):
            return
        buf, cap = self._domain_map.storage_peek(api.vm)
        if cap:
            self.truth.claim(
                buf,
                cap,
                WarningCategory.TRUE_RACE,
                note="domain-data map used through an escaped reference (Fig 7)",
                bug_id="return-reference",
            )
        for obj in self._domain_objects.values():
            self.truth.claim(
                obj.addr,
                obj.cls.size,
                WarningCategory.TRUE_RACE,
                note="DomainData object reached through the escaped map",
                bug_id="return-reference",
            )

    def _bump_method_stat(self, api, method: str) -> None:
        # Each handler's source has its own counter-bump statement (the
        # per-method line); the grand total is bumped by one shared line.
        slot = self._method_slot.get(method, 10)
        self._bump_stat(api, slot=slot, site=_HANDLER_LINES.get(method, 560) + 3)
        self._bump_stat(api, slot=9, site=701)  # total

    def _bump_stat(self, api, *, slot: int, site: int) -> None:
        """Statistics increment — unlocked under the §4.1 stats bug."""
        with api.frame("Statistics::bump", _SRC, site):
            addr = self._stats + slot
            if self.config.has_bug("unlocked-stats"):
                if self.truth is not None and not getattr(self, "_stats_claimed", False):
                    self.truth.claim(
                        self._stats,
                        11,
                        WarningCategory.TRUE_RACE,
                        note="statistics counters incremented without the lock",
                        bug_id="unlocked-stats",
                    )
                    self._stats_claimed = True
                value = api.load(addr)
                api.store(addr, value + 1 if isinstance(value, int) else 1)
            else:
                self._stats_lock.lock(api)
                value = api.load(addr)
                api.store(addr, value + 1 if isinstance(value, int) else 1)
                self._stats_lock.unlock(api)

    def _send(self, api, response: SipMessage, *, site: int) -> None:
        """Serialise and 'transmit' a response (collects it host-side).

        Builds the Server header by copying the shared banner string —
        one Figure 8 string copy per response, at a per-handler site.
        """
        with api.frame("Transport::send", _SRC, 640):
            api.at(640)  # one transmit routine; `site` names the caller
            banner_copy = self._banner.copy(api)
            banner_copy.dispose(api)
            stamped = response.with_header("Server", "reliable-sip-proxy/1.0")
            serialize_message(stamped)
            self.result.responses.append(stamped)

    # -- transaction-table plumbing ----------------------------------------
    #
    # Lifetime protocol: finders take a reference under the table lock;
    # the terminating handler marks the object zombie; whoever drops the
    # last reference destroys the object *outside* the lock.  Destroying
    # outside the lock while unjoined peer workers are still running is
    # realistic — and exactly what produces the §4.2.1 destructor
    # warnings when the build is not instrumented.

    def _find_transaction(self, api, key: str, line: int) -> CxxObject | None:
        """Look the key up and take a reference (release when done)."""
        with api.frame("TransactionTable::find", _SRC, line):
            self._table_lock.lock(api)
            obj = self._transactions.get(api, key)
            if obj is not None:
                obj.set(api, "refs", obj.get(api, "refs") + 1)
            self._table_lock.unlock(api)
            if obj is not None:
                obj.vcall(api, "describe")  # virtual call: vptr read
            return obj

    def _insert_transaction(self, api, key: str, obj: CxxObject, line: int) -> None:
        """Publish a fresh transaction (creator already holds refs=1)."""
        with api.frame("TransactionTable::insert", _SRC, line):
            self._table_lock.lock(api)
            self._transactions.set(api, key, obj)
            self._txn_objects[key] = obj
            self._table_lock.unlock(api)

    def _mark_zombie(self, api, key: str, obj: CxxObject, line: int) -> None:
        """Unpublish: future finds miss; destruction waits for releases."""
        with api.frame("TransactionTable::erase", _SRC, line):
            self._table_lock.lock(api)
            self._txn_objects.pop(key, None)
            self._transactions.set(api, key, None)
            obj.set(api, "zombie", 1)
            self._table_lock.unlock(api)

    def _release_transaction(self, api, obj: CxxObject, line: int) -> None:
        """Drop one reference; the last holder of a zombie destroys it."""
        with api.frame("TransactionTable::release", _SRC, line):
            self._table_lock.lock(api)
            refs = obj.get(api, "refs") - 1
            obj.set(api, "refs", refs)
            must_delete = refs == 0 and obj.get(api, "zombie") == 1
            self._table_lock.unlock(api)
        if must_delete:
            with api.frame("TransactionTable::destroy", _SRC, line + 2):
                delete_object(
                    api,
                    obj,
                    self._alloc,
                    annotate=self.config.instrumented,
                    truth=self.truth,
                )

    def _new_transaction(self, api, message: SipMessage, line: int) -> CxxObject:
        """Build the transaction and its owned parts (headers, dialog
        state, body) — the object tree the destructor later cascades
        through."""
        with api.frame("TransactionFactory::create", _SRC, line):
            cls = transaction_class_for(message.method, self._classes)
            key_str = CowString.create(
                api, message.transaction_key, self._alloc, truth=self.truth
            )
            number, _ = message.cseq
            api.at(line + 1)
            hdr_table = new_object(
                api,
                HEADER_TABLE,
                self._alloc,
                init={
                    "count": 3,
                    "via": message.header("Via") or "",
                    "callid": message.call_id,
                    "cseq_hdr": message.header("CSeq") or "",
                },
            )
            api.at(line + 2)
            via_list = new_object(
                api,
                VIA_LIST,
                self._alloc,
                init={"count": 1, "top_via": message.header("Via") or ""},
            )
            api.at(line + 3)
            contact_list = new_object(
                api,
                CONTACT_LIST,
                self._alloc,
                init={"count": 1, "primary": message.header("Contact") or ""},
            )
            api.at(line + 4)
            dlg_state = new_object(
                api,
                DIALOG_STATE,
                self._alloc,
                init={"phase": "early", "route": message.request_uri, "remote_tag": ""},
            )
            api.at(line + 5)
            body_obj = new_object(
                api,
                SDP_BODY,
                self._alloc,
                init={"length": len(message.body), "media": message.body},
            )
            api.at(line + 6)
            auth_state = new_object(
                api,
                AUTH_STATE,
                self._alloc,
                init={"realm": message.domain, "nonce": 0},
            )
            api.at(line + 7)
            obj = new_object(
                api,
                cls,
                self._alloc,
                init={
                    "key": key_str.rep,
                    "state": TransactionState.TRYING.value,
                    "cseq": number,
                    "events": 0,
                    "branch": message.header("Via") or "",
                    "refs": 1,  # the creator's reference
                    "zombie": 0,
                    "hdr_table": hdr_table,
                    "via_list": via_list,
                    "contact_list": contact_list,
                    "dlg_state": dlg_state,
                    "body_obj": body_obj,
                    "auth_state": auth_state,
                },
            )
            return obj

    def _step_state(self, api, obj: CxxObject, event: str, *, invite: bool, line: int):
        """Drive the FSM stored in the guest object.

        Transaction state is table-lock-protected (the proxy's real
        locking discipline — "synchronization is already done by
        locks", §3.3), so the only warnings transactions produce are
        the deliberate header/destructor and string-refcount patterns.
        """
        api.at(line)
        self._table_lock.lock(api)
        try:
            state = TransactionState(obj.get(api, "state"))
            machine = invite_event if invite else non_invite_event
            try:
                new_state, status = machine(state, event)
            except TransactionError:
                return state, None  # protocol violation: ignore, stay put
            obj.set(api, "state", new_state.value)
            obj.set(api, "events", obj.get(api, "events") + 1)
            return new_state, status
        finally:
            self._table_lock.unlock(api)

    # ------------------------------------------------------------------
    # Method handlers (one distinct code site per SIP method)
    # ------------------------------------------------------------------

    def _handle_invite(self, api, message: SipMessage) -> None:
        base = _HANDLER_LINES["INVITE"]
        with api.frame("InviteHandler::process", _SRC, base):
            key = message.transaction_key
            obj = self._find_transaction(api, key, base + 5)
            if obj is not None:
                # Retransmission of an in-flight INVITE.
                _, status = self._step_state(
                    api, obj, "retransmit", invite=True, line=base + 8
                )
                if status:
                    self._send(api, SipMessage.response_to(message, status), site=base + 9)
                self._release_transaction(api, obj, base + 30)
                return
            self._lookup_callee(api, message, base + 10)
            obj = self._new_transaction(api, message, base + 12)
            obj.set(api, "sdp", message.body)
            obj.set(api, "ringing", 0)
            self._insert_transaction(api, key, obj, base + 14)
            _, status = self._step_state(api, obj, "invite", invite=True, line=base + 16)
            if status:
                self._send(api, SipMessage.response_to(message, status), site=base + 17)
            # Callee "rings" then answers: provisional + final.
            _, status = self._step_state(
                api, obj, "provisional", invite=True, line=base + 20
            )
            if status:
                self._table_lock.lock(api)
                obj.set(api, "ringing", 1)
                self._table_lock.unlock(api)
                self._send(api, SipMessage.response_to(message, status), site=base + 21)
            _, status = self._step_state(api, obj, "final", invite=True, line=base + 24)
            if status:
                self._send(api, SipMessage.response_to(message, status), site=base + 25)
            self._release_transaction(api, obj, base + 32)

    def _lookup_callee(self, api, message: SipMessage, line: int) -> None:
        """Location-service lookup: read the callee's registration.

        Reads the shared binding through a virtual call (vptr read) and
        copies its contact string — the accesses that later make the
        re-registration delete in :meth:`_handle_register` a §4.2.1
        warning site and the contact copy a Figure 8 site.
        """
        with api.frame("LocationService::lookup", _SRC, line):
            self._registrar_lock.lock(api)
            binding = self._registrar.get(api, message.to_uri)
            if binding is not None:
                binding.set(api, "refs", binding.get(api, "refs") + 1)
            self._registrar_lock.unlock(api)
            if binding is None:
                return
            binding.vcall(api, "touch")
            contact = CowString.from_rep(
                binding.get(api, "contact"), self._alloc, self.truth
            )
            copy = contact.copy(api)
            copy.dispose(api)
            self._release_binding(api, binding, line + 4)

    def _release_binding(self, api, binding: CxxObject, line: int) -> None:
        """Registrar analogue of :meth:`_release_transaction`."""
        with api.frame("LocationService::release", _SRC, line):
            self._registrar_lock.lock(api)
            refs = binding.get(api, "refs") - 1
            binding.set(api, "refs", refs)
            must_delete = refs == 0 and binding.get(api, "zombie") == 1
            self._registrar_lock.unlock(api)
        if must_delete:
            with api.frame("Registrar::expire", _SRC, line + 2):
                delete_object(
                    api,
                    binding,
                    self._alloc,
                    annotate=self.config.instrumented,
                    truth=self.truth,
                )

    def _handle_ack(self, api, message: SipMessage) -> None:
        base = _HANDLER_LINES["ACK"]
        with api.frame("AckHandler::process", _SRC, base):
            obj = self._find_transaction(api, message.transaction_key, base + 4)
            if obj is None:
                return  # stray ACK: absorbed silently (RFC behaviour)
            self._step_state(api, obj, "ack", invite=True, line=base + 7)
            self._release_transaction(api, obj, base + 9)

    def _handle_bye(self, api, message: SipMessage) -> None:
        base = _HANDLER_LINES["BYE"]
        with api.frame("ByeHandler::process", _SRC, base):
            invite_key = f"{message.call_id}/INVITE"
            dialog = self._find_transaction(api, invite_key, base + 4)
            if dialog is None:
                self._send(api, SipMessage.response_to(message, 481), site=base + 6)
                return
            # Copy the stored dialog key string (shared rep!) into the
            # log line — the Figure 8 cross-thread string copy.
            api.at(base + 8)
            key_string = CowString.from_rep(
                dialog.get(api, "key"), self._alloc, self.truth
            )
            copy = key_string.copy(api)
            copy.dispose(api)
            self._step_state(api, dialog, "bye", invite=True, line=base + 10)
            self._send(api, SipMessage.response_to(message, 200), site=base + 12)
            # Dialog over: tear the INVITE transaction down.
            self._mark_zombie(api, invite_key, dialog, base + 14)
            self._release_transaction(api, dialog, base + 16)

    def _handle_cancel(self, api, message: SipMessage) -> None:
        base = _HANDLER_LINES["CANCEL"]
        with api.frame("CancelHandler::process", _SRC, base):
            key = message.transaction_key
            obj = self._find_transaction(api, key, base + 4)
            if obj is None:
                self._send(api, SipMessage.response_to(message, 481), site=base + 6)
                return
            _, status = self._step_state(api, obj, "cancel", invite=True, line=base + 8)
            self._send(api, SipMessage.response_to(message, 200), site=base + 10)
            if status:
                self._send(api, SipMessage.response_to(message, status), site=base + 11)
            self._mark_zombie(api, key, obj, base + 13)
            self._release_transaction(api, obj, base + 15)

    def _handle_register(self, api, message: SipMessage) -> None:
        base = _HANDLER_LINES["REGISTER"]
        with api.frame("Registrar::process", _SRC, base):
            user = message.from_uri
            contact = message.header("Contact") or message.from_uri
            api.at(base + 4)
            contact_str = CowString.create(api, contact, self._alloc, truth=self.truth)
            binding = new_object(
                api,
                self._classes["binding"],
                self._alloc,
                init={
                    "user": user,
                    "aor": message.to_uri,
                    "contact": contact_str.rep,
                    "expires": 3600,
                    "refs": 0,
                    "zombie": 0,
                },
            )
            self._registrar_lock.lock(api)
            self._registrar.set(api, user, binding)
            old = self._bindings.get(user)
            self._bindings[user] = binding
            delete_old = False
            if old is not None:
                old.set(api, "zombie", 1)
                delete_old = old.get(api, "refs") == 0
            self._registrar_lock.unlock(api)
            if delete_old:
                # Re-registration: delete the superseded binding outside
                # the lock — another §4.2.1 destructor site.
                with api.frame("Registrar::expire", _SRC, base + 10):
                    delete_object(
                        api,
                        old,
                        self._alloc,
                        annotate=self.config.instrumented,
                        truth=self.truth,
                    )
            self._send(api, SipMessage.response_to(message, 200), site=base + 14)

    def _handle_options(self, api, message: SipMessage) -> None:
        base = _HANDLER_LINES["OPTIONS"]
        with api.frame("OptionsHandler::process", _SRC, base):
            api.at(base + 4)
            allowed = ", ".join(METHODS)
            response = SipMessage.response_to(message, 200).with_header("Allow", allowed)
            self._send(api, response, site=base + 6)

    def _handle_subscribe(self, api, message: SipMessage) -> None:
        base = _HANDLER_LINES["SUBSCRIBE"]
        with api.frame("SubscribeHandler::process", _SRC, base):
            key = message.transaction_key
            obj = self._find_transaction(api, key, base + 4)
            if obj is None:
                obj = self._new_transaction(api, message, base + 6)
                self._insert_transaction(api, key, obj, base + 8)
                self._step_state(api, obj, "request", invite=False, line=base + 10)
            _, status = self._step_state(api, obj, "final", invite=False, line=base + 12)
            self._send(api, SipMessage.response_to(message, 202), site=base + 14)
            self._release_transaction(api, obj, base + 16)

    def _handle_notify(self, api, message: SipMessage) -> None:
        base = _HANDLER_LINES["NOTIFY"]
        with api.frame("NotifyHandler::process", _SRC, base):
            sub_key = f"{message.call_id}/SUBSCRIBE"
            obj = self._find_transaction(api, sub_key, base + 4)
            if obj is None:
                self._send(api, SipMessage.response_to(message, 481), site=base + 6)
                return
            self._send(api, SipMessage.response_to(message, 200), site=base + 8)
            self._mark_zombie(api, sub_key, obj, base + 10)
            self._release_transaction(api, obj, base + 12)

    def _handle_info(self, api, message: SipMessage) -> None:
        base = _HANDLER_LINES["INFO"]
        with api.frame("InfoHandler::process", _SRC, base):
            obj = self._find_transaction(
                api, f"{message.call_id}/INVITE", base + 4
            )
            status = 200 if obj is not None else 481
            self._send(api, SipMessage.response_to(message, status), site=base + 6)
            if obj is not None:
                self._release_transaction(api, obj, base + 8)

    # ------------------------------------------------------------------

    def _record_failure(self, text: str) -> None:
        self.result.failures.append(text)


# The domain-data record (Figure 7's m_DomainData values).
from repro.cxx.object_model import CxxClass as _CxxClass  # noqa: E402

_DOMAIN_DATA = _CxxClass(
    name="DomainData",
    base=_CxxClass(name="ConfigRecord", fields=("policy",), file="domain.cpp", line=10),
    fields=("name_rep", "max_calls", "active_calls"),
    file="domain.cpp",
    line=42,
)
