"""SIP transaction state machines (RFC 3261 §17, simplified).

The proxy keeps one transaction object per ``Call-ID``/method pair; the
object hierarchy is deliberately polymorphic —

::

    SipTransaction                (base: key, state, cseq, dialog data)
     ├── InviteTransaction        (INVITE/ACK/CANCEL lifecycle)
     └── NonInviteTransaction     (REGISTER/OPTIONS/BYE/... lifecycle)

— because *derived* classes with compiler-generated destructors are
exactly what produces the §4.2.1 false positives when the proxy deletes
a terminated transaction.  The state machines themselves are the
host-level logic (:class:`TransactionState`, :func:`invite_event`,
:func:`non_invite_event`); the guest-memory objects are built by the
server from :data:`TRANSACTION_CLASSES`.

Simplifications relative to RFC 3261: no timers (the VM has no wall
clock; timeouts are modelled as explicit events), no unreliable
transport retransmission logic beyond idempotent re-delivery, and ACK
matching by Call-ID rather than Via branch.
"""

from __future__ import annotations

import enum

from repro.cxx.object_model import CxxClass

__all__ = [
    "TransactionError",
    "TransactionState",
    "invite_event",
    "non_invite_event",
    "TRANSACTION_CLASSES",
    "REGISTRATION_BINDING",
    "transaction_class_for",
]


class TransactionState(enum.Enum):
    """Server-transaction states (union of the two RFC machines)."""

    TRYING = "trying"
    PROCEEDING = "proceeding"
    COMPLETED = "completed"
    CONFIRMED = "confirmed"
    TERMINATED = "terminated"


class TransactionError(Exception):
    """An event arrived that the state machine cannot accept."""


def invite_event(state: TransactionState, event: str) -> tuple[TransactionState, int | None]:
    """INVITE server transaction (RFC 3261 §17.2.1, timer-free).

    ``event`` is one of ``invite``, ``retransmit``, ``provisional``,
    ``final``, ``ack``, ``cancel``, ``timeout``.  Returns the new state
    and an optional response status the proxy should send.
    """
    S = TransactionState
    if state is S.TRYING:
        if event == "invite":
            return S.PROCEEDING, 100  # send Trying immediately
        raise TransactionError(f"INVITE machine in TRYING got {event!r}")
    if state is S.PROCEEDING:
        if event == "retransmit":
            return S.PROCEEDING, 100  # re-send last provisional
        if event == "provisional":
            return S.PROCEEDING, 180
        if event == "final":
            return S.COMPLETED, 200
        if event == "cancel":
            return S.COMPLETED, 487
        if event == "timeout":
            return S.TERMINATED, 408
        raise TransactionError(f"INVITE machine in PROCEEDING got {event!r}")
    if state is S.COMPLETED:
        if event == "ack":
            return S.CONFIRMED, None
        if event == "retransmit":
            return S.COMPLETED, 200  # re-send final
        if event == "timeout":
            return S.TERMINATED, None
        raise TransactionError(f"INVITE machine in COMPLETED got {event!r}")
    if state is S.CONFIRMED:
        if event in ("timeout", "bye"):
            return S.TERMINATED, None
        if event == "ack":
            return S.CONFIRMED, None  # absorbed
        raise TransactionError(f"INVITE machine in CONFIRMED got {event!r}")
    raise TransactionError(f"event {event!r} on TERMINATED transaction")


def non_invite_event(
    state: TransactionState, event: str
) -> tuple[TransactionState, int | None]:
    """Non-INVITE server transaction (RFC 3261 §17.2.2, timer-free).

    Events: ``request``, ``retransmit``, ``final``, ``timeout``.
    """
    S = TransactionState
    if state is S.TRYING:
        if event == "request":
            return S.PROCEEDING, None
        raise TransactionError(f"non-INVITE machine in TRYING got {event!r}")
    if state is S.PROCEEDING:
        if event == "final":
            return S.COMPLETED, 200
        if event == "retransmit":
            return S.PROCEEDING, None
        if event == "timeout":
            return S.TERMINATED, 408
        raise TransactionError(f"non-INVITE machine in PROCEEDING got {event!r}")
    if state is S.COMPLETED:
        if event == "retransmit":
            return S.COMPLETED, 200
        if event == "timeout":
            return S.TERMINATED, None
        raise TransactionError(f"non-INVITE machine in COMPLETED got {event!r}")
    raise TransactionError(f"event {event!r} on TERMINATED transaction")


# ----------------------------------------------------------------------
# Guest-memory object hierarchy
# ----------------------------------------------------------------------
#
# A transaction is not one object: like the real server's C++, it *owns*
# a small tree of polymorphic parts (a header table, a dialog-state
# record, a body object), cascade-deleted from the transaction's
# destructor body.  Every owned part has a base class, so destroying one
# transaction produces a whole family of compiler-generated vptr
# rewrites at distinct program locations -- this is how a single delete
# site fans out into the many Sec. 4.2.1 warning locations the paper
# counts.
#
# The destructor bodies need run-time context (the allocator, the
# build's annotate switch, the oracle), so the class objects are built
# per proxy instance by :func:`build_transaction_classes` around a
# :class:`TransactionContext`.

from dataclasses import dataclass


@dataclass(slots=True)
class TransactionContext:
    """Run-time services the destructor bodies need."""

    allocator: object
    annotate: bool
    truth: object | None = None


def _get_state(api, obj):
    return obj.get(api, "state")


def _set_state(api, obj, value):
    obj.set(api, "state", value)


def _describe(api, obj):
    return f"{obj.cls.name}({obj.get(api, 'key')})"


def _touch_binding(api, obj):
    """Virtual 'freshness' probe: reads the expiry field."""
    return obj.get(api, "expires")


#: Owned-part classes (shared, context-free: their destructor bodies are
#: empty -- the compiler-generated header rewrites alone warn).  All are
#: three levels deep, so each part's destruction rewrites the vptr twice
#: at two distinct frames -- multiplying warning locations the way the
#: real server's wide class forest did.
_COLLECTION = CxxClass(name="Collection", fields=("count",), file="collection.cpp", line=12)
_HEADER_LIST = CxxClass(
    name="HeaderList", base=_COLLECTION, fields=("first",), file="headers.cpp", line=14
)
HEADER_TABLE = CxxClass(
    name="HeaderTable",
    base=_HEADER_LIST,
    fields=("via", "callid", "cseq_hdr"),
    file="headers.cpp",
    line=30,
)
VIA_LIST = CxxClass(
    name="ViaList", base=_HEADER_LIST, fields=("top_via",), file="headers.cpp", line=62
)
CONTACT_LIST = CxxClass(
    name="ContactList", base=_HEADER_LIST, fields=("primary",), file="headers.cpp", line=90
)
_STATE_OBJECT = CxxClass(name="StateObject", fields=("phase",), file="state.cpp", line=8)
_CALL_STATE = CxxClass(
    name="CallState", base=_STATE_OBJECT, fields=("leg",), file="state.cpp", line=20
)
DIALOG_STATE = CxxClass(
    name="DialogState",
    base=_CALL_STATE,
    fields=("route", "remote_tag"),
    file="dialog.cpp",
    line=25,
)
_MESSAGE_BODY = CxxClass(name="MessageBody", fields=("length",), file="body.cpp", line=10)
_TEXT_BODY = CxxClass(
    name="TextBody", base=_MESSAGE_BODY, fields=("encoding",), file="body.cpp", line=22
)
SDP_BODY = CxxClass(
    name="SdpBody",
    base=_TEXT_BODY,
    fields=("media",),
    file="body.cpp",
    line=44,
)
_RECORD = CxxClass(name="Record", fields=("id_tag",), file="record.cpp", line=6)
_SECURITY_RECORD = CxxClass(
    name="SecurityRecord", base=_RECORD, fields=("realm",), file="auth.cpp", line=15
)
AUTH_STATE = CxxClass(
    name="AuthState",
    base=_SECURITY_RECORD,
    fields=("nonce",),
    file="auth.cpp",
    line=40,
)

#: Field names of the owned parts, deleted in this order by the
#: transaction destructor.
OWNED_PARTS = ("hdr_table", "via_list", "contact_list", "dlg_state", "body_obj", "auth_state")

#: The classes each owned-part field holds.
PART_CLASSES = {
    "hdr_table": HEADER_TABLE,
    "via_list": VIA_LIST,
    "contact_list": CONTACT_LIST,
    "dlg_state": DIALOG_STATE,
    "body_obj": SDP_BODY,
    "auth_state": AUTH_STATE,
}


def build_transaction_classes(ctx: TransactionContext) -> dict[str, CxxClass]:
    """Construct the transaction hierarchy bound to ``ctx``.

    Returns a map with keys ``"INVITE"``, ``"default"`` and
    ``"binding"`` (the registrar's record class).

    Hierarchy (3 levels, so destruction rewrites the vptr twice)::

        PoolObject -> SipTransaction -> {Invite,NonInvite}Transaction

    ``refs``/``zombie`` implement the table's reference-counted lifetime
    protocol: a handler that *finds* a transaction holds a reference
    until it is done, the terminating handler marks the object zombie,
    and whoever drops the last reference runs the destructor -- the
    lifetime discipline a real server uses so a worker never destroys an
    object a peer still holds.
    """
    from repro.cxx.object_model import delete_object  # cycle-free local import

    def txn_dtor(api, obj):
        """~SipTransaction: cascade-delete the owned parts, null fields."""
        for i, field_name in enumerate(OWNED_PARTS):
            api.at(60 + 2 * i)
            part = obj.get(api, field_name)
            if part is not None:
                delete_object(
                    api, part, ctx.allocator, annotate=ctx.annotate, truth=ctx.truth
                )
            api.at(61 + 2 * i)
            obj.set(api, field_name, None)

    pool_object = CxxClass(
        name="PoolObject",
        fields=("pool_tag",),
        file="poolobject.cpp",
        line=18,
    )
    sip_transaction = CxxClass(
        name="SipTransaction",
        base=pool_object,
        fields=("key", "state", "cseq", "events", "branch", "refs", "zombie")
        + OWNED_PARTS,
        methods={
            "get_state": _get_state,
            "set_state": _set_state,
            "describe": _describe,
            "~": txn_dtor,
        },
        file="transaction.cpp",
        line=40,
    )
    invite_transaction = CxxClass(
        name="InviteTransaction",
        base=sip_transaction,
        fields=("sdp", "ringing"),
        file="transaction.cpp",
        line=120,
    )
    non_invite_transaction = CxxClass(
        name="NonInviteTransaction",
        base=sip_transaction,
        fields=("final_status",),
        file="transaction.cpp",
        line=200,
    )

    def binding_dtor(api, obj):
        """~RegistrationBinding: drop the contact string reference."""
        from repro.cxx.string import CowString

        api.at(70)
        rep = obj.get(api, "contact")
        if rep is not None and ctx.allocator is not None:
            CowString.from_rep(rep, ctx.allocator, ctx.truth).dispose(api)
        api.at(71)
        obj.set(api, "contact", None)

    location_record = CxxClass(
        name="LocationRecord", fields=("user",), file="registrar.cpp", line=15
    )
    aor_record = CxxClass(
        name="AorRecord",
        base=location_record,
        fields=("aor",),
        file="registrar.cpp",
        line=32,
    )
    registration_binding = CxxClass(
        name="RegistrationBinding",
        base=aor_record,
        fields=("contact", "expires", "refs", "zombie"),
        methods={"touch": _touch_binding, "~": binding_dtor},
        file="registrar.cpp",
        line=55,
    )
    return {
        "INVITE": invite_transaction,
        "default": non_invite_transaction,
        "binding": registration_binding,
    }


# Context-free default classes (handy for tests that only need layout).
_DEFAULT_CLASSES = build_transaction_classes(
    TransactionContext(allocator=None, annotate=False)
)
SIP_TRANSACTION = _DEFAULT_CLASSES["INVITE"].base
INVITE_TRANSACTION = _DEFAULT_CLASSES["INVITE"]
NON_INVITE_TRANSACTION = _DEFAULT_CLASSES["default"]
REGISTRATION_BINDING = _DEFAULT_CLASSES["binding"]

TRANSACTION_CLASSES = {
    "INVITE": INVITE_TRANSACTION,
    "default": NON_INVITE_TRANSACTION,
}


def transaction_class_for(method: str, classes: dict[str, CxxClass] | None = None) -> CxxClass:
    """The concrete transaction class the proxy instantiates."""
    table = classes or _DEFAULT_CLASSES
    return table.get(method, table["default"])
